"""Database-tier passive failure detection (writer and read replicas).

The storage-tier :class:`~repro.repair.health.HealthMonitor` watches
segments; this monitor applies the same philosophy one layer up, to the
database instances themselves.  Nothing here polls the writer with a
dedicated heartbeat -- liveness is inferred from signals the system
already emits:

- **redo-stream advance** -- storage nodes observe the sending
  ``instance_id`` on every :class:`~repro.storage.messages.WriteBatch`;
- **GC-floor cadence** -- the writer *and* every replica advertise their
  PGMRPL to storage on a fixed interval, a steady passive heartbeat even
  when the workload is idle;
- **VDL heartbeats and commit notices** -- replicas observe the
  ``writer_id`` on every :class:`~repro.db.replication.MTRChunk`,
  ``VDLUpdate`` and ``CommitNotice`` they receive.

Silence is judged *relative to the freshest database-tier signal*, with
one addition over the storage monitor: an optional ``reference_frontier``
callable (wired to the storage monitor's
:meth:`~repro.repair.health.HealthMonitor.freshest_signal`).  Storage
gossip keeps flowing when the writer dies, so a fresh storage frontier
proves the observer itself is alive -- database-tier silence against a
moving storage frontier is evidence about the *writer*, not about the
network.  Conversely, when both tiers go quiet together (full partition,
observer failure), judgement is suspended and nobody is suspected.

The per-instance state machine is the storage monitor's
``HEALTHY -> SUSPECT -> DEAD`` with the same adaptive EWMA cadence
(PR 3): thresholds derive from the signal gaps actually observed, so an
idle workload -- where the only traffic is the 50 ms GC-floor tick --
stretches the windows instead of flapping.  A confirmed-dead verdict on
an instance registered as the *writer* is what arms the
:class:`~repro.repair.failover.FailoverCoordinator`; replica verdicts are
recorded but trigger nothing (a dead replica costs read capacity, not
availability).  A slow-but-signalling writer (grey failure) never
graduates past SUSPECT, exactly like a grey segment: its delayed GC-floor
ticks still arrive, and confirmation requires *continued* silence.

Like every monitor in the repair control plane, this one draws nothing
from the shared simulation RNG and ticks on a fixed interval, so arming
it perturbs no seeded schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.repair.health import SegmentHealth

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventLoop

#: Roles an instance can be registered under.
WRITER = "writer"
REPLICA = "replica"


@dataclass
class DbHealthConfig:
    """Detection knobs for the database tier (times in simulated ms).

    The floors are tuned to the GC-floor advertisement interval (50 ms):
    a live writer is heard from by some storage node every tick, so even
    a fully idle workload gives the monitor a dense signal stream and the
    adaptive thresholds sit at their floors.
    """

    #: Fixed sweep interval (never jittered; no RNG draws).
    tick_interval_ms: float = 25.0
    #: Floor of the relative-silence suspicion threshold.
    suspect_silence_ms: float = 250.0
    #: Floor of the continued-silence confirmation window.
    confirm_after_ms: float = 600.0
    #: Per-instance confirmation backoff after a false positive.
    false_positive_backoff: float = 2.0
    max_confirm_ms: float = 8_000.0
    #: Adaptive cadence (EWMA of observed inter-signal gaps).
    adaptive: bool = True
    cadence_alpha: float = 0.25
    cadence_multiplier: float = 4.0
    max_suspect_silence_ms: float = 2_000.0
    confirm_multiplier: float = 6.0
    #: The tier is idle when its freshest signal -- including the
    #: reference frontier -- is older than this multiple of the group
    #: cadence; silence judgement is then suspended.
    idle_multiplier: float = 3.0


@dataclass
class _InstanceState:
    role: str
    state: SegmentHealth = SegmentHealth.HEALTHY
    suspect_since: float = 0.0
    confirm_ms: float = 0.0
    gap_ewma_ms: float | None = None


class DbHealthMonitor:
    """Aggregates passive liveness signals into per-instance verdicts.

    Producers (storage nodes, replicas) hold this as a
    ``db_health_probe`` attribute and report the instance ids they hear
    from; consumers subscribe to :attr:`on_confirmed_dead` /
    :attr:`on_recovered`.  Instances must be explicitly registered --
    signals about unknown ids are ignored, so a freshly fenced writer's
    late traffic cannot re-enter the tracked set.
    """

    def __init__(
        self,
        loop: "EventLoop",
        config: DbHealthConfig | None = None,
        reference_frontier: Callable[[], float | None] | None = None,
    ) -> None:
        self.loop = loop
        self.config = config if config is not None else DbHealthConfig()
        #: Proof-of-observer-liveness hook (the storage monitor's
        #: ``freshest_signal``); None disables the cross-tier frontier.
        self.reference_frontier = reference_frontier
        #: Fired with ``(instance_id, last_alive_at, confirmed_at)``.
        self.on_confirmed_dead: list[Callable[[str, float, float], None]] = []
        #: Fired with ``(instance_id,)`` on a false-positive return.
        self.on_recovered: list[Callable[[str], None]] = []
        self.events: list[tuple[float, str, str]] = []
        self.counters = {
            "suspected": 0,
            "confirmed_dead": 0,
            "false_positives": 0,
            "recovered_suspects": 0,
        }
        self._states: dict[str, _InstanceState] = {}
        self._last_alive: dict[str, float] = {}
        #: Tier-wide cadence: [last_signal_at, aggregate gap EWMA].
        self._group_cadence: list = [None, None]
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle / registration
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.config.tick_interval_ms, self._tick)

    def stop(self) -> None:
        self._running = False

    def register_instance(self, instance_id: str, role: str) -> None:
        """Track ``instance_id`` (grace period: provisionally alive now)."""
        self._last_alive.setdefault(instance_id, self.loop.now)
        if instance_id not in self._states:
            self._states[instance_id] = _InstanceState(
                role=role, confirm_ms=self.config.confirm_after_ms
            )
        else:
            self._states[instance_id].role = role

    def deregister_instance(self, instance_id: str) -> None:
        self._states.pop(instance_id, None)
        self._last_alive.pop(instance_id, None)

    def set_role(self, instance_id: str, role: str) -> None:
        entry = self._states.get(instance_id)
        if entry is not None:
            entry.role = role

    def role_of(self, instance_id: str) -> str | None:
        entry = self._states.get(instance_id)
        return entry.role if entry is not None else None

    def state_of(self, instance_id: str) -> SegmentHealth:
        entry = self._states.get(instance_id)
        return entry.state if entry is not None else SegmentHealth.HEALTHY

    def last_alive(self, instance_id: str) -> float | None:
        return self._last_alive.get(instance_id)

    def tracked(self) -> list[str]:
        return sorted(self._states)

    # ------------------------------------------------------------------
    # Signal intake (producers: storage nodes, replicas)
    # ------------------------------------------------------------------
    def note_signal(self, instance_id: str) -> None:
        """Any passive evidence that ``instance_id`` is alive: a redo
        batch or GC-floor update observed by storage, a replication
        message observed by a replica."""
        if instance_id not in self._states:
            return  # unregistered (e.g. a fenced predecessor): ignore
        self._alive(instance_id)

    def _alive(self, instance_id: str) -> None:
        now = self.loop.now
        last = self._last_alive.get(instance_id)
        self._last_alive[instance_id] = now
        entry = self._states[instance_id]
        self._observe_cadence(entry, last, now)
        if entry.state is SegmentHealth.SUSPECT:
            entry.state = SegmentHealth.HEALTHY
            self.counters["recovered_suspects"] += 1
            self._log("suspect-recovered", instance_id)
        elif entry.state is SegmentHealth.DEAD:
            entry.state = SegmentHealth.HEALTHY
            self.counters["false_positives"] += 1
            # Cried wolf: require longer confirmation next time.
            entry.confirm_ms = min(
                entry.confirm_ms * self.config.false_positive_backoff,
                self.config.max_confirm_ms,
            )
            self._log("false-positive-return", instance_id)
            for callback in list(self.on_recovered):
                callback(instance_id)

    # ------------------------------------------------------------------
    # Adaptive cadence (mirrors repair.health)
    # ------------------------------------------------------------------
    def _observe_cadence(
        self, entry: _InstanceState, last: float | None, now: float
    ) -> None:
        cfg = self.config
        if not cfg.adaptive:
            return
        alpha = cfg.cadence_alpha
        if last is not None:
            gap = now - last
            entry.gap_ewma_ms = (
                gap
                if entry.gap_ewma_ms is None
                else alpha * gap + (1.0 - alpha) * entry.gap_ewma_ms
            )
        cadence = self._group_cadence
        if cadence[0] is None:
            cadence[0] = now
            return
        group_gap = now - cadence[0]
        cadence[0] = now
        cadence[1] = (
            group_gap
            if cadence[1] is None
            else alpha * group_gap + (1.0 - alpha) * cadence[1]
        )

    def _cadence_ms(self, entry: _InstanceState) -> float | None:
        """Slowest of the instance's own cadence and the tier's
        per-instance cadence (aggregate gap x tracked count)."""
        per_member = None
        if self._group_cadence[1] is not None:
            per_member = self._group_cadence[1] * max(1, len(self._states))
        gaps = [g for g in (entry.gap_ewma_ms, per_member) if g is not None]
        return max(gaps) if gaps else None

    def suspect_threshold_ms(self, instance_id: str) -> float:
        cfg = self.config
        entry = self._states.get(instance_id)
        if entry is None or not cfg.adaptive:
            return cfg.suspect_silence_ms
        cadence = self._cadence_ms(entry)
        if cadence is None:
            return cfg.suspect_silence_ms
        return min(
            max(cfg.suspect_silence_ms, cfg.cadence_multiplier * cadence),
            cfg.max_suspect_silence_ms,
        )

    def confirm_window_ms(self, instance_id: str) -> float:
        cfg = self.config
        entry = self._states.get(instance_id)
        if entry is None:
            return cfg.confirm_after_ms
        base = entry.confirm_ms or cfg.confirm_after_ms
        if not cfg.adaptive:
            return base
        cadence = self._cadence_ms(entry)
        if cadence is None:
            return base
        return min(
            max(base, cfg.confirm_multiplier * cadence), cfg.max_confirm_ms
        )

    def _frontier(self) -> float | None:
        """Freshest liveness evidence the observer holds: the newest
        database-tier signal, advanced by the storage-tier reference
        frontier when one is wired."""
        frontier = max(self._last_alive.values(), default=None)
        if self.reference_frontier is not None:
            reference = self.reference_frontier()
            if reference is not None:
                frontier = (
                    reference
                    if frontier is None
                    else max(frontier, reference)
                )
        return frontier

    def _tier_active(self, frontier: float, now: float) -> bool:
        cfg = self.config
        if not cfg.adaptive:
            return True
        ewma = self._group_cadence[1]
        grace = (
            cfg.suspect_silence_ms
            if ewma is None
            else min(
                max(cfg.suspect_silence_ms, cfg.idle_multiplier * ewma),
                cfg.max_suspect_silence_ms,
            )
        )
        return now - frontier <= grace

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.loop.now
        frontier = self._frontier()
        if frontier is not None:
            active = self._tier_active(frontier, now)
            for instance_id in list(self._states):
                self._judge(instance_id, frontier, now, active)
        self.loop.schedule(self.config.tick_interval_ms, self._tick)

    def _judge(
        self, instance_id: str, frontier: float, now: float, active: bool
    ) -> None:
        entry = self._states[instance_id]
        silence = frontier - self._last_alive[instance_id]
        threshold = self.suspect_threshold_ms(instance_id)
        if entry.state is SegmentHealth.HEALTHY:
            if active and silence > threshold:
                entry.state = SegmentHealth.SUSPECT
                entry.suspect_since = now
                self.counters["suspected"] += 1
                self._log("suspected", instance_id)
        elif entry.state is SegmentHealth.SUSPECT:
            if silence <= threshold:
                entry.state = SegmentHealth.HEALTHY
                self.counters["recovered_suspects"] += 1
                self._log("suspect-decayed", instance_id)
            elif (
                active
                and now - entry.suspect_since
                >= self.confirm_window_ms(instance_id)
            ):
                entry.state = SegmentHealth.DEAD
                self.counters["confirmed_dead"] += 1
                self._log("confirmed-dead", instance_id)
                failed_at = self._last_alive[instance_id]
                for callback in list(self.on_confirmed_dead):
                    callback(instance_id, failed_at, now)
        # DEAD: stays dead until a liveness signal revives it (_alive).

    def _log(self, event: str, instance_id: str) -> None:
        self.events.append((self.loop.now, event, instance_id))
