"""Self-healing control plane: failure detection and repair orchestration.

The paper treats membership changes as routine: "the most common reason
for a quorum membership change is a suspected failed segment" and the
Figure 5 machinery makes the change "reversible until the point it is
finalized".  This package closes the loop the paper leaves to the
operator: a :class:`HealthMonitor` turns passive signals into
suspect/confirmed-dead verdicts, and a :class:`RepairPlanner` drives the
Figure 5 flow autonomously -- including the rollback path when a suspect
turns out to have been merely slow.
"""

from repro.repair.health import HealthConfig, HealthMonitor, SegmentHealth
from repro.repair.metrics import (
    ABORTED,
    ACTIVE,
    REPLACED,
    ROLLED_BACK,
    STALLED,
    TERMINAL_OUTCOMES,
    LatencyStats,
    RepairRecord,
    RepairSummary,
    percentile,
    summarize_repairs,
)
from repro.repair.planner import RepairConfig, RepairPlanner

__all__ = [
    "ABORTED",
    "ACTIVE",
    "REPLACED",
    "ROLLED_BACK",
    "STALLED",
    "TERMINAL_OUTCOMES",
    "HealthConfig",
    "HealthMonitor",
    "LatencyStats",
    "RepairConfig",
    "RepairPlanner",
    "RepairRecord",
    "RepairSummary",
    "SegmentHealth",
    "percentile",
    "summarize_repairs",
]
