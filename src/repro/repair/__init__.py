"""Self-healing control plane: failure detection and repair orchestration.

The paper treats membership changes as routine: "the most common reason
for a quorum membership change is a suspected failed segment" and the
Figure 5 machinery makes the change "reversible until the point it is
finalized".  This package closes the loop the paper leaves to the
operator: a :class:`HealthMonitor` turns passive signals into
suspect/confirmed-dead verdicts, and a :class:`RepairPlanner` drives the
Figure 5 flow autonomously -- including the rollback path when a suspect
turns out to have been merely slow.

The same machinery runs one tier up: a :class:`DbHealthMonitor` infers
writer/replica liveness from passive database-tier signals, and a
:class:`FailoverCoordinator` answers a confirmed writer death with a
fenced replica promotion (section 6's "changing the locks on the door",
driven autonomously).
"""

from repro.repair.db_health import (
    REPLICA,
    WRITER,
    DbHealthConfig,
    DbHealthMonitor,
)
from repro.repair.failover import (
    FAILOVER_TERMINAL,
    PROMOTED,
    RESTARTED,
    FailoverConfig,
    FailoverCoordinator,
    FailoverRecord,
    FailoverSummary,
    summarize_failovers,
)
from repro.repair.health import HealthConfig, HealthMonitor, SegmentHealth
from repro.repair.metrics import (
    ABORTED,
    ACTIVE,
    REPLACED,
    ROLLED_BACK,
    STALLED,
    TERMINAL_OUTCOMES,
    LatencyStats,
    RepairRecord,
    RepairSummary,
    percentile,
    summarize_repairs,
)
from repro.repair.planner import RepairConfig, RepairPlanner

__all__ = [
    "ABORTED",
    "ACTIVE",
    "FAILOVER_TERMINAL",
    "PROMOTED",
    "REPLACED",
    "REPLICA",
    "RESTARTED",
    "ROLLED_BACK",
    "STALLED",
    "TERMINAL_OUTCOMES",
    "WRITER",
    "DbHealthConfig",
    "DbHealthMonitor",
    "FailoverConfig",
    "FailoverCoordinator",
    "FailoverRecord",
    "FailoverSummary",
    "HealthConfig",
    "HealthMonitor",
    "LatencyStats",
    "RepairConfig",
    "RepairPlanner",
    "RepairRecord",
    "RepairSummary",
    "SegmentHealth",
    "percentile",
    "summarize_failovers",
    "summarize_repairs",
]
