"""Quorum-set repair orchestration: Figure 5, driven end to end.

When the :class:`~repro.repair.health.HealthMonitor` confirms a segment
dead, the planner runs the paper's membership-change protocol over the
simulated message layer:

1. **begin** -- add a candidate next to the suspect (the cluster picks a
   node in the incumbent's AZ, preserving the two-per-AZ spread the AZ+1
   durability argument depends on); membership epoch bumps, the dual
   quorum set is installed, I/Os continue;
2. **hydrate** -- baseline copy from a healthy full peer (RPC with
   timeout + exponential backoff; sources are retried in deterministic
   order), then gossip closes the gap to the PG's durable watermark;
3. **finalize** -- once the candidate's SCL reaches the watermark floor,
   commit the replacement (epoch bumps again) -- or
4. **rollback** -- if the monitor hears from the incumbent first, reverse
   the transition (epoch bumps; the exact prior membership is restored)
   and decommission the candidate.

Design points that keep this safe under further chaos:

- **Per-PG serialization.**  One repair in flight per protection group;
  further confirmed deaths queue behind it.  A second failure (or an AZ
  outage) mid-transition therefore never drives the membership machinery
  past the dual-quorum shapes :func:`verify_transition_safety` proves --
  and the dual quorum itself still tolerates it, exactly the property
  section 4 claims for Figure 5's intermediate state.
- **Monotonic watermark floor.**  Finalize requires the candidate's SCL
  to reach the highest durable point (PGCL) the planner has *ever*
  observed for the PG, not the current tracker value: a writer crash
  resets in-memory trackers to zero, and finalizing against that would
  drop a member that still backs acked writes.
- **Bounded everything.**  Baseline RPCs poll in small slices rather than
  blocking on the future (a lost message would otherwise hang the repair
  forever); the whole repair has a budget, after which it parks as
  ``stalled`` with the dual quorum still installed -- safe, merely
  unfinished, and retried when the monitor confirms the segment again.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.retry import Backoff, RetryPolicy
from repro.errors import MembershipError
from repro.repair.metrics import (
    ABORTED,
    REPLACED,
    ROLLED_BACK,
    STALLED,
    RepairRecord,
    RepairSummary,
    summarize_repairs,
)
from repro.sim.process import Process
from repro.storage.messages import (
    BaselineRequest,
    BaselineResponse,
    RequestRejected,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.cluster import AuroraCluster
    from repro.repair.health import HealthMonitor


@dataclass
class RepairConfig:
    """Orchestration knobs (times in simulated ms)."""

    #: Hydration/rollback poll granularity.
    poll_ms: float = 5.0
    #: Per-attempt baseline RPC timeout, and retry backoff bounds.
    baseline_timeout_ms: float = 60.0
    backoff_base_ms: float = 20.0
    backoff_cap_ms: float = 160.0

    def retry_policy(self) -> RetryPolicy:
        """The shared exponential-backoff policy (:mod:`repro.core.retry`)
        parameterized by this config's bounds."""
        return RetryPolicy(
            base_ms=self.backoff_base_ms, cap_ms=self.backoff_cap_ms
        )
    #: Modeled bulk-copy time for the baseline snapshot.  The simulated
    #: baseline is a few records, but the thing it stands for is a ~10GB
    #: segment copy that dominates the paper's 10-second repair window;
    #: pacing it keeps repair duration realistic relative to detection
    #: spread (0 keeps the copy instantaneous).  The wait is sliced so a
    #: returning incumbent still triggers rollback mid-transfer.
    baseline_transfer_ms: float = 0.0
    #: Total budget per repair before parking it as ``stalled``.
    max_repair_ms: float = 20_000.0


class RepairPlanner:
    """Subscribes to the health monitor and drives Figure 5 repairs."""

    def __init__(
        self,
        cluster: "AuroraCluster",
        monitor: "HealthMonitor",
        config: RepairConfig | None = None,
    ) -> None:
        self.cluster = cluster
        self.monitor = monitor
        self.config = config if config is not None else RepairConfig()
        #: Every repair ever confirmed, in confirmation order.
        self.records: list[RepairRecord] = []
        self.counters = {
            "started": 0,
            "replaced": 0,
            "rolled_back": 0,
            "aborted": 0,
            "stalled": 0,
        }
        self._active: dict[int, RepairRecord] = {}
        self._queued: dict[int, deque[RepairRecord]] = {}
        #: DEAD segments the monitor heard from again (rollback triggers).
        self._returned: set[str] = set()
        #: Highest durable PGCL ever observed per PG (survives writer
        #: crashes, which reset the live trackers).
        self._floor: dict[int, int] = {}
        monitor.on_confirmed_dead.append(self._on_confirmed_dead)
        monitor.on_recovered.append(self._on_recovered)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return not self._active and not any(self._queued.values())

    def active_repair(self, pg_index: int) -> RepairRecord | None:
        return self._active.get(pg_index)

    def summary(self) -> RepairSummary:
        return summarize_repairs(self.records)

    # ------------------------------------------------------------------
    # Monitor callbacks
    # ------------------------------------------------------------------
    def _on_confirmed_dead(
        self, segment_id: str, failed_at: float, confirmed_at: float
    ) -> None:
        try:
            pg_index = self.cluster.metadata.pg_of(segment_id)
        except Exception:
            return
        record = RepairRecord(
            pg_index=pg_index,
            segment_id=segment_id,
            failed_at=failed_at,
            confirmed_at=confirmed_at,
        )
        self.records.append(record)
        if pg_index in self._active:
            # One transition at a time per PG: the dual quorum already in
            # flight tolerates this second failure; repair it next.
            record.notes.append("queued behind active repair")
            self._queued.setdefault(pg_index, deque()).append(record)
            return
        self._start(record)

    def _on_recovered(self, segment_id: str) -> None:
        self._returned.add(segment_id)

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def _start(self, record: RepairRecord) -> None:
        self._active[record.pg_index] = record
        self._returned.discard(record.segment_id)
        self.counters["started"] += 1
        Process(self.cluster.loop, self._repair(record))

    def _finish(self, record: RepairRecord, outcome: str) -> None:
        record.outcome = outcome
        record.finished_at = self.cluster.loop.now
        self.counters[outcome] = self.counters.get(outcome, 0) + 1
        self._returned.discard(record.segment_id)
        self._active.pop(record.pg_index, None)
        if outcome in (STALLED, ABORTED):
            # The monitor only fires on the SUSPECT -> DEAD edge, so a
            # segment whose repair ran out of budget (or could not begin)
            # would otherwise stay dead forever.  Requeue it while it is
            # still a confirmed-dead member; a retry resumes any
            # in-flight dual membership.
            from repro.repair.health import SegmentHealth

            if self.monitor.state_of(
                record.segment_id
            ) is SegmentHealth.DEAD and self.cluster.metadata.is_current_member(
                record.segment_id
            ):
                retry = RepairRecord(
                    pg_index=record.pg_index,
                    segment_id=record.segment_id,
                    failed_at=record.failed_at,
                    confirmed_at=record.confirmed_at,
                )
                retry.notes.append("retry after stalled attempt")
                self.records.append(retry)
                self._queued.setdefault(record.pg_index, deque()).append(
                    retry
                )
        queue = self._queued.get(record.pg_index)
        if queue and record.pg_index not in self._active:
            self._start(queue.popleft())

    def _update_floor(self, pg_index: int) -> int:
        writer = self.cluster.writer
        if writer is not None:
            tracker = writer.driver.pg_trackers.get(pg_index)
            if tracker is not None:
                current = self._floor.get(pg_index, 0)
                self._floor[pg_index] = max(current, tracker.pgcl)
        return self._floor.get(pg_index, 0)

    def _repair(self, record: RepairRecord):
        cluster = self.cluster
        cfg = self.config
        pg_index = record.pg_index
        segment_id = record.segment_id
        from repro.repair.health import SegmentHealth

        # Preconditions may have vanished between confirmation and start
        # (a queued record's subject can recover, or another flow may
        # already have replaced it).
        if not cluster.metadata.is_current_member(segment_id):
            record.notes.append("no longer a member at start")
            self._finish(record, ABORTED)
            return
        if self.monitor.state_of(segment_id) is not SegmentHealth.DEAD:
            record.notes.append("recovered before repair began")
            self._finish(record, ABORTED)
            return

        deadline = cluster.loop.now + cfg.max_repair_ms
        before = cluster.metadata.membership(pg_index)

        # -- Step 1: begin (epoch bump, dual quorum installed) ----------
        slot = before.slot_of(segment_id)
        alternatives = before.slots[slot]
        if len(alternatives) == 2 and alternatives[0] == segment_id:
            # A dual membership for this segment is already installed
            # (a prior attempt stalled, or an operator began the change):
            # adopt the in-flight candidate instead of beginning again.
            candidate_id = alternatives[1]
            record.notes.append(f"resumed in-flight candidate {candidate_id}")
            after = before
        else:
            while True:
                try:
                    candidate_id = cluster.begin_segment_replacement(
                        pg_index, segment_id
                    )
                    break
                except MembershipError as exc:
                    # Another transition (e.g. an operator-driven
                    # migration) holds the slot machinery; back off and
                    # retry.
                    record.notes.append(f"begin deferred: {exc}")
                    if cluster.loop.now >= deadline:
                        self._finish(record, ABORTED)
                        return
                    yield cfg.retry_policy().cap_ms
            after = cluster.metadata.membership(pg_index)
            self._notify_transition(pg_index, "begin", before, after)
        record.candidate_id = candidate_id
        record.began_at = cluster.loop.now

        # -- Step 2: hydrate (baseline + gossip catch-up) ---------------
        backoff = Backoff(cfg.retry_policy())
        baseline_done = False
        pending_baseline: BaselineResponse | None = None
        transfer_done_at = 0.0
        while True:
            if segment_id in self._returned:
                yield from self._rollback(record, after)
                return
            if cluster.loop.now >= deadline:
                record.notes.append("budget exhausted mid-hydration")
                self._finish(record, STALLED)
                return
            floor = self._update_floor(pg_index)
            candidate = cluster.nodes[candidate_id]
            if baseline_done and candidate.segment.scl >= floor:
                break
            if pending_baseline is not None:
                # Bulk copy in flight: wait it out in poll slices so the
                # rollback and deadline checks above stay responsive.
                if cluster.loop.now >= transfer_done_at:
                    candidate.apply_baseline(pending_baseline)
                    pending_baseline = None
                    baseline_done = True
                else:
                    yield min(
                        cfg.poll_ms, transfer_done_at - cluster.loop.now
                    )
            elif not baseline_done:
                record.hydration_attempts += 1
                reply = yield from self._baseline_rpc(
                    pg_index, candidate_id, record
                )
                if isinstance(reply, BaselineResponse):
                    if cfg.baseline_transfer_ms > 0:
                        pending_baseline = reply
                        transfer_done_at = (
                            cluster.loop.now + cfg.baseline_transfer_ms
                        )
                    else:
                        candidate.apply_baseline(reply)
                        baseline_done = True
                else:
                    yield backoff.next_delay()
            else:
                yield cfg.poll_ms

        # -- Step 3: finalize (epoch bump, suspect dropped) -------------
        if segment_id in self._returned:
            yield from self._rollback(record, after)
            return
        pre_final = cluster.metadata.membership(pg_index)
        cluster.finalize_segment_replacement(pg_index, segment_id)
        final = cluster.metadata.membership(pg_index)
        self._notify_transition(pg_index, "finalize", pre_final, final)
        self._notify_finalize(
            pg_index, candidate_id, cluster.nodes[candidate_id].segment.scl
        )
        self._finish(record, REPLACED)

    def _rollback(self, record: RepairRecord, transitional) -> object:
        """The incumbent returned first: reverse the transition."""
        cluster = self.cluster
        pg_index = record.pg_index
        current = cluster.metadata.membership(pg_index)
        cluster.rollback_segment_replacement(pg_index, record.segment_id)
        restored = cluster.metadata.membership(pg_index)
        self._notify_transition(pg_index, "rollback", current, restored)
        auditor = cluster.auditor
        if auditor is not None and hasattr(auditor, "on_repair_rollback"):
            auditor.on_repair_rollback(pg_index, transitional, restored)
        # Decommission the half-hydrated candidate; its durable state was
        # never the only copy of anything.
        if record.candidate_id is not None:
            cluster.network.fail_node(record.candidate_id)
        record.notes.append("incumbent returned; transition reversed")
        self._finish(record, ROLLED_BACK)
        return
        yield  # pragma: no cover - makes this a generator for yield-from

    def _baseline_rpc(self, pg_index: int, candidate_id: str, record):
        """One baseline attempt against the first healthy full source.

        Polls the future in small slices: a lost request or reply must
        not hang the repair (lost-message futures never resolve).
        """
        cluster = self.cluster
        cfg = self.config
        sources = [
            p.segment_id
            for p in cluster.metadata.baseline_sources_of_pg(pg_index)
            if p.segment_id != candidate_id
            and p.segment_id != record.segment_id
            and cluster.network.is_up(p.segment_id)
        ]
        if not sources:
            record.notes.append("no live baseline source")
            return None
        source = sorted(sources)[0]
        candidate = cluster.nodes[candidate_id]
        future = cluster.network.rpc(
            candidate_id,
            source,
            BaselineRequest(
                from_segment=candidate_id,
                pg_index=pg_index,
                epochs=candidate.epochs.current,
            ),
        )
        waited = 0.0
        while not future.done and waited < cfg.baseline_timeout_ms:
            yield cfg.poll_ms
            waited += cfg.poll_ms
        if not future.done:
            record.notes.append(f"baseline from {source} timed out")
            return None
        reply = future.result()
        if isinstance(reply, RequestRejected):
            # The source is ahead of the candidate's epoch view (epoch
            # bumps ride write traffic, and a quiet PG delivers none).
            # The rejection carries the source's current stamp exactly so
            # the requester can refresh; without adopting it the retry
            # loop would re-present the same stale stamp forever.
            candidate.epochs.advance(reply.current_epochs)
            note = f"baseline epochs refreshed from {source}"
            if note not in record.notes:
                record.notes.append(note)
            return None
        return reply

    # ------------------------------------------------------------------
    # Auditor notifications
    # ------------------------------------------------------------------
    def _live_members(self, members) -> frozenset:
        network = self.cluster.network
        return frozenset(m for m in members if network.is_up(m))

    def _notify_transition(self, pg_index, stage, before, after) -> None:
        auditor = self.cluster.auditor
        if auditor is None or not hasattr(auditor, "on_repair_transition"):
            return
        auditor.on_repair_transition(
            pg_index,
            stage,
            before,
            after,
            self._live_members(before.members | after.members),
        )

    def _notify_finalize(self, pg_index, candidate_id, scl) -> None:
        auditor = self.cluster.auditor
        if auditor is None or not hasattr(auditor, "on_repair_finalize"):
            return
        auditor.on_repair_finalize(pg_index, candidate_id, scl)
