"""Passive per-segment failure detection for the repair control plane.

The paper never polls storage nodes with a dedicated heartbeat: "quorums
help to mitigate the performance variability of individual disks and
nodes", and membership changes begin when a segment *"is suspected to have
failed"* from the signals the system already produces.  The monitor infers
health the same way, from three passive streams:

- **acknowledgement staleness** -- the writer's driver reports every
  :class:`~repro.storage.messages.WriteAck` (and every read reply and
  rejection: a rejection is stale-epoch evidence, but it proves the
  segment alive);
- **gossip evidence** -- peer storage nodes report both replies (alive)
  and unanswered gossip RPCs (timeouts);
- **hedged-read escalations** -- a segment the read router repeatedly
  hedges away from is grey: alive but slow.

Silence is judged *relative to the freshest liveness signal in the same
protection group*, not against wall-clock: when the writer crashes (or the
whole fleet partitions), every segment goes quiet together, the PG's
freshness frontier stops advancing, and nobody is suspected -- mass
silence is indistinguishable from observer failure and must not trigger
churn.  A segment is only suspected when it is silent *while its peers are
heard from*.

The state machine per segment is ``HEALTHY -> SUSPECT -> DEAD`` with
hysteresis in both directions:

- HEALTHY -> SUSPECT on relative silence beyond the segment's *adaptive*
  silence threshold, or on a burst of hedges/gossip timeouts (grey
  failure);
- SUSPECT -> HEALTHY on a liveness signal once the burst evidence has
  subsided (a single ack does not refute a live hedge/timeout burst --
  recovering on every ack while the burst persists is exactly the flap
  storm this monitor used to produce);
- SUSPECT -> DEAD only after the confirmation window of *continued* ack
  silence -- a grey segment that keeps acknowledging writes can live in
  SUSPECT forever without ever being confirmed dead;
- DEAD -> HEALTHY when the segment is heard from again (the false-positive
  path Figure 5 is designed to survive).  Each false positive doubles that
  segment's future confirmation timeout (capped), so a flapping segment
  stops causing repair churn -- the configurable backoff the issue asks
  for.

**Adaptive cadence.**  Fixed silence constants assume traffic density the
workload does not promise: under sparse keepalive traffic a segment that
is acked every 600 ms is 450 ms "silent" relative to its freshest peer for
most of every cycle, and a fixed 150 ms threshold turns that into hundreds
of suspect/recover transitions per run.  The monitor therefore keeps an
EWMA of observed inter-signal gaps -- per segment, and per protection
group -- and derives each segment's suspect threshold and confirmation
window from the cadence it has actually seen (``cadence_multiplier`` /
``confirm_multiplier`` times the EWMA, clamped between the configured
floor and ceiling).  The PG-wide EWMA tracks the *aggregate* signal
rate, so it is scaled by the member count before use: a PG heard from
every 100 ms through six members implies each member speaks about every
600 ms, and that per-member expectation -- not the aggregate rate -- is
what a segment's silence must be judged against.  Dense gossip keeps the thresholds at their floors
(detection stays fast); sparse traffic stretches them automatically.  A
protection group whose *entire* signal stream has gone quiet (workload
idle, every peer silent together) suspends silence judgement outright:
the PG frontier is stale, so accrued relative silence is evidence about
the observer, not the segment.

The monitor is part of the repair control plane, like the storage metadata
service: deliberately not on any data path, and correctness never depends
on it (a wrong verdict only triggers a reversible membership change).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventLoop
    from repro.storage.metadata import StorageMetadataService


class SegmentHealth(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class HealthConfig:
    """Detection knobs (times in simulated ms).

    Defaults are tuned against the chaos sweep: transient faults (the
    chaos generator bounds event durations at ~350 ms) mostly come back
    inside ``suspect_silence_ms + confirm_after_ms``, so only genuinely
    extended outages graduate to DEAD and trigger a repair.
    """

    #: Monitor sweep interval.  Fixed (never jittered): the monitor draws
    #: nothing from the shared simulation RNG, so arming it does not
    #: perturb seeded schedules.
    tick_interval_ms: float = 25.0
    #: Floor of the relative-silence threshold: with dense traffic the
    #: adaptive threshold sits exactly here, preserving fast detection.
    suspect_silence_ms: float = 150.0
    #: Floor of the continued-silence confirmation window.
    confirm_after_ms: float = 450.0
    #: Hedge/timeout burst window and thresholds for grey suspicion.
    burst_window_ms: float = 250.0
    hedge_suspect_count: int = 4
    timeout_suspect_count: int = 3
    #: Per-segment confirmation backoff after a false positive.
    false_positive_backoff: float = 2.0
    max_confirm_ms: float = 8_000.0
    #: Adaptive cadence: derive per-segment thresholds from an EWMA of
    #: observed inter-signal gaps instead of trusting the fixed floors.
    #: Disable to reproduce the legacy fixed-constant monitor.
    adaptive: bool = True
    #: EWMA weight of the newest observed gap.
    cadence_alpha: float = 0.25
    #: Suspect threshold = clamp(multiplier x EWMA gap, floor, ceiling).
    cadence_multiplier: float = 4.0
    max_suspect_silence_ms: float = 2_000.0
    #: Confirmation window = clamp(multiplier x EWMA gap, confirm floor,
    #: max_confirm_ms); sparse evidence demands a longer confirmation.
    confirm_multiplier: float = 6.0
    #: A PG whose freshest signal is older than this multiple of its own
    #: cadence is idle as a whole: silence judgement is suspended.
    pg_idle_multiplier: float = 3.0


@dataclass
class _SegmentState:
    state: SegmentHealth = SegmentHealth.HEALTHY
    pg_index: int = -1
    suspect_since: float = 0.0
    #: Base confirmation timeout (grows on false positives).
    confirm_ms: float = 0.0
    #: EWMA of this segment's observed inter-signal gaps (None until the
    #: second signal; the thresholds then sit at their floors).
    gap_ewma_ms: float | None = None
    hedges: deque = field(default_factory=deque)
    timeouts: deque = field(default_factory=deque)


class HealthMonitor:
    """Aggregates passive liveness signals into per-segment verdicts.

    Signal producers hold this as a ``health_probe`` attribute (same
    pattern as the auditor's ``audit_probe``); consumers subscribe to
    :attr:`on_confirmed_dead` / :attr:`on_recovered`.
    """

    def __init__(
        self,
        loop: "EventLoop",
        metadata: "StorageMetadataService",
        config: HealthConfig | None = None,
    ) -> None:
        self.loop = loop
        self.metadata = metadata
        self.config = config if config is not None else HealthConfig()
        #: Fired with ``(segment_id, last_alive_at, confirmed_at)`` when a
        #: suspect is confirmed dead.
        self.on_confirmed_dead: list[Callable[[str, float, float], None]] = []
        #: Fired with ``(segment_id,)`` when a DEAD segment is heard from
        #: again (false positive; the planner rolls back).
        self.on_recovered: list[Callable[[str], None]] = []
        self.events: list[tuple[float, str, str]] = []
        self.counters = {
            "suspected": 0,
            "confirmed_dead": 0,
            "false_positives": 0,
            "recovered_suspects": 0,
        }
        self._last_alive: dict[str, float] = {}
        self._states: dict[str, _SegmentState] = {}
        #: Segments torn down for good (a dismantled region's nodes).
        #: Metadata may still list them -- nobody is left to run the
        #: membership change -- but the sweep must neither re-track nor
        #: judge them, or every tick confirms a fresh ghost suspect.
        self._retired: set[str] = set()
        #: Per-PG signal cadence: pg_index -> [last_signal_at, gap EWMA].
        self._pg_cadence: dict[int, list] = {}
        #: Current member count per PG (scales the aggregate PG cadence
        #: into a per-member expectation).
        self._pg_size: dict[int, int] = {}
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.config.tick_interval_ms, self._tick)

    def stop(self) -> None:
        self._running = False

    def retire(self, segment_id: str) -> None:
        """Permanently stop tracking ``segment_id`` (teardown, not death).

        Unlike silent removal from ``_states``, retirement survives the
        sweep's membership re-scan: a retired segment is never re-added
        even while metadata still lists it, and late liveness signals
        from it are ignored rather than resurrecting tracking.
        """
        self._retired.add(segment_id)
        self._states.pop(segment_id, None)
        self._last_alive.pop(segment_id, None)

    def is_retired(self, segment_id: str) -> bool:
        return segment_id in self._retired

    def state_of(self, segment_id: str) -> SegmentHealth:
        entry = self._states.get(segment_id)
        return entry.state if entry is not None else SegmentHealth.HEALTHY

    def last_alive(self, segment_id: str) -> float | None:
        return self._last_alive.get(segment_id)

    def freshest_signal(self) -> float | None:
        """Timestamp of the newest liveness signal across *all* tracked
        segments.  The database-tier monitor uses this as a reference
        frontier: storage gossip keeps flowing even when the writer is
        down, so a fresh storage frontier proves the observer itself is
        alive and that database-tier silence is evidence."""
        return max(self._last_alive.values(), default=None)

    # ------------------------------------------------------------------
    # Signal intake (producers: driver acks/reads, node gossip)
    # ------------------------------------------------------------------
    def note_ack(self, segment_id: str) -> None:
        self._alive(segment_id)

    def note_alive(self, segment_id: str) -> None:
        self._alive(segment_id)

    def note_rejection(self, segment_id: str) -> None:
        # Stale-epoch evidence, but the segment answered: it is alive.
        self._alive(segment_id)

    def note_peer_alive(self, segment_id: str) -> None:
        self._alive(segment_id)

    def note_hedge(self, segment_id: str) -> None:
        entry = self._states.get(segment_id)
        if entry is not None:
            # Prune on intake, not only on tick: long runs must not
            # accumulate unbounded signal history between sweeps.
            self._prune(entry.hedges, self.loop.now)
            entry.hedges.append(self.loop.now)

    def note_peer_timeout(self, segment_id: str) -> None:
        entry = self._states.get(segment_id)
        if entry is not None:
            self._prune(entry.timeouts, self.loop.now)
            entry.timeouts.append(self.loop.now)

    def _alive(self, segment_id: str) -> None:
        if segment_id in self._retired:
            return  # late gossip from a dismantled node: not evidence
        now = self.loop.now
        last = self._last_alive.get(segment_id)
        self._last_alive[segment_id] = now
        entry = self._states.get(segment_id)
        if entry is None:
            return
        self._observe_cadence(entry, last, now)
        if entry.state is SegmentHealth.SUSPECT:
            # A liveness signal only refutes *silence*.  While a hedge or
            # gossip-timeout burst is still live, recovering here would
            # let the next sweep re-suspect instantly -- one flap per ack
            # for as long as the segment stays grey.
            if (
                self._prune(entry.hedges, now)
                < self.config.hedge_suspect_count
                and self._prune(entry.timeouts, now)
                < self.config.timeout_suspect_count
            ):
                entry.state = SegmentHealth.HEALTHY
                self.counters["recovered_suspects"] += 1
                self._log("suspect-recovered", segment_id)
        elif entry.state is SegmentHealth.DEAD:
            entry.state = SegmentHealth.HEALTHY
            self.counters["false_positives"] += 1
            # Cried wolf: require longer confirmation next time.
            entry.confirm_ms = min(
                entry.confirm_ms * self.config.false_positive_backoff,
                self.config.max_confirm_ms,
            )
            self._log("false-positive-return", segment_id)
            for callback in list(self.on_recovered):
                callback(segment_id)

    # ------------------------------------------------------------------
    # Adaptive cadence (EWMA of observed inter-signal gaps)
    # ------------------------------------------------------------------
    def _observe_cadence(
        self, entry: _SegmentState, last: float | None, now: float
    ) -> None:
        cfg = self.config
        if not cfg.adaptive:
            return
        alpha = cfg.cadence_alpha
        if last is not None:
            gap = now - last
            entry.gap_ewma_ms = (
                gap
                if entry.gap_ewma_ms is None
                else alpha * gap + (1.0 - alpha) * entry.gap_ewma_ms
            )
        cadence = self._pg_cadence.get(entry.pg_index)
        if cadence is None:
            self._pg_cadence[entry.pg_index] = [now, None]
            return
        pg_gap = now - cadence[0]
        cadence[0] = now
        cadence[1] = (
            pg_gap
            if cadence[1] is None
            else alpha * pg_gap + (1.0 - alpha) * cadence[1]
        )

    def _cadence_ms(self, entry: _SegmentState) -> float | None:
        """Slowest of the segment's own cadence and the PG's per-member
        cadence (aggregate PG gap x member count: with signals spread
        round-robin, each member speaks once per full rotation)."""
        pg = self._pg_cadence.get(entry.pg_index)
        per_member = None
        if pg is not None and pg[1] is not None:
            per_member = pg[1] * max(1, self._pg_size.get(entry.pg_index, 1))
        gaps = [
            g for g in (entry.gap_ewma_ms, per_member) if g is not None
        ]
        return max(gaps) if gaps else None

    def suspect_threshold_ms(self, segment_id: str) -> float:
        """The relative-silence threshold currently applied to a segment."""
        cfg = self.config
        entry = self._states.get(segment_id)
        if entry is None or not cfg.adaptive:
            return cfg.suspect_silence_ms
        cadence = self._cadence_ms(entry)
        if cadence is None:
            return cfg.suspect_silence_ms
        return min(
            max(cfg.suspect_silence_ms, cfg.cadence_multiplier * cadence),
            cfg.max_suspect_silence_ms,
        )

    def confirm_window_ms(self, segment_id: str) -> float:
        """The confirmation window currently applied to a SUSPECT segment
        (false-positive backoff raises the base; sparse cadence stretches
        it further)."""
        cfg = self.config
        entry = self._states.get(segment_id)
        if entry is None:
            return cfg.confirm_after_ms
        base = entry.confirm_ms or cfg.confirm_after_ms
        if not cfg.adaptive:
            return base
        cadence = self._cadence_ms(entry)
        if cadence is None:
            return base
        return min(
            max(base, cfg.confirm_multiplier * cadence), cfg.max_confirm_ms
        )

    def _pg_active(self, pg_index: int, freshest: float, now: float) -> bool:
        """False when the whole PG's signal stream has gone quiet: the
        frontier is stale, so relative silence says nothing about any one
        member (workload idle, observer partitioned, writer down)."""
        cfg = self.config
        if not cfg.adaptive:
            return True
        cadence = self._pg_cadence.get(pg_index)
        ewma = cadence[1] if cadence and cadence[1] is not None else None
        grace = (
            cfg.suspect_silence_ms
            if ewma is None
            else min(
                max(cfg.suspect_silence_ms, cfg.pg_idle_multiplier * ewma),
                cfg.max_suspect_silence_ms,
            )
        )
        return now - freshest <= grace

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.loop.now
        cfg = self.config
        for pg_index in self.metadata.pg_indexes():
            members = self.metadata.membership(pg_index).members
            if self._retired:
                members = frozenset(m for m in members if m not in self._retired)
            if not members:
                continue
            self._track_membership(pg_index, members, now)
            freshest = max(self._last_alive[m] for m in members)
            pg_active = self._pg_active(pg_index, freshest, now)
            for segment_id in members:
                self._judge(segment_id, freshest, now, pg_active)
        self.loop.schedule(cfg.tick_interval_ms, self._tick)

    def _track_membership(
        self, pg_index: int, members: frozenset, now: float
    ) -> None:
        self._pg_size[pg_index] = len(members)
        for segment_id in members:
            if segment_id not in self._states:
                # Grace period: a newly tracked member (bootstrap, or a
                # candidate mid-hydration) starts provisionally alive.
                self._last_alive.setdefault(segment_id, now)
                entry = _SegmentState(
                    pg_index=pg_index,
                    confirm_ms=self.config.confirm_after_ms,
                )
                self._states[segment_id] = entry
        for segment_id in [
            s
            for s, _e in self._states.items()
            if s not in members
            and self.metadata.placement(s).pg_index == pg_index
        ]:
            # Replaced (or rolled-back candidate): stop judging it.
            del self._states[segment_id]

    def _prune(self, times: deque, now: float) -> int:
        horizon = now - self.config.burst_window_ms
        while times and times[0] < horizon:
            times.popleft()
        return len(times)

    def _judge(
        self, segment_id: str, freshest: float, now: float, pg_active: bool
    ) -> None:
        cfg = self.config
        entry = self._states[segment_id]
        silence = freshest - self._last_alive[segment_id]
        threshold = self.suspect_threshold_ms(segment_id)
        hedges = self._prune(entry.hedges, now)
        timeouts = self._prune(entry.timeouts, now)
        if entry.state is SegmentHealth.HEALTHY:
            if (
                (pg_active and silence > threshold)
                or hedges >= cfg.hedge_suspect_count
                or timeouts >= cfg.timeout_suspect_count
            ):
                entry.state = SegmentHealth.SUSPECT
                entry.suspect_since = now
                self.counters["suspected"] += 1
                self._log("suspected", segment_id)
        elif entry.state is SegmentHealth.SUSPECT:
            if (
                silence <= threshold
                and hedges < cfg.hedge_suspect_count
                and timeouts < cfg.timeout_suspect_count
            ):
                # Grey burst subsided while acks kept flowing.
                entry.state = SegmentHealth.HEALTHY
                self.counters["recovered_suspects"] += 1
                self._log("suspect-decayed", segment_id)
            elif (
                pg_active
                and silence > threshold
                and now - entry.suspect_since
                >= self.confirm_window_ms(segment_id)
            ):
                # Confirmation always requires *ack* silence while peers
                # are being heard: a slow but acknowledging segment never
                # graduates past SUSPECT, and a quiet PG confirms nobody.
                entry.state = SegmentHealth.DEAD
                self.counters["confirmed_dead"] += 1
                self._log("confirmed-dead", segment_id)
                failed_at = self._last_alive[segment_id]
                for callback in list(self.on_confirmed_dead):
                    callback(segment_id, failed_at, now)
        # DEAD: stays dead until a liveness signal revives it (_alive).

    def _log(self, event: str, segment_id: str) -> None:
        self.events.append((self.loop.now, event, segment_id))
