"""Passive per-segment failure detection for the repair control plane.

The paper never polls storage nodes with a dedicated heartbeat: "quorums
help to mitigate the performance variability of individual disks and
nodes", and membership changes begin when a segment *"is suspected to have
failed"* from the signals the system already produces.  The monitor infers
health the same way, from three passive streams:

- **acknowledgement staleness** -- the writer's driver reports every
  :class:`~repro.storage.messages.WriteAck` (and every read reply and
  rejection: a rejection is stale-epoch evidence, but it proves the
  segment alive);
- **gossip evidence** -- peer storage nodes report both replies (alive)
  and unanswered gossip RPCs (timeouts);
- **hedged-read escalations** -- a segment the read router repeatedly
  hedges away from is grey: alive but slow.

Silence is judged *relative to the freshest liveness signal in the same
protection group*, not against wall-clock: when the writer crashes (or the
whole fleet partitions), every segment goes quiet together, the PG's
freshness frontier stops advancing, and nobody is suspected -- mass
silence is indistinguishable from observer failure and must not trigger
churn.  A segment is only suspected when it is silent *while its peers are
heard from*.

The state machine per segment is ``HEALTHY -> SUSPECT -> DEAD`` with
hysteresis in both directions:

- HEALTHY -> SUSPECT on relative silence beyond ``suspect_silence_ms``,
  or on a burst of hedges/gossip timeouts (grey failure);
- SUSPECT -> HEALTHY the moment any liveness signal arrives (and by decay
  when a hedge burst subsides while acks keep flowing);
- SUSPECT -> DEAD only after ``confirm_after_ms`` of *continued* ack
  silence -- a grey segment that keeps acknowledging writes can live in
  SUSPECT forever without ever being confirmed dead;
- DEAD -> HEALTHY when the segment is heard from again (the false-positive
  path Figure 5 is designed to survive).  Each false positive doubles that
  segment's future confirmation timeout (capped), so a flapping segment
  stops causing repair churn -- the configurable backoff the issue asks
  for.

The monitor is part of the repair control plane, like the storage metadata
service: deliberately not on any data path, and correctness never depends
on it (a wrong verdict only triggers a reversible membership change).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import EventLoop
    from repro.storage.metadata import StorageMetadataService


class SegmentHealth(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class HealthConfig:
    """Detection knobs (times in simulated ms).

    Defaults are tuned against the chaos sweep: transient faults (the
    chaos generator bounds event durations at ~350 ms) mostly come back
    inside ``suspect_silence_ms + confirm_after_ms``, so only genuinely
    extended outages graduate to DEAD and trigger a repair.
    """

    #: Monitor sweep interval.  Fixed (never jittered): the monitor draws
    #: nothing from the shared simulation RNG, so arming it does not
    #: perturb seeded schedules.
    tick_interval_ms: float = 25.0
    #: Relative silence before a segment becomes SUSPECT.
    suspect_silence_ms: float = 150.0
    #: Continued silence in SUSPECT before confirming DEAD.
    confirm_after_ms: float = 450.0
    #: Hedge/timeout burst window and thresholds for grey suspicion.
    burst_window_ms: float = 250.0
    hedge_suspect_count: int = 4
    timeout_suspect_count: int = 3
    #: Per-segment confirmation backoff after a false positive.
    false_positive_backoff: float = 2.0
    max_confirm_ms: float = 8_000.0


@dataclass
class _SegmentState:
    state: SegmentHealth = SegmentHealth.HEALTHY
    suspect_since: float = 0.0
    #: Current confirmation timeout (grows on false positives).
    confirm_ms: float = 0.0
    hedges: deque = field(default_factory=deque)
    timeouts: deque = field(default_factory=deque)


class HealthMonitor:
    """Aggregates passive liveness signals into per-segment verdicts.

    Signal producers hold this as a ``health_probe`` attribute (same
    pattern as the auditor's ``audit_probe``); consumers subscribe to
    :attr:`on_confirmed_dead` / :attr:`on_recovered`.
    """

    def __init__(
        self,
        loop: "EventLoop",
        metadata: "StorageMetadataService",
        config: HealthConfig | None = None,
    ) -> None:
        self.loop = loop
        self.metadata = metadata
        self.config = config if config is not None else HealthConfig()
        #: Fired with ``(segment_id, last_alive_at, confirmed_at)`` when a
        #: suspect is confirmed dead.
        self.on_confirmed_dead: list[Callable[[str, float, float], None]] = []
        #: Fired with ``(segment_id,)`` when a DEAD segment is heard from
        #: again (false positive; the planner rolls back).
        self.on_recovered: list[Callable[[str], None]] = []
        self.events: list[tuple[float, str, str]] = []
        self.counters = {
            "suspected": 0,
            "confirmed_dead": 0,
            "false_positives": 0,
            "recovered_suspects": 0,
        }
        self._last_alive: dict[str, float] = {}
        self._states: dict[str, _SegmentState] = {}
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.config.tick_interval_ms, self._tick)

    def stop(self) -> None:
        self._running = False

    def state_of(self, segment_id: str) -> SegmentHealth:
        entry = self._states.get(segment_id)
        return entry.state if entry is not None else SegmentHealth.HEALTHY

    def last_alive(self, segment_id: str) -> float | None:
        return self._last_alive.get(segment_id)

    # ------------------------------------------------------------------
    # Signal intake (producers: driver acks/reads, node gossip)
    # ------------------------------------------------------------------
    def note_ack(self, segment_id: str) -> None:
        self._alive(segment_id)

    def note_alive(self, segment_id: str) -> None:
        self._alive(segment_id)

    def note_rejection(self, segment_id: str) -> None:
        # Stale-epoch evidence, but the segment answered: it is alive.
        self._alive(segment_id)

    def note_peer_alive(self, segment_id: str) -> None:
        self._alive(segment_id)

    def note_hedge(self, segment_id: str) -> None:
        entry = self._states.get(segment_id)
        if entry is not None:
            entry.hedges.append(self.loop.now)

    def note_peer_timeout(self, segment_id: str) -> None:
        entry = self._states.get(segment_id)
        if entry is not None:
            entry.timeouts.append(self.loop.now)

    def _alive(self, segment_id: str) -> None:
        now = self.loop.now
        self._last_alive[segment_id] = now
        entry = self._states.get(segment_id)
        if entry is None:
            return
        if entry.state is SegmentHealth.SUSPECT:
            entry.state = SegmentHealth.HEALTHY
            self.counters["recovered_suspects"] += 1
            self._log("suspect-recovered", segment_id)
        elif entry.state is SegmentHealth.DEAD:
            entry.state = SegmentHealth.HEALTHY
            self.counters["false_positives"] += 1
            # Cried wolf: require longer confirmation next time.
            entry.confirm_ms = min(
                entry.confirm_ms * self.config.false_positive_backoff,
                self.config.max_confirm_ms,
            )
            self._log("false-positive-return", segment_id)
            for callback in list(self.on_recovered):
                callback(segment_id)

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.loop.now
        cfg = self.config
        for pg_index in self.metadata.pg_indexes():
            members = self.metadata.membership(pg_index).members
            self._track_membership(pg_index, members, now)
            freshest = max(self._last_alive[m] for m in members)
            for segment_id in members:
                self._judge(segment_id, freshest, now)
        self.loop.schedule(cfg.tick_interval_ms, self._tick)

    def _track_membership(
        self, pg_index: int, members: frozenset, now: float
    ) -> None:
        for segment_id in members:
            if segment_id not in self._states:
                # Grace period: a newly tracked member (bootstrap, or a
                # candidate mid-hydration) starts provisionally alive.
                self._last_alive.setdefault(segment_id, now)
                entry = _SegmentState(confirm_ms=self.config.confirm_after_ms)
                self._states[segment_id] = entry
        for segment_id in [
            s
            for s, _e in self._states.items()
            if s not in members
            and self.metadata.placement(s).pg_index == pg_index
        ]:
            # Replaced (or rolled-back candidate): stop judging it.
            del self._states[segment_id]

    def _prune(self, times: deque, now: float) -> int:
        horizon = now - self.config.burst_window_ms
        while times and times[0] < horizon:
            times.popleft()
        return len(times)

    def _judge(self, segment_id: str, freshest: float, now: float) -> None:
        cfg = self.config
        entry = self._states[segment_id]
        silence = freshest - self._last_alive[segment_id]
        hedges = self._prune(entry.hedges, now)
        timeouts = self._prune(entry.timeouts, now)
        if entry.state is SegmentHealth.HEALTHY:
            if (
                silence > cfg.suspect_silence_ms
                or hedges >= cfg.hedge_suspect_count
                or timeouts >= cfg.timeout_suspect_count
            ):
                entry.state = SegmentHealth.SUSPECT
                entry.suspect_since = now
                self.counters["suspected"] += 1
                self._log("suspected", segment_id)
        elif entry.state is SegmentHealth.SUSPECT:
            if (
                silence <= cfg.suspect_silence_ms
                and hedges < cfg.hedge_suspect_count
                and timeouts < cfg.timeout_suspect_count
            ):
                # Grey burst subsided while acks kept flowing.
                entry.state = SegmentHealth.HEALTHY
                self.counters["recovered_suspects"] += 1
                self._log("suspect-decayed", segment_id)
            elif (
                silence > cfg.suspect_silence_ms
                and now - entry.suspect_since >= entry.confirm_ms
            ):
                # Confirmation always requires *ack* silence: a slow but
                # acknowledging segment never graduates past SUSPECT.
                entry.state = SegmentHealth.DEAD
                self.counters["confirmed_dead"] += 1
                self._log("confirmed-dead", segment_id)
                failed_at = self._last_alive[segment_id]
                for callback in list(self.on_confirmed_dead):
                    callback(segment_id, failed_at, now)
        # DEAD: stays dead until a liveness signal revives it (_alive).

    def _log(self, event: str, segment_id: str) -> None:
        self.events.append((self.loop.now, event, segment_id))
