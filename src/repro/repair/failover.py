"""Autonomous writer failover: promotion, fencing, and telemetry.

The paper's section 6 recovery story -- bump the volume epoch, establish
the truncation range, open for business with no redo-replay pause --
assumes *something* noticed the writer died and started a successor.
The :class:`FailoverCoordinator` closes that loop at the database tier,
the same way :class:`~repro.repair.planner.RepairPlanner` closes it for
storage segments:

- the :class:`~repro.repair.db_health.DbHealthMonitor` confirms the
  writer dead from passive signals;
- the coordinator selects the most-caught-up healthy replica (highest
  applied VDL, preferring a different AZ than the failed writer) and
  promotes it via :meth:`~repro.db.cluster.AuroraCluster.promote_replica`;
- promotion *is* crash recovery on the successor, and recovery is
  fence-first: the new writer bumps the volume epoch and establishes it
  on a write quorum of every PG before reading a thing, so a zombie
  incumbent's late batches are epoch-rejected from that point on --
  "changing the locks on the door" rather than reaching consensus about
  who is primary;
- if the monitor's verdict was wrong and the incumbent returns before
  promotion begins, the coordinator rolls the failover back (outcome
  ``rolled_back``) and nothing changed -- a false positive costs one
  backoff doubling in the monitor, not a writer generation.

Every failover is stamped into a :class:`FailoverRecord` so runs can
report the distributions the availability story cares about: detection
latency (failure -> confirmed dead), promotion time (promotion start ->
new writer open), and the total write-unavailability window (failure ->
new writer open), judged against the paper's ~30 s budget by
:mod:`repro.analysis.failover_availability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.db.instance import InstanceState
from repro.repair.db_health import WRITER
from repro.repair.metrics import (
    ABORTED,
    ACTIVE,
    ROLLED_BACK,
    STALLED,
    LatencyStats,
)
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.cluster import AuroraCluster
    from repro.repair.db_health import DbHealthMonitor

#: Failover-specific terminal outcomes (alongside the shared repair
#: outcome vocabulary: ``rolled_back``, ``aborted``, ``stalled``).
PROMOTED = "promoted"  #: a replica was promoted and opened as the writer
RESTARTED = "restarted"  #: no candidate; the incumbent was restarted in place

FAILOVER_TERMINAL = frozenset(
    {PROMOTED, RESTARTED, ROLLED_BACK, ABORTED, STALLED}
)


@dataclass
class FailoverConfig:
    """Coordinator knobs (times in simulated ms)."""

    #: Poll slice while waiting on promotion recovery.
    poll_ms: float = 5.0
    #: Budget for the whole failover; exceeding it stamps ``stalled``.
    max_failover_ms: float = 20_000.0
    #: Pause between failed promotion-recovery attempts (a read quorum
    #: can be transiently unreachable mid-chaos).
    retry_wait_ms: float = 250.0
    #: Attach a replacement replica after a successful promotion, keeping
    #: the read fleet (and the next failover's candidate pool) sized.
    replenish_replicas: bool = True


@dataclass
class FailoverRecord:
    """One confirmed writer death's journey through failover.

    ``failed_at`` is the writer's last provable liveness signal, so
    ``unavailability_ms`` measures the full window during which no writer
    could acknowledge a commit -- the number the availability budget is
    judged against.
    """

    writer_id: str
    failed_at: float
    confirmed_at: float
    candidate_id: str | None = None
    began_at: float | None = None
    promoted_at: float | None = None
    finished_at: float | None = None
    outcome: str = ACTIVE
    promotion_attempts: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def detection_ms(self) -> float:
        """Failure to confirmed-dead (the monitor's reaction time)."""
        return self.confirmed_at - self.failed_at

    @property
    def promotion_ms(self) -> float | None:
        """Promotion start to new-writer-open (None unless promoted or
        restarted)."""
        if self.promoted_at is None or self.began_at is None:
            return None
        return self.promoted_at - self.began_at

    @property
    def unavailability_ms(self) -> float | None:
        """Total write-unavailability window: last liveness signal of the
        old writer to the successor opening."""
        if self.promoted_at is None:
            return None
        return self.promoted_at - self.failed_at

    def __str__(self) -> str:
        window = (
            f" unavail={self.unavailability_ms:.0f}ms"
            if self.unavailability_ms is not None
            else ""
        )
        return (
            f"failover {self.writer_id}"
            f" -> {self.candidate_id or '?'} [{self.outcome}]"
            f" detect={self.detection_ms:.0f}ms{window}"
        )


@dataclass
class FailoverSummary:
    """Aggregated failover statistics for one run (or one sweep seed)."""

    confirmed: int = 0
    promoted: int = 0
    restarted: int = 0
    rolled_back: int = 0
    aborted: int = 0
    stalled: int = 0
    active: int = 0
    detection: LatencyStats = field(default_factory=LatencyStats)
    promotion: LatencyStats = field(default_factory=LatencyStats)
    unavailability: LatencyStats = field(default_factory=LatencyStats)

    def merge(self, other: "FailoverSummary") -> None:
        self.confirmed += other.confirmed
        self.promoted += other.promoted
        self.restarted += other.restarted
        self.rolled_back += other.rolled_back
        self.aborted += other.aborted
        self.stalled += other.stalled
        self.active += other.active
        self.detection.merge(other.detection)
        self.promotion.merge(other.promotion)
        self.unavailability.merge(other.unavailability)

    def render_lines(self) -> list[str]:
        lines = [
            f"  failovers confirmed: {self.confirmed} "
            f"(promoted={self.promoted} restarted={self.restarted} "
            f"rolled_back={self.rolled_back} aborted={self.aborted} "
            f"stalled={self.stalled} active={self.active})",
        ]
        if self.detection.count:
            lines.append(
                f"  failover detection:  {self.detection.describe()}"
            )
        if self.promotion.count:
            lines.append(
                f"  promotion time:      {self.promotion.describe()}"
            )
        if self.unavailability.count:
            lines.append(
                f"  write unavailability: {self.unavailability.describe()}"
            )
        return lines


def summarize_failovers(records: list[FailoverRecord]) -> FailoverSummary:
    summary = FailoverSummary(confirmed=len(records))
    for record in records:
        if record.outcome == PROMOTED:
            summary.promoted += 1
        elif record.outcome == RESTARTED:
            summary.restarted += 1
        elif record.outcome == ROLLED_BACK:
            summary.rolled_back += 1
        elif record.outcome == ABORTED:
            summary.aborted += 1
        elif record.outcome == STALLED:
            summary.stalled += 1
        else:
            summary.active += 1
        summary.detection.samples.append(record.detection_ms)
        if record.promotion_ms is not None:
            summary.promotion.samples.append(record.promotion_ms)
        if record.unavailability_ms is not None:
            summary.unavailability.samples.append(record.unavailability_ms)
    return summary


class FailoverCoordinator:
    """Reacts to confirmed writer deaths with a fenced promotion.

    One failover runs at a time (there is only one writer); replica
    deaths are recorded by the monitor but trigger nothing here.  The
    coordinator is control-plane only: correctness never depends on its
    verdicts, because the volume-epoch fence makes even a wrong promotion
    safe against the incumbent.
    """

    def __init__(
        self,
        cluster: "AuroraCluster",
        monitor: "DbHealthMonitor",
        config: FailoverConfig | None = None,
    ) -> None:
        self.cluster = cluster
        self.monitor = monitor
        self.config = config if config is not None else FailoverConfig()
        self.records: list[FailoverRecord] = []
        self._active: FailoverRecord | None = None
        #: Instances the monitor revived after confirming dead (the
        #: false-positive path: roll back instead of promoting).
        self._returned: set[str] = set()
        self._replenished = 0
        monitor.on_confirmed_dead.append(self._on_confirmed_dead)
        monitor.on_recovered.append(self._on_recovered)

    @property
    def idle(self) -> bool:
        return self._active is None

    def summary(self) -> FailoverSummary:
        return summarize_failovers(self.records)

    # ------------------------------------------------------------------
    # Monitor callbacks
    # ------------------------------------------------------------------
    def _on_confirmed_dead(
        self, instance_id: str, failed_at: float, confirmed_at: float
    ) -> None:
        if self.monitor.role_of(instance_id) != WRITER:
            return  # dead replica: read capacity lost, not availability
        writer = self.cluster.writer
        if writer is None or writer.name != instance_id:
            return  # stale verdict about an already-replaced writer
        if self._active is not None:
            return  # a failover is already in flight
        self._returned.discard(instance_id)
        record = FailoverRecord(
            writer_id=instance_id,
            failed_at=failed_at,
            confirmed_at=confirmed_at,
        )
        self.records.append(record)
        self._active = record
        Process(self.cluster.loop, self._failover(record))

    def _on_recovered(self, instance_id: str) -> None:
        self._returned.add(instance_id)

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def _select_candidate(self, failed_writer: str) -> str | None:
        """Most-caught-up healthy replica; AZ diversity breaks ties.

        Preference order: highest applied VDL, then an AZ different from
        the failed writer's, then name (for determinism).  Replicas the
        monitor holds confirmed-dead, or whose node is down, are skipped
        -- promoting an unreachable replica helps nobody.
        """
        from repro.repair.health import SegmentHealth

        network = self.cluster.network
        failed_az = network.az_of(failed_writer)
        best: tuple | None = None
        best_name: str | None = None
        for name in sorted(self.cluster.replicas):
            replica = self.cluster.replicas[name]
            if not replica.online or not network.is_up(name):
                continue
            if self.monitor.state_of(name) is SegmentHealth.DEAD:
                continue
            diverse = 1 if network.az_of(name) != failed_az else 0
            rank = (replica.applied_vdl, diverse)
            if best is None or rank > best:
                best = rank
                best_name = name
        return best_name

    # ------------------------------------------------------------------
    # The failover process
    # ------------------------------------------------------------------
    def _failover(self, record: FailoverRecord):
        cfg = self.config
        cluster = self.cluster
        loop = cluster.loop
        cluster.failover_in_progress = True
        try:
            # One poll slice between confirmation and action: the cheapest
            # possible chance for an in-flight liveness signal to land.
            yield cfg.poll_ms
            incumbent = cluster.writer
            if (
                record.writer_id in self._returned
                and incumbent is not None
                and incumbent.name == record.writer_id
                and incumbent.state is InstanceState.OPEN
            ):
                record.notes.append("incumbent returned before promotion")
                self._finish(record, ROLLED_BACK)
                return
            deadline = record.confirmed_at + cfg.max_failover_ms
            candidate = self._select_candidate(record.writer_id)
            if candidate is None:
                yield from self._restart_in_place(record, deadline)
                return
            record.candidate_id = candidate
            record.began_at = loop.now
            candidate_vdl = cluster.replicas[candidate].applied_vdl
            new_writer, process = cluster.promote_replica(candidate)
            while True:
                record.promotion_attempts += 1
                while not process.finished and loop.now < deadline:
                    yield cfg.poll_ms
                if (
                    process.finished
                    and process.completion.exception() is None
                    and new_writer.state is InstanceState.OPEN
                ):
                    break
                if loop.now >= deadline:
                    record.notes.append(
                        f"promotion exceeded {cfg.max_failover_ms:.0f}ms"
                    )
                    self._finish(record, STALLED)
                    return
                # Recovery failed (read quorum unreachable mid-chaos):
                # wait for faults to heal and retry on the same successor.
                new_writer.state = InstanceState.CRASHED
                yield cfg.retry_wait_ms
                process = new_writer.recover()
            record.promoted_at = loop.now
            self._check_read_view(record, new_writer, candidate_vdl)
            if self.cluster.db_health is not None:
                self.cluster.db_health.register_instance(
                    new_writer.name, WRITER
                )
            cluster.reattach_replicas()
            if cfg.replenish_replicas:
                self._replenished += 1
                cluster.add_replica(f"failover-replica-{self._replenished}")
            self._finish(record, PROMOTED)
        finally:
            cluster.failover_in_progress = False
            if self._active is record:
                self._active = None

    def _restart_in_place(self, record: FailoverRecord, deadline: float):
        """No promotable replica: the only path back is restarting the
        incumbent once its host returns (single-instance clusters, or a
        multi-failure that took every replica too)."""
        cfg = self.config
        cluster = self.cluster
        loop = cluster.loop
        writer = cluster.writer
        record.candidate_id = writer.name
        record.notes.append("no promotable replica; restarting in place")
        while not cluster.network.is_up(writer.name):
            if loop.now >= deadline:
                self._finish(record, STALLED)
                return
            yield cfg.poll_ms
        record.began_at = loop.now
        if writer.state is InstanceState.OPEN:
            # The host returned with the instance process still running; a
            # restart discards its dead-generation in-memory state (and
            # resolves any in-flight commits as uncertain).
            writer.crash()
        process = writer.recover()
        while True:
            record.promotion_attempts += 1
            while not process.finished and loop.now < deadline:
                yield cfg.poll_ms
            if (
                process.finished
                and process.completion.exception() is None
                and writer.state is InstanceState.OPEN
            ):
                break
            if loop.now >= deadline:
                self._finish(record, STALLED)
                return
            writer.state = InstanceState.CRASHED
            yield cfg.retry_wait_ms
            process = writer.recover()
        record.promoted_at = loop.now
        if cluster.replicas:
            cluster.reattach_replicas()
        self._finish(record, RESTARTED)

    def _check_read_view(
        self, record: FailoverRecord, new_writer, candidate_vdl: int
    ) -> None:
        """Audited invariant: the promoted replica's established read
        views never regress -- the VDL it opens with as writer must cover
        every VDL it served reads at as a replica."""
        auditor = new_writer.driver.audit_probe
        if new_writer.vdl < candidate_vdl:
            record.notes.append(
                f"read views regressed: opened at VDL {new_writer.vdl} "
                f"below replica applied VDL {candidate_vdl}"
            )
            if auditor is not None:
                auditor.flag(
                    "failover-read-view-regression",
                    new_writer.name,
                    f"promoted writer opened at VDL {new_writer.vdl}, "
                    f"below the VDL {candidate_vdl} it had applied (and "
                    f"served reads at) as a replica",
                )

    def _finish(self, record: FailoverRecord, outcome: str) -> None:
        record.outcome = outcome
        record.finished_at = self.cluster.loop.now
