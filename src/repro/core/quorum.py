"""Quorums, quorum sets, and overlap verification.

Section 2.1 states the two classical rules a quorum system over ``V`` copies
must obey: the read set must overlap the write set (``Vr + Vw > V``) and
write sets must overlap each other (``Vw > V/2``).

Section 4 generalises plain ``m``-of-``n`` quorums to **quorum sets**:
boolean combinations (AND/OR) of quorums over possibly different member
sets.  Membership changes use them ("4/6 of ABCDEF AND 4/6 of ABCDEG"), and
so does the cost-reduction design of section 4.2 ("write quorum is 4/6 of any
segment OR 3/3 of full segments").

Because quorum sets are arbitrary monotone boolean formulas, this module
verifies overlap properties *exhaustively*: a write expression W and read
expression R overlap iff there is **no** subset S of the members with
``W.satisfied(S)`` and ``R.satisfied(members - S)``.  Member universes in
Aurora are small (six segments, up to a dozen during multi-failure
transitions), so the 2^n check is cheap and doubles as a machine-checked
proof for every configuration this library ever constructs -- the paper:
"Using Boolean logic, we can prove that each transition is correct, safe,
and reversible".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Sequence

from repro.errors import QuorumError


@dataclass(frozen=True)
class Quorum:
    """A plain ``threshold``-of-``members`` quorum."""

    members: frozenset[str]
    threshold: int

    def __post_init__(self) -> None:
        if not self.members:
            raise QuorumError("quorum must have at least one member")
        if not 1 <= self.threshold <= len(self.members):
            raise QuorumError(
                f"threshold {self.threshold} out of range for "
                f"{len(self.members)} members"
            )

    def satisfied(self, acked: AbstractSet[str]) -> bool:
        return len(self.members & acked) >= self.threshold

    def __repr__(self) -> str:
        names = ",".join(sorted(self.members))
        return f"{self.threshold}/{len(self.members)}({names})"


class QuorumExpr:
    """A monotone boolean expression over member acknowledgements."""

    def satisfied(self, acked: AbstractSet[str]) -> bool:
        raise NotImplementedError

    def members(self) -> frozenset[str]:
        raise NotImplementedError

    def __and__(self, other: "QuorumExpr") -> "QuorumExpr":
        return QuorumAnd((self, other))

    def __or__(self, other: "QuorumExpr") -> "QuorumExpr":
        return QuorumOr((self, other))


class QuorumLeaf(QuorumExpr):
    """Wraps a plain :class:`Quorum` as an expression leaf."""

    def __init__(self, quorum: Quorum) -> None:
        self.quorum = quorum

    @staticmethod
    def of(members: Iterable[str], threshold: int) -> "QuorumLeaf":
        return QuorumLeaf(Quorum(frozenset(members), threshold))

    def satisfied(self, acked: AbstractSet[str]) -> bool:
        return self.quorum.satisfied(acked)

    def members(self) -> frozenset[str]:
        return self.quorum.members

    def __repr__(self) -> str:
        return repr(self.quorum)


class QuorumAnd(QuorumExpr):
    """Satisfied when every child is satisfied."""

    def __init__(self, children: Sequence[QuorumExpr]) -> None:
        if not children:
            raise QuorumError("AND requires at least one child")
        self.children = tuple(children)

    def satisfied(self, acked: AbstractSet[str]) -> bool:
        return all(child.satisfied(acked) for child in self.children)

    def members(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for child in self.children:
            result |= child.members()
        return result

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(c) for c in self.children) + ")"


class QuorumOr(QuorumExpr):
    """Satisfied when any child is satisfied."""

    def __init__(self, children: Sequence[QuorumExpr]) -> None:
        if not children:
            raise QuorumError("OR requires at least one child")
        self.children = tuple(children)

    def satisfied(self, acked: AbstractSet[str]) -> bool:
        return any(child.satisfied(acked) for child in self.children)

    def members(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for child in self.children:
            result |= child.members()
        return result

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(c) for c in self.children) + ")"


#: Member universes beyond this size make the exhaustive 2^n overlap proof
#: expensive; Aurora transitions never exceed ~8 distinct members.
_EXHAUSTIVE_PROOF_LIMIT = 20


@dataclass(frozen=True)
class QuorumConfig:
    """A validated (write expression, read expression) pair.

    Construction runs the exhaustive overlap proof unless ``verify=False``
    (used only by tests that deliberately build broken configs).
    """

    write_expr: QuorumExpr
    read_expr: QuorumExpr

    def __post_init__(self) -> None:
        object.__setattr__(self, "_members", self.write_expr.members()
                           | self.read_expr.members())
        object.__setattr__(self, "_proven", False)

    @property
    def is_proven(self) -> bool:
        """True once :meth:`prove` has succeeded for this config.

        The runtime auditor re-proves every config it sees installed; the
        cache makes that re-check a flag test instead of a 2^n sweep.
        """
        return self._proven  # type: ignore[attr-defined]

    @property
    def members(self) -> frozenset[str]:
        return self._members  # type: ignore[attr-defined]

    def write_satisfied(self, acked: AbstractSet[str]) -> bool:
        return self.write_expr.satisfied(acked)

    def read_satisfied(self, acked: AbstractSet[str]) -> bool:
        return self.read_expr.satisfied(acked)

    # ------------------------------------------------------------------
    # Machine-checked overlap proofs
    # ------------------------------------------------------------------
    def prove_read_write_overlap(self) -> None:
        """Raise :class:`QuorumError` unless every write quorum intersects
        every read quorum.

        Equivalent condition checked: no subset S satisfies the write
        expression while its complement satisfies the read expression.
        """
        for subset, complement in self._subset_complements():
            if self.write_expr.satisfied(subset) and self.read_expr.satisfied(
                complement
            ):
                raise QuorumError(
                    f"read/write overlap violated: write quorum {sorted(subset)} "
                    f"is disjoint from read quorum {sorted(complement)}"
                )

    def prove_write_write_overlap(self) -> None:
        """Raise unless any two write quorums intersect (Vw > V/2 analogue)."""
        for subset, complement in self._subset_complements():
            if self.write_expr.satisfied(subset) and self.write_expr.satisfied(
                complement
            ):
                raise QuorumError(
                    f"write/write overlap violated: {sorted(subset)} and "
                    f"{sorted(complement)} are disjoint write quorums"
                )

    def prove(self) -> "QuorumConfig":
        """Run both proofs (cached once successful); return self."""
        if self._proven:  # type: ignore[attr-defined]
            return self
        members = sorted(self.members)
        if len(members) > _EXHAUSTIVE_PROOF_LIMIT:
            raise QuorumError(
                f"refusing exhaustive proof over {len(members)} members"
            )
        self.prove_read_write_overlap()
        self.prove_write_write_overlap()
        object.__setattr__(self, "_proven", True)
        return self

    def _subset_complements(self):
        members = sorted(self.members)
        universe = set(members)
        for size in range(len(members) + 1):
            for combo in itertools.combinations(members, size):
                subset = set(combo)
                yield subset, universe - subset

    def minimal_write_quorums(self) -> list[frozenset[str]]:
        """All minimal member sets satisfying the write expression."""
        return self._minimal_sets(self.write_expr)

    def minimal_read_quorums(self) -> list[frozenset[str]]:
        """All minimal member sets satisfying the read expression."""
        return self._minimal_sets(self.read_expr)

    def _minimal_sets(self, expr: QuorumExpr) -> list[frozenset[str]]:
        members = sorted(self.members)
        satisfying: list[frozenset[str]] = []
        for size in range(len(members) + 1):
            for combo in itertools.combinations(members, size):
                candidate = frozenset(combo)
                if expr.satisfied(candidate) and not any(
                    existing <= candidate for existing in satisfying
                ):
                    satisfying.append(candidate)
        return satisfying

    def __repr__(self) -> str:
        return (
            f"QuorumConfig(write={self.write_expr!r}, read={self.read_expr!r})"
        )


# ----------------------------------------------------------------------
# Named configurations from the paper
# ----------------------------------------------------------------------
def majority_config(members: Iterable[str]) -> QuorumConfig:
    """Symmetric majority quorum (e.g. the 2/3 scheme of Figure 1, left)."""
    member_set = frozenset(members)
    majority = len(member_set) // 2 + 1
    leaf = QuorumLeaf.of(member_set, majority)
    return QuorumConfig(write_expr=leaf, read_expr=leaf).prove()


def v6_config(members: Iterable[str]) -> QuorumConfig:
    """Aurora's V=6, Vw=4, Vr=3 quorum over six explicit members."""
    member_set = frozenset(members)
    if len(member_set) != 6:
        raise QuorumError(f"v6 config requires 6 members, got {len(member_set)}")
    return QuorumConfig(
        write_expr=QuorumLeaf.of(member_set, 4),
        read_expr=QuorumLeaf.of(member_set, 3),
    ).prove()


def aurora_v6_config(prefix: str = "seg") -> QuorumConfig:
    """Aurora's 4/6 write / 3/6 read quorum with generated member names."""
    return v6_config(f"{prefix}{i}" for i in range(6))


def full_tail_config(
    full_members: Iterable[str], tail_members: Iterable[str]
) -> QuorumConfig:
    """Section 4.2's cost-reducing quorum set of unlike members.

    Write quorum: 4/6 of any segment OR 3/3 of full segments.
    Read quorum: 3/6 of any segment AND 1/3 of full segments.
    """
    fulls = frozenset(full_members)
    tails = frozenset(tail_members)
    if len(fulls) != 3 or len(tails) != 3 or fulls & tails:
        raise QuorumError(
            "full/tail config requires 3 full + 3 disjoint tail members"
        )
    everyone = fulls | tails
    write_expr = QuorumOr(
        (QuorumLeaf.of(everyone, 4), QuorumLeaf.of(fulls, 3))
    )
    read_expr = QuorumAnd(
        (QuorumLeaf.of(everyone, 3), QuorumLeaf.of(fulls, 1))
    )
    return QuorumConfig(write_expr=write_expr, read_expr=read_expr).prove()


def group_transition_config(
    group_memberships: Sequence[Iterable[str]],
    write_threshold_of=None,
    read_threshold_of=None,
) -> QuorumConfig:
    """Transition quorum set over groups of *any* size.

    Generalises :func:`transition_config` beyond six-member groups: per
    group of size ``n`` the write quorum defaults to ``n//2 + 1`` members
    (majority, so write/write overlap holds) and the read quorum to
    ``n - n//2`` members (so read/write overlap holds).  For six-member
    groups these defaults are exactly Aurora's 4/6 and 3/6.  Callers may
    override either threshold rule; the result is still exhaustively
    proved, whatever the groups.
    """
    groups = [frozenset(g) for g in group_memberships]
    if not groups:
        raise QuorumError("transition requires at least one member group")
    for group in groups:
        if not group:
            raise QuorumError("transition groups must be non-empty")
    if write_threshold_of is None:
        write_threshold_of = lambda n: n // 2 + 1  # noqa: E731
    if read_threshold_of is None:
        read_threshold_of = lambda n: n - n // 2  # noqa: E731
    write_children = [
        QuorumLeaf.of(g, write_threshold_of(len(g))) for g in groups
    ]
    read_children = [
        QuorumLeaf.of(g, read_threshold_of(len(g))) for g in groups
    ]
    write_expr: QuorumExpr = (
        write_children[0] if len(write_children) == 1
        else QuorumAnd(write_children)
    )
    read_expr: QuorumExpr = (
        read_children[0] if len(read_children) == 1 else QuorumOr(read_children)
    )
    return QuorumConfig(write_expr=write_expr, read_expr=read_expr).prove()


def transition_config(group_memberships: Sequence[Iterable[str]]) -> QuorumConfig:
    """Quorum set for an in-flight membership change (section 4.1).

    Given the active member groups (e.g. ``[ABCDEF, ABCDEG]`` while F is
    suspect), the write quorum is the AND of each group's 4/6 quorum and the
    read quorum is the OR of each group's 3/6 quorum.  The returned config is
    proved overlapping, whatever the groups.
    """
    groups = [frozenset(g) for g in group_memberships]
    if not groups:
        raise QuorumError("transition requires at least one member group")
    for group in groups:
        if len(group) != 6:
            raise QuorumError(
                f"each transition group must have 6 members, got {len(group)}"
            )
    write_children = [QuorumLeaf.of(g, 4) for g in groups]
    read_children = [QuorumLeaf.of(g, 3) for g in groups]
    write_expr: QuorumExpr = (
        write_children[0] if len(write_children) == 1
        else QuorumAnd(write_children)
    )
    read_expr: QuorumExpr = (
        read_children[0] if len(read_children) == 1 else QuorumOr(read_children)
    )
    return QuorumConfig(write_expr=write_expr, read_expr=read_expr).prove()
