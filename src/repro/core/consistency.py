"""Consistency-point trackers: SCL, PGCL, VCL, VDL, and PGMRPL.

These are the "local oases of consistency" of the paper's conclusion.  Each
tracker is a pure state machine fed by acknowledgement bookkeeping; none of
them ever requires agreement among nodes:

- **SCL** (Segment Complete LSN), tracked *on each storage node*: "the
  inclusive upper bound on log records continuously linked through the
  segment chain without gaps" (section 2.3).
- **PGCL** (Protection Group Complete LSN), tracked *on the database
  instance*: "once the database instance observes SCL advance at four of six
  members of the protection group, it is able to locally advance PGCL".
  Generalised here to any :class:`~repro.core.quorum.QuorumConfig`, so the
  same tracker works for plain 4/6, full/tail, and in-flight membership
  transitions.
- **VCL** (Volume Complete LSN) and **VDL** (Volume Durable LSN), tracked on
  the instance: VCL is "the highest point at which all previous log records
  have met quorum"; VDL is "the last LSN below VCL representing an MTR
  completion" (section 3.3).
- **PGMRPL** (Protection Group Minimum Read Point LSN), the garbage
  collection floor: "the lowest LSN read point for any active request on
  that database instance" (section 3.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.lsn import NULL_LSN
from repro.core.quorum import QuorumConfig
from repro.errors import ConfigurationError


class SegmentChainTracker:
    """Advances a segment's SCL along the protection-group chain.

    Records may arrive in any order and may be missing (writes "may be lost
    for any reason").  The tracker links arrivals through their
    ``prev_pg_lsn`` pointers and advances SCL over every contiguous prefix.
    Records received above a gap are remembered and linked in as soon as
    gossip (or a retry) fills the hole.
    """

    def __init__(self, baseline: int = NULL_LSN) -> None:
        self._scl = baseline
        #: successor map: prev_pg_lsn -> lsn, for records above the SCL.
        self._pending: dict[int, int] = {}
        self._max_received = baseline
        #: Optional :class:`repro.audit.Auditor` observer (zero-cost when
        #: unattached); ``audit_owner`` labels events (the segment id).
        self.audit_probe = None
        self.audit_owner = ""

    @property
    def scl(self) -> int:
        return self._scl

    @property
    def max_received(self) -> int:
        """Highest LSN seen, whether or not it is chain-connected yet."""
        return self._max_received

    @property
    def has_gap(self) -> bool:
        """True if records exist above SCL that are not chain-connected."""
        return self._max_received > self._scl

    def offer(self, lsn: int, prev_pg_lsn: int) -> bool:
        """Register a received record; return True if the SCL advanced."""
        if lsn <= self._scl:
            return False  # duplicate of an already-complete record
        self._max_received = max(self._max_received, lsn)
        self._pending[prev_pg_lsn] = lsn
        old = self._scl
        advanced = self._advance()
        if advanced and self.audit_probe is not None:
            self.audit_probe.on_scl(self.audit_owner, old, self._scl, "chain")
        return advanced

    def _advance(self) -> bool:
        advanced = False
        while self._scl in self._pending:
            self._scl = self._pending.pop(self._scl)
            advanced = True
        return advanced

    def rebase(self, baseline: int) -> bool:
        """Jump the SCL forward to ``baseline`` (hydration from a peer).

        Used when a new segment bootstraps from a materialized block
        baseline (or a backup): everything at or below ``baseline`` is known
        complete without individual records.  Pending records above the new
        baseline re-link immediately.  Returns True if the SCL moved.
        """
        if baseline <= self._scl:
            return False
        old = self._scl
        self._scl = baseline
        self._max_received = max(self._max_received, baseline)
        self._pending = {
            prev: lsn for prev, lsn in self._pending.items() if lsn > baseline
        }
        # The baseline may fall between two chain records (e.g. a global
        # coalesce point between this PG's LSNs).  In a linear chain exactly
        # one pending record can span it; re-key that link at the baseline
        # so normal advancement picks it up.
        spanning = [prev for prev in self._pending if prev < baseline]
        if spanning:
            successor = self._pending.pop(spanning[0])
            self._pending[baseline] = successor
        self._advance()
        if self.audit_probe is not None:
            self.audit_probe.on_scl(
                self.audit_owner, old, self._scl, "rebase"
            )
        return True

    def truncate(self, to_lsn: int, last: int | None = None) -> None:
        """Annul the window ``(to_lsn, last]`` (crash-recovery truncation).

        ``last`` is the upper end of the recovery truncation range.  LSNs
        above it were allocated by a *post-recovery* writer generation (the
        allocator jumps above the range) and must survive: a TruncateRequest
        delivered late — to a segment that was unreachable during recovery —
        must not destroy records the segment has since received from the new
        generation.  ``last=None`` annuls everything above ``to_lsn``.
        """
        old = self._scl
        self._pending = {
            prev: lsn
            for prev, lsn in self._pending.items()
            if (lsn <= to_lsn and prev < to_lsn)
            or (last is not None and lsn > last)
        }
        if last is None or self._scl <= last:
            self._scl = min(self._scl, to_lsn)
        self._max_received = max([self._scl, *self._pending.values()])
        self._advance()
        if self.audit_probe is not None:
            self.audit_probe.on_scl_truncate(
                self.audit_owner, to_lsn, old, self._scl, last
            )

    def pending_count(self) -> int:
        return len(self._pending)


class PGConsistencyTracker:
    """Database-side PGCL bookkeeping for one protection group.

    Fed with the SCL value piggybacked on every write acknowledgement
    ("SCL is sent by the storage node as part of acknowledging a write"),
    it advances PGCL to the highest LSN made durable on a write quorum of
    the *current* quorum configuration.  Swapping the configuration (during
    a membership change) re-evaluates PGCL against the new member set but
    never moves it backwards.
    """

    def __init__(
        self,
        pg_index: int,
        config: QuorumConfig,
        audit_probe=None,
        audit_owner: str = "",
        tracked=None,
    ) -> None:
        self.pg_index = pg_index
        self._config = config
        #: Members whose acked SCLs are bookkept.  Defaults to the quorum
        #: config's members; backends whose durability quorum spans only a
        #: subset of the membership (e.g. Taurus's log stores) pass the
        #: full membership here so asynchronous replicas (page stores)
        #: still feed :meth:`durable_members_at` for read routing.
        tracked_members = (
            frozenset(tracked) | config.members
            if tracked is not None
            else config.members
        )
        self._member_scls: dict[str, int] = {
            m: NULL_LSN for m in tracked_members
        }
        self._pgcl = NULL_LSN
        self.audit_probe = audit_probe
        self.audit_owner = audit_owner
        if audit_probe is not None:
            audit_probe.on_quorum_config(audit_owner, pg_index, config)

    @property
    def pgcl(self) -> int:
        return self._pgcl

    @property
    def config(self) -> QuorumConfig:
        return self._config

    @property
    def member_scls(self) -> dict[str, int]:
        return dict(self._member_scls)

    def set_config(self, config: QuorumConfig, tracked=None) -> None:
        """Install a new quorum configuration (membership change).

        ``tracked`` extends the retained member set beyond the config's
        own members (see ``__init__``); by default only quorum members
        survive the swap.
        """
        self._config = config
        if self.audit_probe is not None:
            self.audit_probe.on_quorum_config(
                self.audit_owner, self.pg_index, config
            )
        tracked_members = (
            frozenset(tracked) | config.members
            if tracked is not None
            else config.members
        )
        for member in tracked_members:
            self._member_scls.setdefault(member, NULL_LSN)
        # Forget members no longer referenced by any quorum expression
        # (or, for backends with a wider tracked set, by the membership).
        self._member_scls = {
            m: scl
            for m, scl in self._member_scls.items()
            if m in tracked_members
        }
        self._recompute()

    def record_ack(self, member: str, scl: int) -> bool:
        """Record an acknowledged SCL; return True if PGCL advanced."""
        if member not in self._member_scls:
            return False  # ack from an evicted member; ignore
        if scl > self._member_scls[member]:
            self._member_scls[member] = scl
            return self._recompute()
        return False

    def _recompute(self) -> bool:
        """PGCL := max L such that {members with SCL >= L} is a write quorum."""
        best = self._pgcl
        for candidate in set(self._member_scls.values()):
            if candidate <= best:
                continue
            durable_at = {
                m for m, scl in self._member_scls.items() if scl >= candidate
            }
            if self._config.write_satisfied(durable_at):
                best = candidate
        if best > self._pgcl:
            old = self._pgcl
            self._pgcl = best
            if self.audit_probe is not None:
                self.audit_probe.on_pgcl(
                    self.audit_owner, self.pg_index, old, best
                )
            return True
        return False

    def durable_members_at(self, lsn: int) -> frozenset[str]:
        """Members known (via acks) to hold every record up to ``lsn``.

        This is the bookkeeping that lets Aurora avoid quorum reads
        (section 3.1): the instance "knows which segments have the last
        durable version of a data block and can request it directly".
        """
        return frozenset(
            m for m, scl in self._member_scls.items() if scl >= lsn
        )


@dataclass(frozen=True)
class _VolumeEntry:
    lsn: int
    pg_index: int
    mtr_end: bool


class VolumeConsistencyTracker:
    """Database-side VCL/VDL bookkeeping across all protection groups.

    The writer registers every allocated record in LSN order; as PGCLs
    advance, the tracker walks the volume chain forward.  VCL stops at the
    first record whose PG has not yet made it durable; VDL trails VCL at the
    last MTR completion point.
    """

    def __init__(self) -> None:
        self._chain: deque[_VolumeEntry] = deque()
        self._pgcls: dict[int, int] = {}
        self._vcl = NULL_LSN
        self._vdl = NULL_LSN
        self._last_registered = NULL_LSN
        self.audit_probe = None
        self.audit_owner = ""

    @property
    def vcl(self) -> int:
        return self._vcl

    @property
    def vdl(self) -> int:
        return self._vdl

    def register(self, lsn: int, pg_index: int, mtr_end: bool) -> None:
        """Declare an allocated record (must be called in LSN order)."""
        if lsn <= self._last_registered:
            raise ConfigurationError(
                f"records must be registered in LSN order: {lsn} after "
                f"{self._last_registered}"
            )
        self._last_registered = lsn
        self._chain.append(_VolumeEntry(lsn, pg_index, mtr_end))

    def on_pgcl(self, pg_index: int, pgcl: int) -> tuple[bool, bool]:
        """Feed a PGCL advance; returns (vcl_advanced, vdl_advanced)."""
        if pgcl <= self._pgcls.get(pg_index, NULL_LSN):
            return (False, False)
        self._pgcls[pg_index] = pgcl
        old_vcl, old_vdl = self._vcl, self._vdl
        advanced = self._advance()
        if advanced[0] and self.audit_probe is not None:
            self.audit_probe.on_volume_points(
                self.audit_owner, old_vcl, old_vdl, self._vcl, self._vdl,
                "ack",
            )
        return advanced

    def _advance(self) -> tuple[bool, bool]:
        vcl_advanced = False
        vdl_advanced = False
        while self._chain:
            head = self._chain[0]
            if self._pgcls.get(head.pg_index, NULL_LSN) < head.lsn:
                break
            self._chain.popleft()
            self._vcl = head.lsn
            vcl_advanced = True
            if head.mtr_end:
                self._vdl = head.lsn
                vdl_advanced = True
        return (vcl_advanced, vdl_advanced)

    def reset(self, vcl: int, vdl: int | None = None) -> None:
        """Install recovered consistency points after crash recovery.

        ``vdl`` defaults to ``vcl`` (a recovery that truncated the volume
        at an MTR boundary).  A ``vdl`` above ``vcl`` is never legal --
        VDL is by definition the last MTR completion *below* VCL.
        """
        if vdl is not None and vdl > vcl:
            raise ConfigurationError(
                f"recovered VDL {vdl} may not exceed recovered VCL {vcl}"
            )
        old_vcl, old_vdl = self._vcl, self._vdl
        self._chain.clear()
        self._pgcls.clear()
        self._vcl = vcl
        self._vdl = vdl if vdl is not None else vcl
        self._last_registered = max(self._last_registered, vcl)
        if self.audit_probe is not None:
            self.audit_probe.on_volume_points(
                self.audit_owner, old_vcl, old_vdl, self._vcl, self._vdl,
                "reset",
            )

    @property
    def lag(self) -> int:
        """Number of registered records not yet volume-complete."""
        return len(self._chain)


class PGFrontierHistory:
    """Translates volume-global read points into per-PG read points.

    The LSN space is global, but each segment's SCL only ever equals LSNs
    routed to *its* protection group.  A read anchored at a global durable
    point P must therefore be issued to storage at the PG-local point
    ``f(pg, P)`` = the highest LSN of that PG at or below P; the block
    version chains are keyed by those PG-local LSNs.

    The history records, for every VDL the instance has anchored a read
    view at, the per-PG frontier map as of that VDL.  Entries below the
    minimum active read point are pruned (nothing can anchor there any
    more).  Replicas maintain their own instance of this class, fed by the
    replication stream.
    """

    def __init__(self) -> None:
        self._pending: deque[tuple[int, int]] = deque()  # (lsn, pg_index)
        self._current: dict[int, int] = {}
        self._history: dict[int, dict[int, int]] = {NULL_LSN: {}}
        self._last_vdl = NULL_LSN

    def record(self, lsn: int, pg_index: int) -> None:
        """Register an allocated record (in LSN order)."""
        if self._pending and lsn <= self._pending[-1][0]:
            raise ConfigurationError(
                f"frontier records must arrive in LSN order: {lsn}"
            )
        self._pending.append((lsn, pg_index))

    def advance_vdl(self, vdl: int) -> dict[int, int]:
        """Fold records up to ``vdl`` into the frontier; snapshot it."""
        while self._pending and self._pending[0][0] <= vdl:
            lsn, pg_index = self._pending.popleft()
            self._current[pg_index] = lsn
        self._last_vdl = max(self._last_vdl, vdl)
        snapshot = dict(self._current)
        self._history[vdl] = snapshot
        return snapshot

    def frontier_at(self, read_point: int) -> dict[int, int]:
        """Per-PG frontier for a read anchored at ``read_point``.

        ``read_point`` must be a VDL value the history has seen (read views
        only ever anchor at durable points), or NULL_LSN.
        """
        try:
            return self._history[read_point]
        except KeyError:
            raise ConfigurationError(
                f"no frontier recorded for read point {read_point}; "
                "read views must anchor at observed VDL values"
            ) from None

    def knows(self, read_point: int) -> bool:
        """True when a frontier snapshot exists for ``read_point``.

        A read view can outlive a :meth:`reset` (replica re-attach after a
        writer failover); its anchor then belongs to the previous stream
        generation and has no snapshot here.
        """
        return read_point in self._history

    def pg_read_point(self, pg_index: int, read_point: int) -> int:
        """``f(pg, read_point)``: the PG-local equivalent of a global point."""
        return self.frontier_at(read_point).get(pg_index, NULL_LSN)

    def prune_below(self, floor: int) -> int:
        """Drop snapshots below ``floor`` (the min active read point)."""
        doomed = [
            point
            for point in self._history
            if point < floor and point != self._last_vdl
        ]
        for point in doomed:
            del self._history[point]
        return len(doomed)

    def reset(self, vdl: int, frontiers: dict[int, int]) -> None:
        """Install recovered state: the frontier map as of the new VDL."""
        self._pending.clear()
        self._current = dict(frontiers)
        self._history = {vdl: dict(frontiers)}
        self._last_vdl = vdl

    @property
    def snapshot_count(self) -> int:
        return len(self._history)


class MinReadPointTracker:
    """PGMRPL bookkeeping: the lowest active read point on one instance.

    Each open read view registers its read-point LSN; the minimum over all
    active views (falling back to ``floor`` when idle) is the PGMRPL this
    instance advertises to storage nodes, which "may only advance [their]
    garbage collection point once PGMRPL has advanced for all instances that
    have opened the volume".
    """

    def __init__(self) -> None:
        self._active: dict[int, int] = {}  # read-point lsn -> refcount
        self._floor = NULL_LSN

    def register(self, read_point: int) -> None:
        if read_point < self._floor:
            raise ConfigurationError(
                f"read point {read_point} below released floor {self._floor}"
            )
        self._active[read_point] = self._active.get(read_point, 0) + 1

    def release(self, read_point: int) -> None:
        count = self._active.get(read_point)
        if count is None:
            raise ConfigurationError(
                f"release of unregistered read point {read_point}"
            )
        if count == 1:
            del self._active[read_point]
        else:
            self._active[read_point] = count - 1

    def advance_floor(self, lsn: int) -> None:
        """Move the idle fallback forward (typically to the current VDL)."""
        self._floor = max(self._floor, lsn)

    def clear_active(self) -> None:
        """Crash: every open view died with the instance; the floor (a
        durable fact) survives."""
        self._active.clear()

    def current(self) -> int:
        """The PGMRPL this instance should advertise.

        The minimum active read point if any view is open, else the idle
        floor.  Monotonic because registration below the floor is rejected
        and the floor itself only advances.
        """
        if self._active:
            return min(self._active)
        return self._floor

    @property
    def active_count(self) -> int:
        return sum(self._active.values())
