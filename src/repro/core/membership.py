"""Quorum membership changes via quorum sets and epochs (section 4).

A protection group's membership is modelled as six ordered *slots*.  A
healthy group has one segment per slot.  When a segment (say F) becomes
suspect, Aurora does **not** wait to find out whether F is dead; it adds a
replacement candidate (G) to F's slot.  While a slot has two alternatives,
the active member groups are the cartesian expansion over slots -- e.g.

- F suspect, G hydrating:      groups = {ABCDEF, ABCDEG}
- additionally E suspect, H:   groups = {ABCDEF, ABCDEG, ABCDFH, ABCDGH}

and the quorum set is ``AND`` of each group's 4/6 write quorum / ``OR`` of
each group's 3/6 read quorum (see
:func:`repro.core.quorum.transition_config`).  Every transition:

- increments the **membership epoch** (itself written to a write quorum),
- is **reversible** -- if F comes back, collapse the slot to F; if G
  finishes hydrating, collapse to G; either endpoint "met our write quorum
  and is an available next step",
- blocks neither reads nor writes -- "simply writing to the four members
  ABCD meets quorum".

:class:`MembershipState` is immutable; transitions return new states, which
makes reversibility and epoch monotonicity easy to property-test.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.quorum import (
    QuorumConfig,
    group_transition_config,
    transition_config,
)
from repro.errors import MembershipError

#: Aurora protection groups have six segments: two in each of three AZs.
#: Alternative backends (e.g. the Taurus log/page split) may use other
#: slot counts; :meth:`MembershipState.initial` accepts ``slot_count``.
SLOT_COUNT = 6


@dataclass(frozen=True)
class ReplacementPlan:
    """A pending slot replacement: ``incumbent`` suspect, ``candidate`` new."""

    slot: int
    incumbent: str
    candidate: str


@dataclass(frozen=True)
class MembershipState:
    """Immutable membership of one protection group.

    ``slots`` holds, per slot, a tuple of alternatives: ``(incumbent,)``
    when healthy, ``(incumbent, candidate)`` while a replacement is in
    flight.
    """

    epoch: int
    slots: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise MembershipError("membership needs at least one slot")
        seen: set[str] = set()
        for alternatives in self.slots:
            if not 1 <= len(alternatives) <= 2:
                raise MembershipError(
                    f"each slot needs 1 or 2 alternatives, got {alternatives}"
                )
            for member in alternatives:
                if member in seen:
                    raise MembershipError(f"duplicate member {member!r}")
                seen.add(member)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def initial(
        members: list[str], epoch: int = 1, slot_count: int = SLOT_COUNT
    ) -> "MembershipState":
        if len(members) != slot_count:
            raise MembershipError(
                f"initial membership needs {slot_count} members"
            )
        return MembershipState(
            epoch=epoch, slots=tuple((m,) for m in members)
        )

    @property
    def is_stable(self) -> bool:
        """True when no replacement is in flight."""
        return all(len(alternatives) == 1 for alternatives in self.slots)

    @property
    def members(self) -> frozenset[str]:
        """Every member referenced by any alternative."""
        return frozenset(
            member for alternatives in self.slots for member in alternatives
        )

    @property
    def pending_replacements(self) -> tuple[ReplacementPlan, ...]:
        return tuple(
            ReplacementPlan(slot=i, incumbent=alts[0], candidate=alts[1])
            for i, alts in enumerate(self.slots)
            if len(alts) == 2
        )

    def slot_of(self, segment_id: str) -> int:
        """The slot holding ``segment_id`` (incumbent or candidate)."""
        for slot, alternatives in enumerate(self.slots):
            if segment_id in alternatives:
                return slot
        raise MembershipError(f"{segment_id!r} is not a member")

    def member_groups(self) -> list[frozenset[str]]:
        """The cartesian expansion of slot alternatives (Figure 5's groups)."""
        return [
            frozenset(choice)
            for choice in itertools.product(*self.slots)
        ]

    def quorum_config(self) -> QuorumConfig:
        """The proved quorum set for the current (possibly dual) membership.

        Six-slot groups use Aurora's 4/6 write / 3/6 read thresholds;
        other slot counts fall back to the generalised majority-overlap
        transition config (backends install their own policy on top via
        :meth:`StorageBackend.membership_quorum_config`).
        """
        groups = self.member_groups()
        if len(self.slots) == SLOT_COUNT:
            return transition_config(groups)
        return group_transition_config(groups)

    # ------------------------------------------------------------------
    # Transitions (each returns a new state with epoch + 1)
    # ------------------------------------------------------------------
    def begin_replacement(self, incumbent: str, candidate: str) -> "MembershipState":
        """Add ``candidate`` alongside suspect ``incumbent`` (Figure 5, epoch 2)."""
        if candidate in self.members:
            raise MembershipError(f"{candidate!r} is already a member")
        new_slots = []
        found = False
        for alternatives in self.slots:
            if alternatives[0] == incumbent and len(alternatives) == 1:
                new_slots.append((incumbent, candidate))
                found = True
            elif incumbent in alternatives:
                raise MembershipError(
                    f"slot holding {incumbent!r} already has a pending "
                    f"replacement: {alternatives}"
                )
            else:
                new_slots.append(alternatives)
        if not found:
            raise MembershipError(f"{incumbent!r} is not an incumbent member")
        if sum(1 for s in new_slots if len(s) == 2) > 2:
            raise MembershipError(
                "at most two concurrent replacements are supported "
                "(the paper's double-fault scenario)"
            )
        return MembershipState(epoch=self.epoch + 1, slots=tuple(new_slots))

    def commit_replacement(self, slot: int) -> "MembershipState":
        """Finish a replacement: the candidate becomes the member
        (Figure 5, epoch 3)."""
        return self._collapse(slot, keep_index=1)

    def rollback_replacement(self, slot: int) -> "MembershipState":
        """Revert a replacement: the incumbent came back; drop the candidate."""
        return self._collapse(slot, keep_index=0)

    def _collapse(self, slot: int, keep_index: int) -> "MembershipState":
        if not 0 <= slot < len(self.slots):
            raise MembershipError(f"slot {slot} out of range")
        alternatives = self.slots[slot]
        if len(alternatives) != 2:
            raise MembershipError(f"slot {slot} has no pending replacement")
        new_slots = list(self.slots)
        new_slots[slot] = (alternatives[keep_index],)
        return MembershipState(epoch=self.epoch + 1, slots=tuple(new_slots))

    def __repr__(self) -> str:
        rendered = []
        for alternatives in self.slots:
            rendered.append("|".join(alternatives))
        return f"<Membership epoch={self.epoch} [{' '.join(rendered)}]>"


def verify_transition_safety(
    before: MembershipState,
    after: MembershipState,
    audit_probe=None,
    config_of=None,
) -> None:
    """Prove a transition is safe in the paper's sense.

    Two properties are checked exhaustively over the combined member
    universe:

    1. the membership epoch strictly increases, and
    2. every write quorum of the new configuration intersects every write
       quorum of the old one (no two epochs can independently make
       progress -- the analogue of ``Vw > V/2`` carried *across* the
       transition; this is what makes the epoch increment itself, which
       is a quorum write, serialize against all prior configurations).

    Cross-configuration *read* intersection is deliberately not required:
    the paper's quorum sets do not provide it in either direction (a
    minimal new read quorum containing a still-hydrating candidate can
    miss old writes; a minimal new write quorum can miss an old read
    quorum pinned on the suspect member).  Those cases are fenced
    operationally instead: stale membership epochs are rejected outright,
    recovery scans every reachable segment rather than a minimal quorum,
    candidates hydrate via gossip before the collapsing transition, and
    "we do not discard any durable state until back to a fully repaired
    quorum".  Within each configuration, read/write overlap is proved by
    :meth:`~repro.core.quorum.QuorumConfig.prove` at construction.

    When an ``audit_probe`` (:class:`repro.audit.Auditor`) is given, the
    transition is reported *before* the checks run, so the auditor flags
    an unsafe transition independently of the exceptions raised here.

    ``config_of`` maps a membership state to the quorum config actually
    installed for it; it defaults to the state's own
    :meth:`MembershipState.quorum_config` and lets storage backends with
    asymmetric quorum policies (e.g. Taurus's log-store-only quorum)
    prove *their* configs across the transition.
    """
    if audit_probe is not None:
        audit_probe.on_membership_transition(before, after)
    if after.epoch <= before.epoch:
        raise MembershipError(
            f"epoch must increase: {before.epoch} -> {after.epoch}"
        )
    if config_of is None:
        config_of = lambda state: state.quorum_config()  # noqa: E731
    old = config_of(before)
    new = config_of(after)
    members = sorted(old.members | new.members)
    universe = set(members)
    for size in range(len(members) + 1):
        for combo in itertools.combinations(members, size):
            subset = set(combo)
            complement = universe - subset
            if new.write_expr.satisfied(subset) and old.write_expr.satisfied(
                complement
            ):
                raise MembershipError(
                    f"unsafe transition: new write quorum {sorted(subset)} "
                    f"is disjoint from old write quorum {sorted(complement)}"
                )
