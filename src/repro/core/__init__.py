"""Core protocol machinery -- the paper's primary contribution.

Everything in this package is a *pure, deterministic* state machine with no
knowledge of the simulator: LSN allocation, redo records and their three
back-chains, quorums and quorum sets, epochs, the consistency-point trackers
(SCL / PGCL / VCL / VDL / PGMRPL), commit-queue processing, crash-recovery
computation, membership-change transitions, and read routing.

The separation is deliberate (DESIGN.md, decision D1): because these classes
are pure, the invariants in DESIGN.md section 6 can be property-tested
directly with hypothesis, and the simulated cluster in :mod:`repro.db` /
:mod:`repro.storage` simply wires them to message delivery.
"""

from repro.core.commit import CommitQueue
from repro.core.consistency import (
    PGConsistencyTracker,
    SegmentChainTracker,
    VolumeConsistencyTracker,
)
from repro.core.epochs import EpochRegistry, EpochStamp
from repro.core.lsn import NULL_LSN, LSNAllocator, TruncationRange
from repro.core.membership import MembershipState, ReplacementPlan
from repro.core.quorum import (
    Quorum,
    QuorumAnd,
    QuorumConfig,
    QuorumExpr,
    QuorumLeaf,
    QuorumOr,
    aurora_v6_config,
    full_tail_config,
    majority_config,
    transition_config,
)
from repro.core.read_routing import LatencyTracker, ReadRouter
from repro.core.records import (
    BlockPut,
    BlockReplace,
    CommitPayload,
    ControlPayload,
    LogRecord,
    RecordKind,
    RedoPayload,
)
from repro.core.recovery import RecoveryResult, recover_volume_state

__all__ = [
    "BlockPut",
    "BlockReplace",
    "CommitPayload",
    "CommitQueue",
    "ControlPayload",
    "EpochRegistry",
    "EpochStamp",
    "LatencyTracker",
    "LogRecord",
    "LSNAllocator",
    "MembershipState",
    "NULL_LSN",
    "PGConsistencyTracker",
    "Quorum",
    "QuorumAnd",
    "QuorumConfig",
    "QuorumExpr",
    "QuorumLeaf",
    "QuorumOr",
    "ReadRouter",
    "RecordKind",
    "RecoveryResult",
    "RedoPayload",
    "ReplacementPlan",
    "SegmentChainTracker",
    "TruncationRange",
    "VolumeConsistencyTracker",
    "aurora_v6_config",
    "full_tail_config",
    "majority_config",
    "recover_volume_state",
    "transition_config",
]
