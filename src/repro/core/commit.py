"""Asynchronous commit processing.

Section 2.3: "A commit is acknowledged by the database to its caller once it
is able to affirm that all data modified by the transaction has been durably
recorded.  A simple way to do so is to ensure that the commit redo record for
the transaction, or System Commit Number (SCN), is below VCL.  No flush,
consensus, or grouping is required."

The worker thread that receives a COMMIT "writes the commit record, puts the
transaction on a commit queue, and returns to a common task queue"; a
dedicated commit thread later "scans the commit queue for SCNs below the new
VCL and sends acknowledgements".  :class:`CommitQueue` is that queue: a heap
ordered by SCN, drained each time the VCL advances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError


@dataclass(order=True)
class _PendingCommit:
    scn: int
    seq: int
    enqueued_at: float = field(compare=False)
    ack: Callable[[], None] = field(compare=False)
    tag: Any = field(compare=False, default=None)


@dataclass
class CommitStats:
    """Aggregate commit-pipeline statistics."""

    enqueued: int = 0
    acknowledged: int = 0
    max_queue_depth: int = 0
    total_wait: float = 0.0

    @property
    def mean_wait(self) -> float:
        if self.acknowledged == 0:
            return 0.0
        return self.total_wait / self.acknowledged


class CommitQueue:
    """SCN-ordered queue of transactions awaiting durability.

    ``ack`` callbacks fire inside :meth:`on_vcl_advance`, in SCN order --
    the analogue of the dedicated commit thread waking up when the driver
    advances VCL.
    """

    def __init__(self) -> None:
        self._heap: list[_PendingCommit] = []
        self._seq = 0
        self._last_vcl = 0
        self.stats = CommitStats()
        #: Optional :class:`repro.audit.Auditor` observer (zero-cost when
        #: unattached); ``audit_owner`` labels events (the instance id).
        self.audit_probe = None
        self.audit_owner = ""

    def enqueue(
        self,
        scn: int,
        ack: Callable[[], None],
        now: float = 0.0,
        tag: Any = None,
    ) -> None:
        """Queue a transaction whose commit record has SCN ``scn``.

        If the SCN is already durable (``scn <=`` the last seen VCL) the ack
        fires immediately -- a commit record that lands below an
        already-advanced VCL must not wait for the next advance.
        """
        if scn <= 0:
            raise ConfigurationError(f"SCN must be positive, got {scn}")
        self.stats.enqueued += 1
        if scn <= self._last_vcl:
            self.stats.acknowledged += 1
            if self.audit_probe is not None:
                self.audit_probe.on_commit_ack(
                    self.audit_owner, scn, self._last_vcl
                )
            ack()
            return
        entry = _PendingCommit(
            scn=scn, seq=self._seq, enqueued_at=now, ack=ack, tag=tag
        )
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._heap)
        )

    def on_vcl_advance(self, vcl: int, now: float = 0.0) -> int:
        """Acknowledge every queued commit with SCN <= ``vcl``.

        Returns the number of transactions acknowledged.
        """
        self._last_vcl = max(self._last_vcl, vcl)
        released = 0
        while self._heap and self._heap[0].scn <= self._last_vcl:
            entry = heapq.heappop(self._heap)
            released += 1
            self.stats.acknowledged += 1
            self.stats.total_wait += max(0.0, now - entry.enqueued_at)
            if self.audit_probe is not None:
                self.audit_probe.on_commit_ack(
                    self.audit_owner, entry.scn, self._last_vcl
                )
            entry.ack()
        return released

    def drain_pending(self) -> list[Any]:
        """Remove and return the tags of all unacknowledged commits.

        Used at crash time: in-flight commits that were never acknowledged
        are simply lost (their transactions will be rolled back or annulled
        by recovery), which is safe precisely because Aurora never
        acknowledges a commit before its SCN is volume-complete.
        """
        pending = [entry.tag for entry in sorted(self._heap)]
        self._heap.clear()
        return pending

    @property
    def depth(self) -> int:
        return len(self._heap)

    @property
    def oldest_pending_scn(self) -> int | None:
        return self._heap[0].scn if self._heap else None
