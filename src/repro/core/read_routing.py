"""Read routing: avoiding quorum reads (section 3.1).

"Aurora does not do quorum reads.  Through its bookkeeping of writes and
consistency points, the database instance knows which segments have the last
durable version of a data block and can request it directly from any of
those segments."

The cost of issuing a single read instead of a read quorum is exposure to a
slow or dead segment.  The paper manages that by

- tracking response times per segment and usually choosing the
  lowest-latency one,
- "occasionally also query[ing] one of the others in parallel to ensure up
  to date read latency response times" (exploration), and
- hedging: "If a request is taking longer than expected, [Aurora] will
  issue a read to another storage node and accept whichever one returns
  first."  Detection happens "without request timeouts by inspecting the
  list of outstanding requests when performing other I/Os".

:class:`LatencyTracker` is the EWMA bookkeeping; :class:`ReadRouter`
implements selection, exploration, and the hedging decision as pure
functions so the policy can be unit-tested and ablated (quorum-read and
no-hedge variants live in the benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SegmentUnavailableError


class LatencyTracker:
    """Exponentially-weighted moving average of per-segment read latency."""

    def __init__(self, alpha: float = 0.2, initial_estimate: float = 1.0) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._initial = initial_estimate
        self._estimates: dict[str, float] = {}
        self._samples: dict[str, int] = {}

    def record(self, segment: str, latency: float) -> None:
        previous = self._estimates.get(segment)
        if previous is None:
            self._estimates[segment] = latency
        else:
            self._estimates[segment] = (
                self._alpha * latency + (1 - self._alpha) * previous
            )
        self._samples[segment] = self._samples.get(segment, 0) + 1

    def expected(self, segment: str) -> float:
        """Current latency estimate (optimistic default before any sample)."""
        return self._estimates.get(segment, self._initial)

    def sample_count(self, segment: str) -> int:
        return self._samples.get(segment, 0)

    def ranked(self, segments: list[str]) -> list[str]:
        """Segments sorted fastest-first (name-stable for ties)."""
        return sorted(segments, key=lambda s: (self.expected(s), s))


@dataclass
class ReadPlan:
    """The router's decision for one block read."""

    primary: str
    #: Extra segment queried in parallel purely to refresh latency stats.
    explore: str | None = None
    #: Segments eligible to serve a hedge if the primary runs long.
    hedge_candidates: list[str] = field(default_factory=list)


class ReadRouter:
    """Chooses which segment(s) to read a block from.

    ``explore_probability`` is the paper's "occasionally also query one of
    the others in parallel"; ``hedge_multiplier`` scales the expected
    latency into the threshold past which an outstanding read is considered
    slow and a hedge is issued.
    """

    def __init__(
        self,
        tracker: LatencyTracker,
        rng: random.Random,
        explore_probability: float = 0.02,
        hedge_multiplier: float = 3.0,
    ) -> None:
        if not 0 <= explore_probability <= 1:
            raise ConfigurationError(
                f"explore_probability must be in [0, 1], got "
                f"{explore_probability}"
            )
        if hedge_multiplier < 1:
            raise ConfigurationError(
                f"hedge_multiplier must be >= 1, got {hedge_multiplier}"
            )
        self.tracker = tracker
        self.rng = rng
        self.explore_probability = explore_probability
        self.hedge_multiplier = hedge_multiplier

    def plan(self, candidates: list[str]) -> ReadPlan:
        """Pick the primary (fastest) segment and optionally an explore peer.

        ``candidates`` must be the segments known, via consistency-point
        bookkeeping, to hold the needed durable version of the block.
        """
        if not candidates:
            raise SegmentUnavailableError(
                "no segment holds the requested durable version"
            )
        ranked = self.tracker.ranked(candidates)
        primary = ranked[0]
        others = ranked[1:]
        explore = None
        if others and self.rng.random() < self.explore_probability:
            explore = self.rng.choice(others)
        return ReadPlan(
            primary=primary,
            explore=explore,
            hedge_candidates=[s for s in others if s != explore],
        )

    def should_hedge(self, segment: str, elapsed: float) -> bool:
        """Is an outstanding read to ``segment`` overdue?

        Called whenever the instance performs other I/O, mirroring the
        paper's timeout-free inspection of the outstanding-request list.
        """
        return elapsed > self.hedge_multiplier * self.tracker.expected(segment)

    def hedge_target(self, plan: ReadPlan) -> str | None:
        """The segment a hedge read should go to (next-fastest candidate)."""
        if not plan.hedge_candidates:
            return None
        return self.tracker.ranked(plan.hedge_candidates)[0]
