"""Log Sequence Number space.

The paper's key invariant (section 2.1): "the Log Sequence Number (LSN)
space is common across the database volume, monotonically increasing, and
allocated by the database instance.  This is the key invariant that allows
Aurora to avoid distributed consensus for most operations."

:class:`LSNAllocator` is owned by the single writer instance.  Crash recovery
"snips off the ragged edge of the log by recording a truncation range that
annuls any log records beyond the newly computed VCL" (section 2.4, Figure 4);
:class:`TruncationRange` models that range, and the allocator guarantees that
post-recovery LSNs are allocated strictly above it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, RecoveryError

#: LSN value meaning "no record"; the back-chain of the first record of any
#: chain (volume, segment, or block) points here.
NULL_LSN = 0


@dataclass(frozen=True)
class TruncationRange:
    """Inclusive range of LSNs annulled by crash recovery.

    Any record whose LSN falls inside the range must be ignored and may be
    physically discarded by storage nodes, "even if in-flight asynchronous
    operations complete during the process of crash recovery".
    """

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first <= NULL_LSN or self.last < self.first:
            raise ConfigurationError(
                f"invalid truncation range [{self.first}, {self.last}]"
            )

    def contains(self, lsn: int) -> bool:
        return self.first <= lsn <= self.last

    def __repr__(self) -> str:
        return f"TruncationRange[{self.first}..{self.last}]"


class LSNAllocator:
    """Monotonic LSN allocator owned by the writer instance.

    MTRs allocate contiguous batches so that a mini-transaction occupies a
    dense LSN interval (section 3.3: "allocates a batch of contiguously
    ordered LSNs").
    """

    def __init__(self, start: int = NULL_LSN + 1) -> None:
        if start <= NULL_LSN:
            raise ConfigurationError(f"start LSN must be > {NULL_LSN}")
        self._next = start
        self._truncations: list[TruncationRange] = []

    @property
    def next_lsn(self) -> int:
        """The LSN the next allocation will return."""
        return self._next

    @property
    def highest_allocated(self) -> int:
        """Highest LSN handed out so far (NULL_LSN if none)."""
        return self._next - 1

    def allocate(self, count: int = 1) -> range:
        """Return a dense range of ``count`` fresh LSNs."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        start = self._next
        self._next += count
        return range(start, start + count)

    def allocate_one(self) -> int:
        return self.allocate(1)[0]

    def apply_truncation(self, truncation: TruncationRange) -> None:
        """Record a recovery truncation and jump the allocator above it.

        "New redo records after crash recovery are allocated LSNs above the
        truncation range."
        """
        if truncation.last < self._next - 1 and self._truncations:
            # Truncations must themselves march forward with the log.
            previous = self._truncations[-1]
            if truncation.first <= previous.last:
                raise RecoveryError(
                    f"truncation {truncation} overlaps earlier {previous}"
                )
        self._truncations.append(truncation)
        self._next = max(self._next, truncation.last + 1)

    def is_annulled(self, lsn: int) -> bool:
        """True if ``lsn`` falls inside any recorded truncation range."""
        return any(t.contains(lsn) for t in self._truncations)

    @property
    def truncations(self) -> tuple[TruncationRange, ...]:
        return tuple(self._truncations)
