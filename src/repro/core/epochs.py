"""Epochs: volume, membership, and geometry.

Epochs are the paper's substitute for leases and for consensus-based
configuration change:

- **Volume epoch** (section 2.4): incremented during crash recovery and
  recorded in a write quorum of each protection group.  "Storage nodes will
  not accept requests at stale volume epochs.  This boxes out old instances
  with previously open connections ...  Aurora, rather than waiting for a
  lease to expire, just changes the locks on the door."
- **Membership epoch** (section 4.1): incremented with each quorum
  membership change; "clients with stale membership epochs have their
  requests rejected and must update membership information".
- **Volume geometry epoch** (section 4.1): incremented with each protection
  group added to the volume (or on a change of quorum model).

Epoch checks are strictly local: a storage node compares the stamp carried
by a request against its own registry.  Stale requests raise
:class:`StaleEpochError`.  A *newer* stamp teaches the node the new epoch --
the increment was durably recorded on a write quorum, and quorum overlap
guarantees any legitimate reader of the new configuration has seen it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, StaleEpochError


@dataclass(frozen=True)
class EpochStamp:
    """The epoch triple every storage request carries."""

    volume: int = 1
    membership: int = 1
    geometry: int = 1

    def __post_init__(self) -> None:
        if min(self.volume, self.membership, self.geometry) < 1:
            raise ConfigurationError(f"epochs must be >= 1: {self}")

    def bump_volume(self) -> "EpochStamp":
        return replace(self, volume=self.volume + 1)

    def bump_membership(self) -> "EpochStamp":
        return replace(self, membership=self.membership + 1)

    def bump_geometry(self) -> "EpochStamp":
        return replace(self, geometry=self.geometry + 1)

    def merge(self, other: "EpochStamp") -> "EpochStamp":
        """Component-wise maximum: the adopt rule every party applies when
        it learns a newer stamp (components never move backwards)."""
        return EpochStamp(
            volume=max(self.volume, other.volume),
            membership=max(self.membership, other.membership),
            geometry=max(self.geometry, other.geometry),
        )

    def __repr__(self) -> str:
        return (
            f"EpochStamp(v={self.volume}, m={self.membership}, "
            f"g={self.geometry})"
        )


class EpochRegistry:
    """A storage node's durable record of the epochs it has seen.

    ``check_and_learn`` implements the validation rule applied to every
    read, write, and gossip request.
    """

    def __init__(self, initial: EpochStamp | None = None) -> None:
        self._current = initial if initial is not None else EpochStamp()
        self.rejections = 0
        #: Optional :class:`repro.audit.Auditor` observer (zero-cost when
        #: unattached); ``audit_owner`` labels events (the node name).
        self.audit_probe = None
        self.audit_owner = ""

    @property
    def current(self) -> EpochStamp:
        return self._current

    def check_and_learn(self, presented: EpochStamp) -> None:
        """Validate a request's epoch stamp.

        Raises :class:`StaleEpochError` if any component of ``presented`` is
        behind this node's view; otherwise adopts any newer components.
        """
        current = self._current
        for kind in ("volume", "membership", "geometry"):
            have = getattr(current, kind)
            got = getattr(presented, kind)
            if got < have:
                self.rejections += 1
                if self.audit_probe is not None:
                    self.audit_probe.on_stale_epoch(
                        self.audit_owner, kind, got, have, rejected=True
                    )
                raise StaleEpochError(kind, presented=got, current=have)
        self._current = current.merge(presented)
        if self._current != current and self.audit_probe is not None:
            self.audit_probe.on_epoch_change(
                self.audit_owner, current, self._current
            )

    def advance(self, target: EpochStamp) -> None:
        """Directly install newer epochs (used when applying an epoch-bump
        write that itself carried the new stamp)."""
        current = self._current
        self._current = current.merge(target)
        if self._current != current and self.audit_probe is not None:
            self.audit_probe.on_epoch_change(
                self.audit_owner, current, self._current
            )
