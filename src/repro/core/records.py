"""Redo log records and their three back-chains.

Per section 2.2 of the paper, each log record stores

- the LSN of the preceding record in the **volume** (used as a fallback to
  regenerate volume metadata, and by recovery to verify chain completeness),
- the previous LSN for the **segment** (used by storage nodes to detect holes
  and gossip them full), and
- the previous LSN for the **block** being modified (used to materialize
  individual blocks on demand).

In this reproduction, "segment chain" is tracked per protection group: all
six segments of a PG receive the same record stream, so the chain previous
pointer is identical across them (``prev_pg_lsn``).

Records carry a :class:`RedoPayload` describing a pure transformation of a
block image.  Block images are plain ``dict`` objects; payloads never mutate
them, they return new images -- storage keeps every version non-destructively
until garbage collection below PGMRPL (section 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.lsn import NULL_LSN


class RecordKind(enum.Enum):
    """Classification of redo records."""

    #: A change to a data block (B-tree node, undo page, ...).
    DATA = "data"
    #: Transaction commit marker; its LSN is the transaction's SCN.
    COMMIT = "commit"
    #: Volume-level control information (e.g. truncation, epoch bump notes).
    CONTROL = "control"


class RedoPayload:
    """Interface for the change carried by a DATA record.

    Implementations must be pure: ``apply`` consumes an immutable view of the
    prior block image and returns a fresh image.  This is what lets Aurora
    run "redo log application code ... within the storage nodes" (section
    2.2) and lets repeated application be idempotent at a given version.
    """

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class BlockPut(RedoPayload):
    """Insert or overwrite key/value entries inside a block image."""

    entries: tuple[tuple[Any, Any], ...]

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        new_image = dict(image)
        for key, value in self.entries:
            new_image[key] = value
        return new_image


@dataclass(frozen=True)
class BlockDelete(RedoPayload):
    """Remove keys from a block image (missing keys are ignored)."""

    keys: tuple[Any, ...]

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        new_image = dict(image)
        for key in self.keys:
            new_image.pop(key, None)
        return new_image


@dataclass(frozen=True)
class BlockReplace(RedoPayload):
    """Replace the whole block image.

    Structural B-tree changes (splits, merges) log full after-images of the
    touched nodes; this keeps redo application trivially idempotent.
    """

    image: tuple[tuple[str, Any], ...]

    @staticmethod
    def of(image: Mapping[str, Any]) -> "BlockReplace":
        return BlockReplace(
            image=tuple(sorted(image.items(), key=lambda kv: repr(kv[0])))
        )

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        return dict(self.image)


@dataclass(frozen=True)
class CommitPayload(RedoPayload):
    """Payload of a COMMIT record.

    Besides marking the commit, it materializes the transaction's SCN into
    a transaction-table block (``{txn_id: scn}``), so commit status is
    itself durable volume state -- a recovering instance or a replica can
    learn any transaction's outcome by reading the txn-table blocks instead
    of needing a consensus log of decisions.
    """

    txn_id: int
    scn: int

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        new_image = dict(image)
        new_image[self.txn_id] = self.scn
        return new_image


@dataclass(frozen=True)
class ControlPayload(RedoPayload):
    """Payload of a CONTROL record."""

    note: str = ""

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        return dict(image)


@dataclass(frozen=True)
class ElidedPayload(RedoPayload):
    """Wire-compression stand-in for a superseded record's payload.

    When every key a DATA record touches is overwritten by a *later record
    of the same transaction inside the same write batch*, the driver ships
    the record with its payload elided: the LSN and all three back-chain
    pointers stay intact (SCL tracking, VCL math, recovery walks, and
    gossip are untouched) but the redo content rides for free -- the
    covering record's payload embeds the superseded effect, because B-tree
    row updates log the full MVCC version chain built on the prior image.

    Restricting elision to one transaction is what makes it safe: a commit
    record between two *different* transactions' writes would make the
    earlier transaction's effect readable at intermediate read points,
    while an uncommitted intermediate version is invisible at every legal
    read point by MVCC visibility.  ``apply`` is the identity transform.
    """

    #: LSN of the later same-transaction record whose payload covers this
    #: record's write set.
    covered_by: int = 0

    def apply(self, image: Mapping[str, Any]) -> dict[str, Any]:
        return dict(image)


#: Block number used by records that touch no real block (commit / control).
NO_BLOCK = -1


@dataclass(frozen=True)
class LogRecord:
    """One redo log record.

    Attributes mirror the paper's description:

    - ``lsn``: position in the volume-wide, writer-allocated LSN space.
    - ``prev_volume_lsn``: back-pointer over the entire volume.
    - ``prev_pg_lsn``: back-pointer within this record's protection group
      (the "segment chain"); storage nodes advance SCL along it.
    - ``prev_block_lsn``: back-pointer within the target block's history.
    - ``block``: global block number (``NO_BLOCK`` for commit/control).
    - ``pg_index``: protection group the record is routed to.
    - ``mtr_id`` / ``mtr_end``: mini-transaction grouping; ``mtr_end`` marks
      an MTR completion point, i.e. a legal VDL candidate (section 3.3).
    - ``txn_id``: owning database transaction (0 for control records).
    """

    lsn: int
    prev_volume_lsn: int
    prev_pg_lsn: int
    prev_block_lsn: int
    block: int
    pg_index: int
    kind: RecordKind
    payload: RedoPayload
    txn_id: int = 0
    mtr_id: int = 0
    mtr_end: bool = True

    def __post_init__(self) -> None:
        if self.lsn <= NULL_LSN:
            raise ValueError(f"record LSN must be > {NULL_LSN}")
        for name in ("prev_volume_lsn", "prev_pg_lsn", "prev_block_lsn"):
            if getattr(self, name) >= self.lsn:
                raise ValueError(f"{name} must precede lsn {self.lsn}")

    @property
    def is_commit(self) -> bool:
        return self.kind is RecordKind.COMMIT

    @property
    def scn(self) -> int:
        """System Commit Number: the LSN of the commit record."""
        if not self.is_commit:
            raise ValueError("SCN is only defined for commit records")
        return self.lsn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LogRecord lsn={self.lsn} pg={self.pg_index} "
            f"block={self.block} {self.kind.value}"
            f"{' mtr_end' if self.mtr_end else ''}>"
        )


@dataclass(frozen=True)
class ChainDigest:
    """Compact chain metadata a segment reports during crash recovery.

    Recovery only needs ``(lsn, prev_volume_lsn, pg_index, mtr_end)`` per
    hot-log record to rebuild consistency points; shipping digests instead of
    full records keeps the recovery read cheap.
    """

    lsn: int
    prev_volume_lsn: int
    pg_index: int
    mtr_end: bool

    @staticmethod
    def of(record: LogRecord) -> "ChainDigest":
        return ChainDigest(
            lsn=record.lsn,
            prev_volume_lsn=record.prev_volume_lsn,
            pg_index=record.pg_index,
            mtr_end=record.mtr_end,
        )


def record_digest(record: LogRecord) -> int:
    """Deterministic content digest of one redo record.

    Storage nodes capture this at ingest and the scrubber re-derives it to
    detect bit-rot on stored records (Figure 2, activity 8 extended to the
    hot log).  Payloads are frozen dataclasses and hash directly; the
    ``repr`` fallback covers payloads holding unhashable values.

    The digest is cached on the record object: records are immutable, and
    corruption injection always *replaces* the record object
    (``dataclasses.replace``), so a cached digest can never mask divergent
    content.  Every verification boundary (ingest, coalesce, gossip,
    recovery) re-derives the digest through this function, making the cache
    a pure speedup.
    """
    cached = getattr(record, "_digest", None)
    if cached is not None:
        return cached
    digest = _compute_record_digest(record)
    object.__setattr__(record, "_digest", digest)
    return digest


def _compute_record_digest(record: LogRecord) -> int:
    try:
        payload_hash = hash(record.payload)
    except TypeError:
        payload_hash = hash(repr(record.payload))
    return hash(
        (
            record.lsn,
            record.prev_volume_lsn,
            record.prev_pg_lsn,
            record.prev_block_lsn,
            record.block,
            record.pg_index,
            record.kind,
            payload_hash,
            record.txn_id,
            record.mtr_id,
            record.mtr_end,
        )
    )


@dataclass
class RecordBatch:
    """A boxcar of records bound for one segment node.

    The driver fills the batch until the asynchronous network operation
    actually executes (section 2.2's jitter-free boxcar strategy).
    """

    pg_index: int
    records: list[LogRecord] = field(default_factory=list)

    def add(self, record: LogRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)
