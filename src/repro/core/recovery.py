"""Crash-recovery computation (section 2.4, Figure 4).

"The time we save in the normal forward processing of commits using local
transient state must be paid back by re-establishing consistency upon crash
recovery."  The recovering instance must:

1. reach at least a **read quorum** for each protection group,
2. locally re-compute PGCLs and VCL "by finding read quorum consistency
   points across SCLs",
3. snip off the ragged edge with a **truncation range** annulling all
   records beyond the new VCL, and
4. increment the **volume epoch** on a write quorum of each PG so that
   requests from pre-crash instances are boxed out.

This module implements steps 1-3 as pure functions over the data a recovery
scan collects: each responding segment's SCL plus chain digests for its
hot-log records.  Step 4 is performed by the instance against live storage
(see :mod:`repro.db.instance`).

Why ``max(SCL)`` over a read quorum is a safe PGCL: a record acknowledged as
durable met a write quorum; by read/write overlap, *every* read quorum
contains at least one member whose SCL covers it, so the max can never
understate the durable point.  Records between the true durable point and
the max are the "ragged edge" -- present on some members, never
acknowledged -- and recovery may legitimately either keep (if chain-complete)
or annul them, since no client was ever told they committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lsn import NULL_LSN, TruncationRange
from repro.core.quorum import QuorumConfig
from repro.core.records import ChainDigest
from repro.errors import RecoveryError


@dataclass(frozen=True)
class SegmentRecoveryResponse:
    """What one segment reports to a recovery scan.

    ``gc_horizon`` is the point below which the segment's hot-log records
    may already be garbage collected.  GC only ever runs below the
    instance-advertised PGMRPL, which never exceeds the VDL, so every LSN
    at or below any segment's horizon is *known volume-complete* -- it is
    a safe baseline for the recovery chain walk even though the records
    themselves are gone from the hot logs.
    """

    segment_id: str
    pg_index: int
    scl: int
    digests: tuple[ChainDigest, ...]
    gc_horizon: int = NULL_LSN


@dataclass
class RecoveryResult:
    """The consistency state re-established by recovery."""

    vcl: int
    vdl: int
    pg_completion_lsns: dict[int, int]
    truncation: TruncationRange | None
    #: Per-PG truncation point: the highest surviving LSN routed to that PG.
    pg_truncation_points: dict[int, int] = field(default_factory=dict)
    #: Per-PG frontier as of the recovered VDL (``f(pg, vdl)``): the
    #: PG-local read points for post-recovery reads anchored at the VDL.
    pg_vdl_frontiers: dict[int, int] = field(default_factory=dict)


def recover_pg_completion(
    pg_index: int,
    config: QuorumConfig,
    responses: list[SegmentRecoveryResponse],
) -> int:
    """Re-compute one PG's completion point from a read-quorum scan."""
    responders = {r.segment_id for r in responses}
    if not config.read_satisfied(responders):
        raise RecoveryError(
            f"PG {pg_index}: responders {sorted(responders)} do not form a "
            f"read quorum of {config!r}"
        )
    return max((r.scl for r in responses), default=NULL_LSN)


def recover_volume_state(
    pg_configs: dict[int, QuorumConfig],
    responses_by_pg: dict[int, list[SegmentRecoveryResponse]],
    highest_possible_lsn: int,
) -> RecoveryResult:
    """Re-establish VCL/VDL and compute the truncation range.

    ``highest_possible_lsn`` bounds the upper end of the truncation range;
    any LSN the crashed instance could conceivably have allocated must fall
    inside it so that late-arriving in-flight writes are annulled.  The
    recovering instance derives it from the largest LSN observed in the scan
    plus an allocation-burst margin.

    The chain walk does not start at LSN 0: garbage collection legitimately
    removes old hot-log records.  Because GC only runs below the PGMRPL
    floor (itself never above the VDL), every LSN at or below the maximum
    reported ``gc_horizon`` is known volume-complete -- the walk starts
    there and the first surviving record may back-link anywhere at or below
    it.
    """
    if set(pg_configs) != set(responses_by_pg):
        raise RecoveryError(
            "recovery scan must cover every protection group: "
            f"configs for {sorted(pg_configs)}, responses for "
            f"{sorted(responses_by_pg)}"
        )

    pg_completion: dict[int, int] = {}
    for pg_index, config in pg_configs.items():
        pg_completion[pg_index] = recover_pg_completion(
            pg_index, config, responses_by_pg[pg_index]
        )

    baseline_vcl = max(
        (
            response.gc_horizon
            for responses in responses_by_pg.values()
            for response in responses
        ),
        default=NULL_LSN,
    )

    # Union the chain digests reported by any responder, keeping only
    # records at or below their PG's recovered completion point (anything
    # above cannot be trusted to survive).
    digest_by_lsn: dict[int, ChainDigest] = {}
    for responses in responses_by_pg.values():
        for response in responses:
            for digest in response.digests:
                if digest.lsn <= pg_completion[digest.pg_index]:
                    digest_by_lsn[digest.lsn] = digest

    # Walk the volume back-chain forward from the baseline.  VCL is the
    # highest LSN reachable through an unbroken chain of recovered records.
    vcl = baseline_vcl
    vdl = baseline_vcl
    expected_prev: int | None = None  # first link may point <= baseline
    for lsn in sorted(digest_by_lsn):
        if lsn <= baseline_vcl:
            continue
        digest = digest_by_lsn[lsn]
        if expected_prev is None:
            if digest.prev_volume_lsn > baseline_vcl:
                break  # gap right above the baseline
        elif digest.prev_volume_lsn != expected_prev:
            break  # gap in the volume chain: stop here
        vcl = lsn
        if digest.mtr_end:
            vdl = lsn
        expected_prev = lsn

    truncation: TruncationRange | None = None
    if highest_possible_lsn > vcl:
        truncation = TruncationRange(first=vcl + 1, last=highest_possible_lsn)

    # Per-PG truncation point: the last surviving LSN routed to each PG, so
    # that segment chains re-anchor correctly below the annulled range.
    # Three sources, most-authoritative last: (a) any responder SCL already
    # at or below the VCL (covers PGs whose surviving records were GC'd
    # from the hot logs), (b) the baseline itself when a PG's entire
    # history sits below it, and (c) the surviving digests.
    pg_points = {pg_index: NULL_LSN for pg_index in pg_configs}
    pg_frontiers = {pg_index: NULL_LSN for pg_index in pg_configs}
    for pg_index, responses in responses_by_pg.items():
        below_vcl = [r.scl for r in responses if r.scl <= vcl]
        horizon = max((r.gc_horizon for r in responses), default=NULL_LSN)
        pg_points[pg_index] = max([NULL_LSN, horizon, *below_vcl])
        pg_frontiers[pg_index] = min(pg_points[pg_index], vdl)
    for lsn in sorted(digest_by_lsn):
        if lsn > vcl:
            break
        pg_points[digest_by_lsn[lsn].pg_index] = max(
            pg_points[digest_by_lsn[lsn].pg_index], lsn
        )
        if lsn <= vdl:
            pg_frontiers[digest_by_lsn[lsn].pg_index] = max(
                pg_frontiers[digest_by_lsn[lsn].pg_index], lsn
            )

    return RecoveryResult(
        vcl=vcl,
        vdl=vdl,
        pg_completion_lsns=pg_completion,
        truncation=truncation,
        pg_truncation_points=pg_points,
        pg_vdl_frontiers=pg_frontiers,
    )
