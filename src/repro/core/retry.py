"""One retry/backoff policy for every retrying subsystem.

Three separate call sites grew the same exponential-backoff idiom
independently: the repair planner's baseline hydration (retry the RPC
with doubling waits), the storage driver's epoch-rejected resubmission
(re-send retained batches under adopted epochs), and -- newest -- the
geo tier's WAN retransmission.  This module extracts the one policy they
share:

- a :class:`RetryPolicy` value object (base delay, cap, multiplier,
  optional jitter), and
- a stateful :class:`Backoff` cursor that walks the delay sequence and
  resets on progress.

Jitter is *opt-in* and only samples the RNG when enabled, so a
jitter-free policy never perturbs a caller's deterministic random
stream -- essential for byte-identical seeded replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff shape: ``base, base*m, base*m^2, ...`` capped.

    ``jitter`` spreads each delay uniformly over ``[d*(1-j), d*(1+j)]``
    to decorrelate concurrent retriers (the WAN retransmitter uses it;
    the deterministic repair paths leave it at 0).
    """

    base_ms: float = 20.0
    cap_ms: float = 160.0
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.cap_ms < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.cap_ms < self.base_ms:
            raise ConfigurationError(
                f"cap_ms ({self.cap_ms}) must be >= base_ms ({self.base_ms})"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    @classmethod
    def immediate(cls) -> "RetryPolicy":
        """No waiting between attempts (the driver's one-extra-request
        resubmission default, per the paper's stale-epoch rule)."""
        return cls(base_ms=0.0, cap_ms=0.0)

    def delay_for(self, attempt: int) -> float:
        """The un-jittered delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ConfigurationError("attempt must be >= 0")
        delay = self.base_ms * (self.multiplier**attempt)
        return min(delay, self.cap_ms)


class Backoff:
    """A stateful walk along a :class:`RetryPolicy`'s delay sequence.

    Call :meth:`next_delay` before each retry; call :meth:`reset` when
    the operation makes progress (an ack arrived, a quorum answered) so
    the next stall starts from the base delay again.
    """

    def __init__(
        self, policy: RetryPolicy, rng: random.Random | None = None
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.attempts = 0

    def next_delay(self) -> float:
        delay = self.policy.delay_for(self.attempts)
        self.attempts += 1
        if self.policy.jitter > 0.0:
            if self.rng is None:
                raise ConfigurationError(
                    "a jittered RetryPolicy needs an rng"
                )
            spread = self.policy.jitter
            delay *= 1.0 + spread * (2.0 * self.rng.random() - 1.0)
        return delay

    def peek(self) -> float:
        """The next un-jittered delay, without consuming an attempt."""
        return self.policy.delay_for(self.attempts)

    def reset(self) -> None:
        self.attempts = 0
