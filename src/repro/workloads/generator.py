"""Workload generator and client driver.

:class:`WorkloadGenerator` produces a deterministic stream of transactions
(lists of :class:`Operation`) from a seeded RNG: configurable read/write
mix, Zipf-skewed key popularity, and transaction-size distribution.

:class:`WorkloadRunner` executes the stream against a cluster as simulated
client processes, either **closed-loop** (N clients, each issuing its next
transaction when the previous acknowledges -- throughput emerges) or
**open-loop** (Poisson arrivals at a target rate -- latency under load
emerges, including the tail behaviour benchmark C1/C2 measure).
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.process import Process


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    kind: OpKind
    key: str
    value: str | None = None


@dataclass
class WorkloadConfig:
    """Shape of the synthetic OLTP stream."""

    key_count: int = 1_000
    write_fraction: float = 0.5
    delete_fraction: float = 0.02
    #: Zipf skew; 0 = uniform, ~1 = heavily skewed hot keys.
    zipf_theta: float = 0.8
    #: Operations per transaction: uniform in [min_ops, max_ops].
    min_ops: int = 1
    max_ops: int = 4
    value_size: int = 32

    def __post_init__(self) -> None:
        if not 0 <= self.write_fraction <= 1:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if not 0 <= self.delete_fraction <= 1:
            raise ConfigurationError("delete_fraction must be in [0, 1]")
        if self.min_ops < 1 or self.max_ops < self.min_ops:
            raise ConfigurationError("need 1 <= min_ops <= max_ops")
        if self.key_count < 1:
            raise ConfigurationError("key_count must be >= 1")


class WorkloadGenerator:
    """Deterministic transaction stream."""

    def __init__(self, config: WorkloadConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self._weights = self._zipf_weights(
            config.key_count, config.zipf_theta
        )
        # Precomputed cumulative weights: ``random.choices`` accumulates the
        # raw weights on every call (O(key_count) per pick) but bisects when
        # handed ``cum_weights`` directly -- same RNG draws, same picks.
        self._cum_weights = list(itertools.accumulate(self._weights))
        self._keys = [f"key{i:08d}" for i in range(config.key_count)]
        self._txn_counter = 0

    @staticmethod
    def _zipf_weights(n: int, theta: float) -> list[float]:
        if theta == 0:
            return [1.0] * n
        return [1.0 / (rank**theta) for rank in range(1, n + 1)]

    def _pick_key(self) -> str:
        return self.rng.choices(
            self._keys, cum_weights=self._cum_weights, k=1
        )[0]

    def _value(self) -> str:
        self._txn_counter += 1
        payload = f"v{self._txn_counter}-"
        return payload + "x" * max(0, self.config.value_size - len(payload))

    def next_transaction(self) -> list[Operation]:
        """One transaction's operation list."""
        size = self.rng.randint(self.config.min_ops, self.config.max_ops)
        operations = []
        for _ in range(size):
            roll = self.rng.random()
            if roll < self.config.delete_fraction:
                operations.append(
                    Operation(OpKind.DELETE, self._pick_key())
                )
            elif roll < self.config.delete_fraction + self.config.write_fraction:
                operations.append(
                    Operation(OpKind.WRITE, self._pick_key(), self._value())
                )
            else:
                operations.append(Operation(OpKind.READ, self._pick_key()))
        return operations

    def transactions(self, count: int) -> list[list[Operation]]:
        return [self.next_transaction() for _ in range(count)]


@dataclass
class RunnerStats:
    """What a workload run measured."""

    committed: int = 0
    aborted: int = 0
    commit_latencies: list[float] = field(default_factory=list)
    read_latencies: list[float] = field(default_factory=list)

    def percentile(self, series: list[float], q: float) -> float:
        if not series:
            return 0.0
        ordered = sorted(series)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> dict[str, float]:
        commits = self.commit_latencies
        return {
            "committed": float(self.committed),
            "aborted": float(self.aborted),
            "p50_ms": self.percentile(commits, 0.50),
            "p95_ms": self.percentile(commits, 0.95),
            "p99_ms": self.percentile(commits, 0.99),
            "mean_ms": (sum(commits) / len(commits)) if commits else 0.0,
            "peak_to_average": (
                max(commits) / (sum(commits) / len(commits))
                if commits
                else 0.0
            ),
        }


class WorkloadRunner:
    """Executes a workload against a simulated Aurora cluster."""

    def __init__(
        self,
        cluster,
        generator: WorkloadGenerator,
    ) -> None:
        self.cluster = cluster
        self.generator = generator
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    # Closed loop: N clients, each back-to-back
    # ------------------------------------------------------------------
    def run_closed_loop(
        self, clients: int, transactions_per_client: int
    ) -> RunnerStats:
        processes = [
            Process(
                self.cluster.loop,
                self._client(transactions_per_client),
            )
            for _ in range(clients)
        ]
        while not all(p.finished for p in processes):
            if not self.cluster.loop.step():
                raise ConfigurationError(
                    "simulation stalled before the workload finished"
                )
        return self.stats

    def _client(self, transaction_count: int):
        instance = self.cluster.writer
        from repro.errors import LockConflictError

        for _ in range(transaction_count):
            operations = self.generator.next_transaction()
            txn = instance.begin()
            started = self.cluster.loop.now
            try:
                for op in operations:
                    if op.kind is OpKind.READ:
                        read_start = self.cluster.loop.now
                        yield from instance.get(op.key, txn)
                        self.stats.read_latencies.append(
                            self.cluster.loop.now - read_start
                        )
                    elif op.kind is OpKind.WRITE:
                        yield from instance.put(txn, op.key, op.value)
                    else:
                        yield from instance.delete(txn, op.key)
            except LockConflictError:
                yield from instance.rollback(txn)
                self.stats.aborted += 1
                continue
            yield instance.commit(txn)
            self.stats.committed += 1
            self.stats.commit_latencies.append(
                self.cluster.loop.now - started
            )

    # ------------------------------------------------------------------
    # Open loop: Poisson arrivals at a fixed rate
    # ------------------------------------------------------------------
    def run_open_loop(
        self, rate_per_ms: float, duration_ms: float
    ) -> RunnerStats:
        """Single-op write transactions arriving as a Poisson process.

        Measures commit latency at a controlled offered load -- the shape
        benchmark C2 (boxcar jitter) depends on, because boxcar-timeout
        designs hurt most at LOW load.
        """
        loop = self.cluster.loop
        instance = self.cluster.writer
        rng = self.generator.rng
        end_at = loop.now + duration_ms
        in_flight: list[Process] = []

        def _one_txn():
            operations = self.generator.next_transaction()
            txn = instance.begin()
            started = loop.now
            from repro.errors import LockConflictError

            try:
                for op in operations:
                    if op.kind is OpKind.READ:
                        yield from instance.get(op.key, txn)
                    elif op.kind is OpKind.WRITE:
                        yield from instance.put(txn, op.key, op.value)
                    else:
                        yield from instance.delete(txn, op.key)
            except LockConflictError:
                yield from instance.rollback(txn)
                self.stats.aborted += 1
                return
            yield instance.commit(txn)
            self.stats.committed += 1
            self.stats.commit_latencies.append(loop.now - started)

        def _arrivals():
            while loop.now < end_at:
                in_flight.append(Process(loop, _one_txn()))
                yield rng.expovariate(rate_per_ms)

        arrival_process = Process(loop, _arrivals())
        while not arrival_process.finished or not all(
            p.finished for p in in_flight
        ):
            if not loop.step():
                raise ConfigurationError(
                    "simulation stalled before the workload finished"
                )
        return self.stats
