"""Named workload profiles.

Shorthand configurations mirroring the kinds of OLTP mixes the paper's
motivation section gestures at (sysbench-style write-only and mixed loads,
plus a hot-key contention profile).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.generator import WorkloadConfig

PROFILES: dict[str, WorkloadConfig] = {
    # sysbench oltp_write_only-like: every statement writes.
    "write_only": WorkloadConfig(
        key_count=2_000,
        write_fraction=0.98,
        delete_fraction=0.02,
        zipf_theta=0.4,
        min_ops=1,
        max_ops=4,
    ),
    # sysbench oltp_read_write-like mix.
    "read_write": WorkloadConfig(
        key_count=2_000,
        write_fraction=0.30,
        delete_fraction=0.02,
        zipf_theta=0.6,
        min_ops=2,
        max_ops=6,
    ),
    # read-mostly reporting load for replica-scaling experiments.
    "read_mostly": WorkloadConfig(
        key_count=2_000,
        write_fraction=0.05,
        delete_fraction=0.00,
        zipf_theta=0.2,
        min_ops=1,
        max_ops=3,
    ),
    # heavy skew: exercises lock conflicts and hot-block version chains.
    "hotspot": WorkloadConfig(
        key_count=500,
        write_fraction=0.60,
        delete_fraction=0.02,
        zipf_theta=1.1,
        min_ops=1,
        max_ops=3,
    ),
    # single-statement commits at low rate: the boxcar-jitter scenario.
    "trickle": WorkloadConfig(
        key_count=1_000,
        write_fraction=1.0,
        delete_fraction=0.0,
        zipf_theta=0.0,
        min_ops=1,
        max_ops=1,
    ),
}


def profile(name: str) -> WorkloadConfig:
    """Look up a named profile (raises with the available names)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload profile {name!r}; available: "
            f"{sorted(PROFILES)}"
        ) from None
