"""Synthetic OLTP workload generation.

Deterministic (seeded) generators producing operation streams against the
key/value-over-B-tree schema the kernel exposes: read/write mixes, Zipfian
hot keys, multi-statement transactions, and open/closed-loop client
drivers for latency and jitter measurements.
"""

from repro.workloads.generator import (
    Operation,
    OpKind,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadRunner,
)
from repro.workloads.profiles import PROFILES, profile
from repro.workloads.sessions import (
    SessionScaleConfig,
    SessionScaleStats,
    SessionScaleWorkload,
)

__all__ = [
    "Operation",
    "OpKind",
    "PROFILES",
    "SessionScaleConfig",
    "SessionScaleStats",
    "SessionScaleWorkload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WorkloadRunner",
    "profile",
]
