"""Session-scale workload generation for the serving tier.

The existing :class:`~repro.workloads.generator.WorkloadRunner` drives a
handful of closed-loop clients as full simulator processes.  That does
not scale to the serving tier's envelope -- hundreds of thousands of
concurrent *logical* sessions -- because a process per session would
swamp the event heap with idle think-time wakeups.

:class:`SessionScaleWorkload` instead keeps every idle session as one
heap entry ``(due_time, seq, session_idx)`` inside a single scheduler
process; a simulator process exists only while a session has an
operation in flight through the :class:`~repro.db.proxy.ConnectionProxy`.
With a mean think time of minutes and a horizon of seconds, 100k+
sessions cost only their active operations.

Two driving modes (both deterministic under one seed):

- **closed loop** (default): each session re-arms itself ``think``
  milliseconds after its previous operation completes, the classic
  interactive-user model;
- **open loop**: operations arrive by a Poisson process at
  ``open_loop_rate_per_ms`` and are assigned to random sessions,
  modelling bursty fan-in that does not slow down when the backend does.

The workload doubles as the serving tier's correctness probe:

- every session owns private keys nobody else writes, so a read of a
  private key must return the session's last acknowledged write -- the
  *read-your-writes* invariant the proxy's floor routing promises
  (violations are flagged as ``proxy-read-your-writes``);
- shared-key reads must observe only values some session actually wrote
  (``proxy-read-consistency``);
- :meth:`SessionScaleWorkload.reconcile` re-reads every session's last
  acknowledged private write after the run settles, flagging any loss as
  ``proxy-acked-write-loss`` -- the zero acked-commit-loss gate.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    LockConflictError,
    ReproError,
    SimulationError,
)
from repro.sim.process import Process


@dataclass(frozen=True)
class SessionScaleConfig:
    """Shape of a session-scale run.

    Defaults model the audit gate: 100k logical sessions whose think
    times (minutes) dwarf the horizon (seconds), so only a few thousand
    operations actually fire -- exactly how a production fleet of mostly
    idle connections behaves.
    """

    sessions: int = 100_000
    horizon_ms: float = 20_000.0
    #: Mean exponential think time between a session's operations.
    think_ms: float = 120_000.0
    #: > 0 switches to open-loop: Poisson operation arrivals per ms,
    #: assigned to uniformly random sessions.
    open_loop_rate_per_ms: float = 0.0
    write_fraction: float = 0.4
    #: Fraction of operations touching the shared key space.
    shared_fraction: float = 0.3
    shared_keys: int = 512
    #: Private keys per session (read-your-writes probes).
    private_keys: int = 2
    seed: int = 0
    #: Extra settle time after the horizon for in-flight ops to drain.
    drain_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ConfigurationError("sessions must be >= 1")
        if self.horizon_ms <= 0 or self.think_ms <= 0:
            raise ConfigurationError("horizon_ms and think_ms must be > 0")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ConfigurationError("shared_fraction must be in [0, 1]")
        if self.private_keys < 1 or self.shared_keys < 1:
            raise ConfigurationError("key counts must be >= 1")


@dataclass
class SessionScaleStats:
    """What happened, for the serving report and the audit gates."""

    sessions: int = 0
    ops_started: int = 0
    ops_completed: int = 0
    reads: int = 0
    writes: int = 0
    #: Lock conflicts on shared keys (expected, not a failure).
    aborts: int = 0
    #: Operations that exhausted the proxy's retry budget.
    errors: int = 0
    ryw_checks: int = 0
    ryw_violations: int = 0
    shared_check_violations: int = 0
    #: Reconciliation: sessions whose last acked private write survived /
    #: was lost.
    reconciled: int = 0
    lost_acked_writes: int = 0


class SessionScaleWorkload:
    """Drive ``config.sessions`` logical sessions through a proxy.

    ``flag(invariant, subject, detail)`` -- typically
    :meth:`repro.audit.auditor.Auditor.flag` -- receives every
    correctness violation; when ``None`` violations are only counted.
    """

    def __init__(self, proxy, config: SessionScaleConfig, flag=None) -> None:
        self.proxy = proxy
        self.config = config
        self.flag = flag
        self.stats = SessionScaleStats(sessions=config.sessions)
        self.rng = random.Random(config.seed * 9_176_501 + 11)
        self.sessions = [proxy.connect() for _ in range(config.sessions)]
        #: session idx -> (private key, last acked value) for RYW checks.
        self._acked: dict[int, tuple[str, int]] = {}
        #: (idx, key) pairs whose outcome is uncertain (op errored after
        #: possibly committing): excluded from exact-value checks.
        self._tainted: set = set()
        #: (idx, key) pairs that ever had two writes in flight at once
        #: (open-loop mode): the exact expected value is ambiguous.
        self._racy: set = set()
        #: Ops in flight per session (open loop can overlap a session).
        self._inflight_by_session: dict[int, int] = {}
        #: Everything ever *submitted* for a shared key (recorded before
        #: the write starts, so any visible value is necessarily here).
        self._shared_history: dict[str, set] = {}
        self._heap: list = []
        self._active = 0
        self._seq = 0
        self._value_seq = 0
        self._end = 0.0

    # ------------------------------------------------------------------
    # Key helpers
    # ------------------------------------------------------------------
    def _private_key(self, idx: int) -> str:
        slot = self.rng.randrange(self.config.private_keys)
        return f"s{idx}:p{slot}"

    def _shared_key(self) -> str:
        return f"shared:{self.rng.randrange(self.config.shared_keys)}"

    def _violate(self, invariant: str, subject: str, detail: str) -> None:
        if self.flag is not None:
            self.flag(invariant, subject, detail)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _push(self, due: float, idx: int) -> None:
        heapq.heappush(self._heap, (due, self._seq, idx))
        self._seq += 1

    def _seed_initial_wakeups(self) -> None:
        cfg = self.config
        start = self.proxy.cluster.loop.now
        if cfg.open_loop_rate_per_ms > 0:
            # Open loop: one arrival stream; sessions are chosen at
            # fire time.
            due = start + self.rng.expovariate(cfg.open_loop_rate_per_ms)
            self._push(due, -1)
            return
        for idx in range(cfg.sessions):
            # Residual of an exponential think time is exponential, so
            # sampling the full distribution gives a stationary start.
            due = start + self.rng.expovariate(1.0 / cfg.think_ms)
            if due <= self._end:
                self._push(due, idx)

    def _scheduler(self):
        cfg = self.config
        loop = self.proxy.cluster.loop
        while loop.now <= self._end:
            if self._heap and self._heap[0][0] <= loop.now:
                _due, _seq, idx = heapq.heappop(self._heap)
                if idx < 0:
                    # Open-loop arrival: launch on a random session and
                    # re-arm the arrival stream.
                    self._launch(self.rng.randrange(cfg.sessions))
                    nxt = loop.now + self.rng.expovariate(
                        cfg.open_loop_rate_per_ms
                    )
                    if nxt <= self._end:
                        self._push(nxt, -1)
                else:
                    self._launch(idx)
                continue
            next_due = self._heap[0][0] if self._heap else self._end + 1.0
            # Bounded slices: completions may re-arm sessions earlier
            # than the current heap head, so never sleep far past it.
            yield max(0.1, min(next_due - loop.now, 5.0))

    def _launch(self, idx: int) -> None:
        cfg, rng = self.config, self.rng
        # Draw all of the operation's randomness here, at the single
        # deterministic scheduling point, so interleaving of in-flight
        # operations cannot perturb the random stream.
        is_write = rng.random() < cfg.write_fraction
        is_shared = rng.random() < cfg.shared_fraction
        key = self._shared_key() if is_shared else self._private_key(idx)
        value = None
        if is_write:
            self._value_seq += 1
            value = self._value_seq
            if is_shared:
                self._shared_history.setdefault(key, set()).add(value)
            else:
                if (idx, key) in self._tainted:
                    # A second write while one is still in flight: the
                    # "last acked" value is permanently ambiguous.
                    self._racy.add((idx, key))
                # The outcome is uncertain until the ack arrives.
                self._tainted.add((idx, key))
        self.stats.ops_started += 1
        self._active += 1
        self._inflight_by_session[idx] = (
            self._inflight_by_session.get(idx, 0) + 1
        )
        process = Process(
            self.proxy.cluster.loop,
            self._one_op(idx, key, value, is_write, is_shared),
        )
        process.completion.add_done_callback(
            lambda future, idx=idx: self._finish(idx, future)
        )

    def _finish(self, idx: int, future) -> None:
        self._active -= 1
        count = self._inflight_by_session.get(idx, 1) - 1
        if count <= 0:
            self._inflight_by_session.pop(idx, None)
        else:
            self._inflight_by_session[idx] = count
        exc = future.exception() if future.done else None
        if exc is None:
            self.stats.ops_completed += 1
        elif isinstance(exc, LockConflictError):
            self.stats.aborts += 1
        elif isinstance(exc, (ReproError, SimulationError)):
            self.stats.errors += 1
        else:  # pragma: no cover - genuine bug in the harness
            raise exc
        if self.config.open_loop_rate_per_ms > 0:
            return
        loop = self.proxy.cluster.loop
        due = loop.now + self.rng.expovariate(1.0 / self.config.think_ms)
        if due <= self._end:
            self._push(due, idx)

    # ------------------------------------------------------------------
    # One operation (runs as a simulator process)
    # ------------------------------------------------------------------
    def _one_op(self, idx: int, key, value, is_write: bool, is_shared: bool):
        proxy = self.proxy
        session = self.sessions[idx]
        if is_write:
            yield from proxy.write(session, key, value)
            self.stats.writes += 1
            if not is_shared:
                # Acked: this is now the value RYW reads must observe.
                self._acked[idx] = (key, value)
                self._tainted.discard((idx, key))
        else:
            observed = yield from proxy.read(session, key)
            self.stats.reads += 1
            if is_shared:
                self._check_shared(key, observed)
            else:
                self._check_private(idx, key, observed)

    def _check_private(self, idx: int, key: str, observed) -> None:
        acked = self._acked.get(idx)
        if acked is None or acked[0] != key or (idx, key) in self._tainted:
            return
        if (idx, key) in self._racy:
            return
        if self._inflight_by_session.get(idx, 0) > 1:
            # Open loop: a concurrent write to this session may have
            # moved the floor mid-read; the exact value is ambiguous.
            return
        self.stats.ryw_checks += 1
        if observed != acked[1]:
            self.stats.ryw_violations += 1
            self._violate(
                "proxy-read-your-writes",
                f"session-{idx}",
                f"read {key!r} -> {observed!r} after ack of {acked[1]!r} "
                f"(floor scn {self.sessions[idx].last_commit_scn})",
            )

    def _check_shared(self, key: str, observed) -> None:
        if observed is None:
            return  # never written, or writes still in flight
        if observed not in self._shared_history.get(key, ()):
            self.stats.shared_check_violations += 1
            self._violate(
                "proxy-read-consistency",
                key,
                f"observed {observed!r}, never submitted for this key",
            )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self) -> SessionScaleStats:
        """Drive the workload for ``horizon_ms``, then drain in-flight
        operations (failover ride-through may extend past the horizon)."""
        loop = self.proxy.cluster.loop
        self.proxy.start()
        self._end = loop.now + self.config.horizon_ms
        self._seed_initial_wakeups()
        scheduler = Process(loop, self._scheduler())
        hard_stop = self._end + self.config.drain_ms
        while not scheduler.completion.done or self._active > 0:
            if not loop.step():
                raise SimulationError(
                    "event loop drained mid session-scale run"
                )
            if loop.now > hard_stop:
                raise SimulationError(
                    f"session-scale run stalled: {self._active} ops still "
                    f"in flight {self.config.drain_ms} ms past the horizon"
                )
        return self.stats

    def reconcile(self) -> int:
        """Re-read every session's last acked private write through the
        proxy; flag and count losses.  Returns the number lost."""
        lost = 0
        for idx in sorted(self._acked):
            key, value = self._acked[idx]
            if (idx, key) in self._tainted or (idx, key) in self._racy:
                continue
            observed = self.proxy.execute_read(self.sessions[idx], key)
            self.stats.reconciled += 1
            if observed != value:
                lost += 1
                self._violate(
                    "proxy-acked-write-loss",
                    f"session-{idx}",
                    f"acked write {key!r}={value!r} reads back "
                    f"{observed!r} after settle",
                )
        self.stats.lost_acked_writes = lost
        return lost
