"""Lossy, high-RTT wide-area links and a reliable framing protocol.

The intra-region network (:mod:`repro.sim.network`) models links that are
slow or partitioned but otherwise honest: a message that is delivered is
delivered once, in latency order.  A cross-region WAN is meaner -- packets
are *lost* routinely (not just during failures), latency is two orders of
magnitude higher with a heavy tail, bandwidth is capped, and independent
routing means reordering is normal.  This module adds both halves of the
geo-replication transport:

- :class:`WanLink` -- a per-link policy installed into a
  :class:`~repro.sim.network.Network` via :meth:`Network.set_wan_link`.
  Every message crossing the pair samples loss, latency (default
  :func:`repro.sim.latency.wan_link`), a serialization delay against a
  bandwidth cap, and optional extra reorder delay, from the link's **own**
  RNG so installing a WAN never perturbs the intra-region random stream.
  A *brownout* (loss/RTT spike) can be imposed and lifted at runtime.

- :class:`WanSender` / :class:`WanReceiver` -- a retransmission/ack layer
  making the lossy link reliable and FIFO: sequence-numbered
  :class:`WanFrame`\\ s, cumulative :class:`WanAck`\\ s, exponential
  backoff with jitter (the shared :mod:`repro.core.retry` policy), bounded
  sender-side buffering with a backpressure signal, and idle
  :class:`WanHeartbeat`\\ s that carry liveness (and piggybacked sender
  state) even when no data flows.  The receiver delivers a **gapless
  in-order prefix** of offered payloads, exactly once, no matter what the
  link drops, duplicates, or reorders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.retry import Backoff, RetryPolicy
from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.latency import LatencyModel, wan_link


# ----------------------------------------------------------------------
# Wire payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WanFrame:
    """One sequenced unit on the WAN; ``payload`` is opaque to the link."""

    seq: int
    payload: Any
    #: Relative size for the bandwidth model (e.g. records carried).
    wan_size: int = 1


@dataclass(frozen=True, slots=True)
class WanAck:
    """Cumulative acknowledgement: every frame ``seq <= cumulative`` has
    been received (and delivered in order) by the receiver.  ``info``
    carries opaque receiver state back to the sender -- the geo tier uses
    it for the secondary region's applied-VDL frontier."""

    cumulative: int
    info: Any = None


@dataclass(frozen=True, slots=True)
class WanHeartbeat:
    """Unsequenced liveness probe sent when the data stream is idle (or
    stalled); ``info`` piggybacks sender state (the geo tier ships the
    primary's epochs and VDL).  Receivers ack heartbeats like frames, so
    a healthy-but-idle link keeps both directions' liveness fresh."""

    info: Any = None


# ----------------------------------------------------------------------
# The lossy link itself
# ----------------------------------------------------------------------
@dataclass
class WanConfig:
    """Shape of one wide-area link (times in simulated ms)."""

    #: One-way latency model (default ~35 ms log-normal).
    latency: LatencyModel | None = None
    #: Independent per-message loss probability in [0, 1).
    loss_rate: float = 0.02
    #: Payload units per ms, or ``None`` for an uncapped link.  Messages
    #: queue behind each other per direction (serialization delay).
    bandwidth_per_ms: float | None = None
    #: Probability a delivered message is held back an extra beat.
    reorder_rate: float = 0.05
    #: Extra delay applied to reordered messages.
    reorder_extra_ms: float = 20.0
    #: Seed for the link's private RNG (keeps the owning simulation's
    #: random stream untouched).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.reorder_rate <= 1.0:
            raise ConfigurationError("reorder_rate must be in [0, 1]")
        if self.bandwidth_per_ms is not None and self.bandwidth_per_ms <= 0:
            raise ConfigurationError("bandwidth_per_ms must be > 0")


@dataclass
class WanStats:
    messages_passed: int = 0
    messages_lost: int = 0
    messages_reordered: int = 0
    #: Cumulative serialization wait imposed by the bandwidth cap.
    queueing_ms: float = 0.0


class WanLink:
    """Loss/latency/bandwidth/reorder policy for one network pair.

    Installed via :meth:`repro.sim.network.Network.set_wan_link`; the
    network consults :meth:`plan` for every message crossing the pair and
    drops the message when it returns ``None``.  Both directions share
    the link (acks are as lossy as data) but queue independently against
    the bandwidth cap.
    """

    def __init__(self, config: WanConfig | None = None) -> None:
        self.config = config if config is not None else WanConfig()
        self.latency = (
            self.config.latency
            if self.config.latency is not None
            else wan_link()
        )
        self.rng = random.Random(self.config.seed)
        self.stats = WanStats()
        self._busy_until: dict[str, float] = {}
        #: Active brownout, as (loss_rate, latency_factor) or ``None``.
        self._brownout: tuple[float, float] | None = None

    # -- degraded-mode control ----------------------------------------
    def set_brownout(
        self, loss_rate: float, latency_factor: float = 1.0
    ) -> None:
        """Impose a loss/RTT spike until :meth:`clear_brownout`."""
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError("brownout loss_rate must be in [0, 1)")
        if latency_factor <= 0:
            raise ConfigurationError("latency_factor must be > 0")
        self._brownout = (loss_rate, latency_factor)

    def clear_brownout(self) -> None:
        self._brownout = None

    @property
    def in_brownout(self) -> bool:
        return self._brownout is not None

    # -- the per-message verdict --------------------------------------
    def plan(self, src: str, payload: Any, now: float) -> float | None:
        """Latency for one message, or ``None`` if the link eats it."""
        if self._brownout is not None:
            loss_rate, latency_factor = self._brownout
        else:
            loss_rate, latency_factor = self.config.loss_rate, 1.0
        if loss_rate > 0.0 and self.rng.random() < loss_rate:
            self.stats.messages_lost += 1
            return None
        delay = self.latency.sample(self.rng) * latency_factor
        bandwidth = self.config.bandwidth_per_ms
        if bandwidth is not None:
            size = getattr(payload, "wan_size", 1)
            serialize = size / bandwidth
            start = max(now, self._busy_until.get(src, 0.0))
            self._busy_until[src] = start + serialize
            queued = (start - now) + serialize
            self.stats.queueing_ms += queued
            delay += queued
        if (
            self.config.reorder_rate > 0.0
            and self.rng.random() < self.config.reorder_rate
        ):
            self.stats.messages_reordered += 1
            delay += self.config.reorder_extra_ms
        self.stats.messages_passed += 1
        return delay


# ----------------------------------------------------------------------
# Reliable framing over the lossy link
# ----------------------------------------------------------------------
@dataclass
class WanSenderConfig:
    """Knobs for the sending half of the reliable layer."""

    #: Retransmission pacing (jittered so concurrent links decorrelate).
    retransmit: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            base_ms=120.0, cap_ms=960.0, jitter=0.2
        )
    )
    #: Retransmission check cadence.
    poll_ms: float = 25.0
    #: Oldest unacked frames re-sent per retransmission burst.
    retransmit_window: int = 32
    #: Hard bound on buffered (unacked + queued) frames; :meth:`offer`
    #: refuses beyond it.
    buffer_limit: int = 16_384
    #: Backpressure trips at this fraction of the buffer.
    high_water_fraction: float = 0.75
    #: Idle heartbeat cadence.
    heartbeat_ms: float = 200.0
    #: Seed for retransmission jitter.
    seed: int = 1


class WanSender:
    """Sequencing, retransmission, and bounded buffering.

    ``transmit`` puts one wire payload (:class:`WanFrame`,
    :class:`WanHeartbeat`) on the link; the owner must route incoming
    :class:`WanAck`\\ s to :meth:`on_ack`.  ``heartbeat_info`` (when
    given) is called at each heartbeat to snapshot piggybacked state.
    """

    def __init__(
        self,
        loop: EventLoop,
        transmit: Callable[[Any], None],
        config: WanSenderConfig | None = None,
        heartbeat_info: Callable[[], Any] | None = None,
        on_ack_info: Callable[[Any], None] | None = None,
    ) -> None:
        self.loop = loop
        self.transmit = transmit
        self.config = config if config is not None else WanSenderConfig()
        self.heartbeat_info = heartbeat_info
        self.on_ack_info = on_ack_info
        self._rng = random.Random(self.config.seed)
        self._backoff = Backoff(self.config.retransmit, rng=self._rng)
        self._next_seq = 1
        #: Frames sent (or queued under a stall) and not yet cum-acked.
        self._unacked: list[WanFrame] = []
        self.cumulative_acked = 0
        self.last_ack_at = loop.now
        self.last_transmit_at = loop.now
        #: Next retransmission is allowed at this time (backoff cursor).
        self._retransmit_at = loop.now + self._backoff.next_delay()
        self._stalled_until = 0.0
        self._stopped = False
        self.frames_sent = 0
        self.frames_retransmitted = 0
        self.heartbeats_sent = 0
        self.offers_rejected = 0
        self._tick_scheduled = False
        self._schedule_tick()

    # -- public surface -----------------------------------------------
    @property
    def buffered(self) -> int:
        return len(self._unacked)

    @property
    def buffer_limit(self) -> int:
        return self.config.buffer_limit

    @property
    def backpressured(self) -> bool:
        limit = self.config.buffer_limit * self.config.high_water_fraction
        return len(self._unacked) >= limit

    @property
    def stalled(self) -> bool:
        return self.loop.now < self._stalled_until

    def offer(self, payload: Any, size: int = 1) -> bool:
        """Enqueue one payload for reliable delivery.  Returns ``False``
        (and drops the payload) when the buffer bound is hit -- the
        caller decides what backpressure means at its layer."""
        if self._stopped or len(self._unacked) >= self.config.buffer_limit:
            self.offers_rejected += 1
            return False
        frame = WanFrame(seq=self._next_seq, payload=payload, wan_size=size)
        self._next_seq += 1
        self._unacked.append(frame)
        if not self.stalled:
            self._transmit_frame(frame)
        return True

    def stall(self, duration_ms: float) -> None:
        """Stop emitting *data* frames for ``duration_ms`` (heartbeats
        keep flowing -- a stalled stream is not a dead region).  Queued
        frames flush when the stall lifts."""
        self._stalled_until = max(
            self._stalled_until, self.loop.now + duration_ms
        )

    def on_ack(self, ack: WanAck) -> None:
        self.last_ack_at = self.loop.now
        if ack.cumulative > self.cumulative_acked:
            self.cumulative_acked = ack.cumulative
            while self._unacked and self._unacked[0].seq <= ack.cumulative:
                self._unacked.pop(0)
            # Progress: restart the backoff ladder.
            self._backoff.reset()
            self._retransmit_at = self.loop.now + self._backoff.next_delay()
        if self.on_ack_info is not None:
            self.on_ack_info(ack.info)

    def stop(self) -> None:
        """Permanently silence the sender (region torn down or fenced)."""
        self._stopped = True
        self._unacked.clear()

    # -- internals ----------------------------------------------------
    def _transmit_frame(self, frame: WanFrame) -> None:
        self.transmit(frame)
        self.frames_sent += 1
        self.last_transmit_at = self.loop.now

    def _schedule_tick(self) -> None:
        if self._tick_scheduled or self._stopped:
            return
        self._tick_scheduled = True
        self.loop.schedule(self.config.poll_ms, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._stopped:
            return
        now = self.loop.now
        if not self.stalled and self._unacked and now >= self._retransmit_at:
            for frame in self._unacked[: self.config.retransmit_window]:
                self._transmit_frame(frame)
                self.frames_retransmitted += 1
            self._retransmit_at = now + self._backoff.next_delay()
        if now - self.last_transmit_at >= self.config.heartbeat_ms:
            info = (
                self.heartbeat_info() if self.heartbeat_info is not None
                else None
            )
            self.transmit(WanHeartbeat(info=info))
            self.heartbeats_sent += 1
            self.last_transmit_at = now
        self._schedule_tick()


class WanReceiver:
    """In-order, exactly-once delivery plus cumulative acks.

    Frames at the expected sequence deliver immediately (draining any
    buffered successors); out-of-order frames wait; duplicates -- fresh
    retransmissions or stale reorders -- are dropped but still re-acked,
    so a sender whose acks were lost converges without re-applying.
    """

    def __init__(
        self,
        loop: EventLoop,
        transmit: Callable[[Any], None],
        deliver: Callable[[Any], None],
        ack_info: Callable[[], Any] | None = None,
        on_heartbeat: Callable[[Any], None] | None = None,
    ) -> None:
        self.loop = loop
        self.transmit = transmit
        self.deliver = deliver
        self.ack_info = ack_info
        self.on_heartbeat = on_heartbeat
        self._next_seq = 1
        self._pending: dict[int, Any] = {}
        self.delivered = 0
        self.duplicates = 0
        self.last_signal_at = loop.now

    @property
    def next_expected(self) -> int:
        return self._next_seq

    @property
    def cumulative(self) -> int:
        return self._next_seq - 1

    def on_message(self, payload: Any) -> None:
        self.last_signal_at = self.loop.now
        if isinstance(payload, WanHeartbeat):
            if self.on_heartbeat is not None:
                self.on_heartbeat(payload.info)
            self._send_ack()
            return
        if isinstance(payload, WanFrame):
            self._on_frame(payload)
            return
        raise ConfigurationError(
            f"WanReceiver got unexpected payload {type(payload).__name__}"
        )

    def _on_frame(self, frame: WanFrame) -> None:
        if frame.seq < self._next_seq:
            self.duplicates += 1
        elif frame.seq == self._next_seq:
            self._deliver_one(frame.payload)
            while self._next_seq in self._pending:
                self._deliver_one(self._pending.pop(self._next_seq))
        else:
            # Out of order: hold; a duplicate of a held frame overwrites
            # itself harmlessly (same seq, same payload).
            self._pending[frame.seq] = frame.payload
        self._send_ack()

    def _deliver_one(self, payload: Any) -> None:
        self._next_seq += 1
        self.delivered += 1
        self.deliver(payload)

    def push_ack(self) -> None:
        """Send an unsolicited (cumulative, idempotent) ack.

        Owners call this when the piggybacked ``ack_info`` state changed
        *between* messages -- e.g. the geo applier's applied-VDL frontier
        advancing once the secondary quorum acks -- so the sender learns
        promptly instead of waiting for the next frame or heartbeat.
        """
        self._send_ack()

    def _send_ack(self) -> None:
        info = self.ack_info() if self.ack_info is not None else None
        self.transmit(WanAck(cumulative=self.cumulative, info=info))
