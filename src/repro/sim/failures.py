"""Failure injection for the simulated fleet.

The paper's durability story is built around *correlated* failure: "it is
insufficient to treat failures as independent.  At a minimum, it is necessary
to consider the correlated impact of the largest unit of failure" -- in AWS,
an Availability Zone.  The injector therefore supports four granularities:

- single node crash/restart (the background noise of independent failures),
- whole-AZ outage (the correlated event Figure 1 is about),
- degraded ("slow" / "busy") nodes, which are not down but answer late --
  the case the paper's read hedging and membership "suspect state" handle,
- network partitions isolating a node from the rest of the fleet.

Deterministic schedules (``crash_at``) serve the figure reproductions;
stochastic MTTF/MTTR background failure (``enable_background_failures``)
serves the durability benchmarks; :class:`repro.sim.chaos.ChaosSchedule`
composes all of them into seeded randomized scenarios.

**Manual intervention vs. background schedules.**  Background failures are
pre-scheduled at enable time (keeping runs deterministic for a given seed),
which historically meant a node manually restored mid-schedule -- e.g. via
``restore_az`` after a staged outage -- could be immediately re-crashed or
resurrected by a stale pre-scheduled event.  Every node now carries a
*failure generation*; manual crash/restore operations bump it, and each
background event captures the generation current when it was scheduled and
becomes a no-op if the node's generation has moved on.  Call
``enable_background_failures`` again to resume background noise for a
manually-touched node.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.network import Network


class FailureInjector:
    """Schedules failures and repairs against a :class:`Network`."""

    def __init__(
        self, loop: EventLoop, network: Network, rng: random.Random
    ) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        self.log: list[tuple[float, str, str]] = []
        self._az_members: dict[str, set[str]] = {}
        #: Per-node failure generation; bumped by every *manual* crash or
        #: restore so stale pre-scheduled background events cancel.
        self._generations: dict[str, int] = {}
        #: Permanently decommissioned nodes: every restore (manual,
        #: AZ-wide, or background) is a no-op for them.
        self._condemned: set[str] = set()

    def register_az(self, az: str, nodes: set[str]) -> None:
        """Declare which nodes belong to an AZ (for whole-AZ events)."""
        self._az_members.setdefault(az, set()).update(nodes)

    def az_nodes(self, az: str) -> set[str]:
        if az not in self._az_members:
            raise ConfigurationError(f"unknown AZ {az!r}")
        return set(self._az_members[az])

    def generation_of(self, name: str) -> int:
        return self._generations.get(name, 0)

    def _bump(self, name: str) -> None:
        self._generations[name] = self._generations.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Immediate operations
    # ------------------------------------------------------------------
    def crash_node(self, name: str) -> None:
        self._bump(name)
        self.log.append((self.loop.now, "crash", name))
        self.network.fail_node(name)

    def restore_node(self, name: str) -> None:
        if name in self._condemned:
            return
        self._bump(name)
        self.log.append((self.loop.now, "restore", name))
        self.network.restore_node(name)

    def condemn_node(self, name: str) -> None:
        """Permanently decommission ``name``: crash it now and make every
        future restore -- manual, AZ-wide, or background -- a no-op.

        A plain :meth:`crash_node` only cancels *pre-scheduled background*
        restores (via the generation bump); a chaos schedule's
        ``restore_az`` or ``restore_node`` event landing later would still
        resurrect the node.  Condemnation models an unrecoverable host
        loss: the AZ can come back without that disk coming back with it.
        """
        self._condemned.add(name)
        self.log.append((self.loop.now, "condemn", name))
        self.crash_node(name)

    def crash_az(self, az: str) -> None:
        self.log.append((self.loop.now, "crash_az", az))
        for node in self.az_nodes(az):
            self._bump(node)
            self.network.fail_node(node)

    def restore_az(self, az: str) -> None:
        self.log.append((self.loop.now, "restore_az", az))
        for node in self.az_nodes(az):
            if node in self._condemned:
                continue
            self._bump(node)
            self.network.restore_node(node)

    def slow_node(self, name: str, factor: float) -> None:
        """Degrade a node: all its traffic is ``factor`` times slower."""
        self.log.append((self.loop.now, f"slow_x{factor}", name))
        self.network.set_latency_scale(name, factor)

    def unslow_node(self, name: str) -> None:
        self.log.append((self.loop.now, "unslow", name))
        self.network.set_latency_scale(name, 1.0)

    def partition_node(self, name: str, others: set[str]) -> None:
        """Isolate ``name`` from ``others`` (both directions drop)."""
        self.log.append((self.loop.now, "partition", name))
        self.network.partition({name}, set(others))

    def heal_node_partition(self, name: str, others: set[str]) -> None:
        self.log.append((self.loop.now, "heal_partition", name))
        self.network.heal_partition({name}, set(others))

    def quarantine_node(self, name: str, allow: set[str] = frozenset()) -> None:
        """Drop all traffic to/from ``name`` except ``allow`` -- unlike
        :meth:`partition_node`, this also covers peers created after the
        quarantine is installed."""
        self.log.append((self.loop.now, "quarantine", name))
        self.network.quarantine(name, allow)

    def lift_quarantine(self, name: str) -> None:
        self.log.append((self.loop.now, "lift_quarantine", name))
        self.network.lift_quarantine(name)

    # ------------------------------------------------------------------
    # Scheduled operations
    # ------------------------------------------------------------------
    def crash_at(
        self, time: float, name: str, duration: float | None = None
    ) -> None:
        """Crash ``name`` at ``time``; restore after ``duration`` if given."""
        self.loop.schedule_at(time, self.crash_node, name)
        if duration is not None:
            self.loop.schedule_at(time + duration, self.restore_node, name)

    def crash_az_at(
        self, time: float, az: str, duration: float | None = None
    ) -> None:
        self.loop.schedule_at(time, self.crash_az, az)
        if duration is not None:
            self.loop.schedule_at(time + duration, self.restore_az, az)

    def slow_at(
        self, time: float, name: str, factor: float, duration: float | None = None
    ) -> None:
        self.loop.schedule_at(time, self.slow_node, name, factor)
        if duration is not None:
            self.loop.schedule_at(time + duration, self.unslow_node, name)

    def partition_at(
        self,
        time: float,
        name: str,
        others: set[str],
        duration: float | None = None,
    ) -> None:
        self.loop.schedule_at(time, self.partition_node, name, set(others))
        if duration is not None:
            self.loop.schedule_at(
                time + duration, self.heal_node_partition, name, set(others)
            )

    # ------------------------------------------------------------------
    # Background stochastic failures
    # ------------------------------------------------------------------
    def enable_background_failures(
        self,
        nodes: list[str],
        mttf_ms: float,
        mttr_ms: float,
        horizon_ms: float,
    ) -> None:
        """Schedule an independent crash/repair renewal process per node.

        Each node alternates exponentially-distributed up intervals (mean
        ``mttf_ms``) and down intervals (mean ``mttr_ms``), pre-scheduled out
        to ``horizon_ms``.  Pre-scheduling keeps runs deterministic for a
        given seed regardless of what the protocols under test do.

        The whole pre-scheduled sequence for a node is tied to that node's
        current failure generation: a manual ``crash_node`` / ``restore_node``
        / ``crash_az`` / ``restore_az`` touching the node invalidates its
        remaining background events (see module docstring).
        """
        if mttf_ms <= 0 or mttr_ms <= 0:
            raise ConfigurationError("mttf_ms and mttr_ms must be > 0")
        for node in nodes:
            generation = self.generation_of(node)
            t = self.loop.now + self.rng.expovariate(1.0 / mttf_ms)
            while t < horizon_ms:
                down_for = self.rng.expovariate(1.0 / mttr_ms)
                self.loop.schedule_at(
                    t, self._background_crash, node, generation
                )
                restore_at = t + down_for
                if restore_at < horizon_ms:
                    self.loop.schedule_at(
                        restore_at, self._background_restore, node, generation
                    )
                t = restore_at + self.rng.expovariate(1.0 / mttf_ms)

    def _background_crash(self, name: str, generation: int) -> None:
        if self.generation_of(name) != generation:
            return  # stale: the node was manually touched since scheduling
        self.log.append((self.loop.now, "crash", name))
        self.network.fail_node(name)

    def _background_restore(self, name: str, generation: int) -> None:
        if name in self._condemned:
            return
        if self.generation_of(name) != generation:
            return  # stale: the node was manually touched since scheduling
        self.log.append((self.loop.now, "restore", name))
        self.network.restore_node(name)
