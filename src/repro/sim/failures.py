"""Failure injection for the simulated fleet.

The paper's durability story is built around *correlated* failure: "it is
insufficient to treat failures as independent.  At a minimum, it is necessary
to consider the correlated impact of the largest unit of failure" -- in AWS,
an Availability Zone.  The injector therefore supports four granularities:

- single node crash/restart (the background noise of independent failures),
- whole-AZ outage (the correlated event Figure 1 is about),
- degraded ("slow" / "busy") nodes, which are not down but answer late --
  the case the paper's read hedging and membership "suspect state" handle,
- network partitions isolating a node from the rest of the fleet.

Deterministic schedules (``crash_at``) serve the figure reproductions;
stochastic MTTF/MTTR background failure (``enable_background_failures``)
serves the durability benchmarks; :class:`repro.sim.chaos.ChaosSchedule`
composes all of them into seeded randomized scenarios.

**Manual intervention vs. background schedules.**  Background failures are
pre-scheduled at enable time (keeping runs deterministic for a given seed),
which historically meant a node manually restored mid-schedule -- e.g. via
``restore_az`` after a staged outage -- could be immediately re-crashed or
resurrected by a stale pre-scheduled event.  Every node now carries a
*failure generation*; manual crash/restore operations bump it, and each
background event captures the generation current when it was scheduled and
becomes a no-op if the node's generation has moved on.  Call
``enable_background_failures`` again to resume background noise for a
manually-touched node.

**Silent corruption.**  Beyond fail-stop faults, the injector models the
faults checksums and scrubbing exist for (DESIGN.md §12): disk bit-rot on a
stored block version or hot-log record, a torn write surfacing when a node
restarts after a crash, a write that was acknowledged but never retained
(``lost_write``), and a misdirected write applied under the wrong block id
-- self-consistent (valid checksum), so only a cross-peer content vote can
catch it.  Storage nodes are registered via :meth:`attach_storage`; every
injected corruption is tracked in an :class:`IntegrityLog`, which doubles
as the node-side integrity probe and turns "a corrupt image was served" or
"a corruption outlived its repair budget" into auditor violations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.records import record_digest
from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.network import Network

#: Corruption kinds that damage (or remove) a materialized block version.
VERSION_CORRUPTION_KINDS = frozenset(
    {"bit_rot", "misdirected_write", "misdirected_write_hole", "lost_write"}
)
#: Corruption kinds that damage a stored hot-log record.
RECORD_CORRUPTION_KINDS = frozenset({"bit_rot_record", "torn_write"})


@dataclass
class CorruptionRecord:
    """One injected silent corruption, tracked from injection to repair.

    ``corrupt_digest`` is the image checksum the damaged copy would present
    if served (0 when the fault leaves nothing to serve, e.g. a lost
    write); it is what lets the log prove a served read or an adopted
    repair image was the corrupt one.
    """

    kind: str
    node: str
    block: int
    lsn: int
    injected_at: float
    corrupt_digest: int = 0
    detected_at: float | None = None
    repaired_at: float | None = None
    #: Set once ``audit_unrepaired`` has flagged this record, so a record
    #: stuck past its budget produces one violation, not one per audit.
    budget_flagged: bool = False

    @property
    def open(self) -> bool:
        return self.repaired_at is None


class IntegrityLog:
    """Registry of injected corruptions and node-side integrity probe.

    The log plays both roles of the integrity audit: the *injector* records
    every fault here at injection time, and every storage node armed via
    :meth:`repro.storage.node.StorageNode.attach_integrity_probe` reports
    detections, repairs, and served reads back.  Crossing the two streams
    yields MTTD/MTTR distributions and the three integrity invariants:

    ``integrity-corrupt-served``
        A read served a ``(node, block, version_lsn)`` for which a
        corruption is still open: a corrupt image reached a replica or
        client (the one thing read-time verification must prevent).
    ``integrity-repair-propagated-corruption``
        A repair adopted an image whose checksum matches an open
        corruption's ``corrupt_digest``: a corrupt peer won the vote.
    ``integrity-unrepaired-past-budget``
        A corruption stayed open longer than the repair budget (flagged by
        :meth:`audit_unrepaired`, which mode runners call at the end).
    """

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self.records: list[CorruptionRecord] = []
        self.auditor = None
        self.ingest_rejects = 0
        self.corrupt_reads_served = 0
        #: Open version-kind corruptions keyed by (node, block, lsn); the
        #: read-served hook runs on every read, so it must be one lookup.
        self._open_versions: dict[tuple[str, int, int], list[CorruptionRecord]] = {}
        #: Open record-kind corruptions keyed by (node, lsn).
        self._open_recs: dict[tuple[str, int], list[CorruptionRecord]] = {}

    def bind_auditor(self, auditor) -> None:
        """Route integrity violations into an :class:`repro.audit.Auditor`."""
        self.auditor = auditor

    def _flag(self, invariant: str, subject: str, detail: str) -> None:
        if self.auditor is not None:
            self.auditor.flag(invariant, subject, detail)

    # ------------------------------------------------------------------
    # Injection side
    # ------------------------------------------------------------------
    def inject(
        self, kind: str, node: str, block: int, lsn: int,
        corrupt_digest: int = 0,
    ) -> CorruptionRecord:
        record = CorruptionRecord(
            kind=kind,
            node=node,
            block=block,
            lsn=lsn,
            injected_at=self.loop.now,
            corrupt_digest=corrupt_digest,
        )
        self.records.append(record)
        if kind in RECORD_CORRUPTION_KINDS:
            self._open_recs.setdefault((node, lsn), []).append(record)
        else:
            self._open_versions.setdefault((node, block, lsn), []).append(
                record
            )
        return record

    def _close(self, record: CorruptionRecord) -> None:
        record.repaired_at = self.loop.now
        if record.detected_at is None:
            # A repair implies detection (the vote saw the divergence).
            record.detected_at = record.repaired_at
        if record.kind in RECORD_CORRUPTION_KINDS:
            key = (record.node, record.lsn)
            bucket = self._open_recs.get(key, [])
        else:
            key = (record.node, record.block, record.lsn)
            bucket = self._open_versions.get(key, [])
        if record in bucket:
            bucket.remove(record)

    # ------------------------------------------------------------------
    # Node-side probe hooks (see StorageNode.attach_integrity_probe)
    # ------------------------------------------------------------------
    def on_ingest_reject(self, node: str) -> None:
        self.ingest_rejects += 1

    def on_corruption_detected(self, node: str, block: int, lsn: int) -> None:
        for record in self._open_versions.get((node, block, lsn), ()):
            if record.detected_at is None:
                record.detected_at = self.loop.now

    def on_record_corruption_detected(self, node: str, lsn: int) -> None:
        for record in self._open_recs.get((node, lsn), ()):
            if record.detected_at is None:
                record.detected_at = self.loop.now

    def on_read_served(
        self, node: str, block: int, lsn: int, checksum: int
    ) -> None:
        for record in self._open_versions.get((node, block, lsn), ()):
            self.corrupt_reads_served += 1
            self._flag(
                "integrity-corrupt-served",
                node,
                f"read served block {block} version {lsn} while a "
                f"{record.kind} corruption injected at "
                f"t={record.injected_at:.1f} is still unrepaired",
            )

    def on_version_repaired(
        self, node: str, block: int, lsn: int, new_digest: int
    ) -> None:
        for record in self.records:
            if (
                record.open
                and record.block == block
                and record.lsn == lsn
                and record.corrupt_digest
                and record.corrupt_digest == new_digest
            ):
                self._flag(
                    "integrity-repair-propagated-corruption",
                    node,
                    f"repair of block {block} version {lsn} adopted the "
                    f"corrupt image of an open {record.kind} corruption "
                    f"on {record.node}",
                )
        for record in list(self._open_versions.get((node, block, lsn), ())):
            self._close(record)

    def on_version_removed(self, node: str, block: int, lsn: int) -> None:
        for record in list(self._open_versions.get((node, block, lsn), ())):
            self._close(record)

    def on_record_repaired(self, node: str, lsn: int) -> None:
        for record in list(self._open_recs.get((node, lsn), ())):
            self._close(record)

    # ------------------------------------------------------------------
    # Reconciliation against physical state
    # ------------------------------------------------------------------
    def reconcile(self, nodes: dict) -> int:
        """Close open corruption whose damage has physically left the
        system through a path the repair hooks do not observe: garbage
        collection dropping a corrupt record or version, recovery
        truncation, snapshot restore / hydration wiping segment state, or
        a floor advance shadowing a version hole forever.

        ``nodes`` maps node name to storage node (the injector's
        :meth:`FailureInjector.attach_storage` registry).  Returns the
        number of records closed.  Run periodically (see
        :meth:`start_reconcile`) so close timestamps stay accurate.
        """
        closed = 0
        for record in self.records:
            if not record.open:
                continue
            node = nodes.get(record.node)
            if node is None:
                continue
            seg = node.segment
            if record.kind in RECORD_CORRUPTION_KINDS:
                if record.lsn not in seg.hot_log:
                    # GC, truncation, or a restore dropped the corrupt
                    # bytes; nothing is left to detect or serve.
                    self._close(record)
                    closed += 1
                continue
            chain = seg.blocks.get(record.block)
            version = None
            if chain is not None:
                at = chain.version_at(record.lsn)
                if at is not None and at.lsn == record.lsn:
                    version = at
            if record.kind in ("lost_write", "misdirected_write_hole"):
                # Absence IS the damage: closed when the version came
                # back, when condensation rebuilt the history below it,
                # or when a later version at or below the GC floor
                # shadows the hole from every reachable read point.
                if version is not None:
                    self._close(record)
                    closed += 1
                    continue
                if record.lsn <= max(seg.granular_floor, seg.gc_horizon):
                    self._close(record)
                    closed += 1
                    continue
                floor = seg.gc_floor
                if chain is not None and any(
                    record.lsn < v.lsn <= floor
                    for v in chain._versions  # noqa: SLF001 - audit path
                ):
                    self._close(record)
                    closed += 1
                continue
            # Presence-is-damage kinds (bit rot, misdirected artifact).
            if version is None:
                self._close(record)
                closed += 1
            elif (
                record.corrupt_digest
                and version.checksum != record.corrupt_digest
            ):
                # The content changed under the corruption (an unhooked
                # repair path, e.g. hydration); the damage is gone.
                self._close(record)
                closed += 1
        return closed

    def start_reconcile(self, nodes: dict, interval_ms: float = 250.0) -> None:
        """Schedule :meth:`reconcile` forever at ``interval_ms``."""

        def tick() -> None:
            self.reconcile(nodes)
            self.loop.schedule(interval_ms, tick)

        self.loop.schedule(interval_ms, tick)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def open_count(self) -> int:
        return sum(1 for r in self.records if r.open)

    def open_records(self) -> list[CorruptionRecord]:
        return [r for r in self.records if r.open]

    def audit_unrepaired(
        self, budget_ms: float, now: float | None = None
    ) -> list[CorruptionRecord]:
        """Flag every corruption open longer than ``budget_ms``; returns
        the newly-flagged records."""
        at = self.loop.now if now is None else now
        flagged: list[CorruptionRecord] = []
        for record in self.records:
            if not record.open or record.budget_flagged:
                continue
            if at - record.injected_at > budget_ms:
                record.budget_flagged = True
                flagged.append(record)
                self._flag(
                    "integrity-unrepaired-past-budget",
                    record.node,
                    f"{record.kind} on block {record.block} lsn "
                    f"{record.lsn} open for "
                    f"{at - record.injected_at:.0f}ms "
                    f"(budget {budget_ms:.0f}ms)",
                )
        return flagged

    def mttd_samples(self) -> list[float]:
        return [
            r.detected_at - r.injected_at
            for r in self.records
            if r.detected_at is not None
        ]

    def mttr_samples(self) -> list[float]:
        return [
            r.repaired_at - r.detected_at
            for r in self.records
            if r.repaired_at is not None and r.detected_at is not None
        ]

    def exposure_samples(self) -> list[float]:
        """Injection-to-repair windows: how long redundancy was degraded."""
        return [
            r.repaired_at - r.injected_at
            for r in self.records
            if r.repaired_at is not None
        ]

    def by_kind(self) -> dict[str, tuple[int, int, int]]:
        """``kind -> (injected, detected, repaired)`` counts."""
        out: dict[str, tuple[int, int, int]] = {}
        for r in self.records:
            injected, detected, repaired = out.get(r.kind, (0, 0, 0))
            out[r.kind] = (
                injected + 1,
                detected + (r.detected_at is not None),
                repaired + (r.repaired_at is not None),
            )
        return out


class FailureInjector:
    """Schedules failures and repairs against a :class:`Network`."""

    def __init__(
        self, loop: EventLoop, network: Network, rng: random.Random
    ) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        self.log: list[tuple[float, str, str]] = []
        self._az_members: dict[str, set[str]] = {}
        #: Per-node failure generation; bumped by every *manual* crash or
        #: restore so stale pre-scheduled background events cancel.
        self._generations: dict[str, int] = {}
        #: Permanently decommissioned nodes: every restore (manual,
        #: AZ-wide, or background) is a no-op for them.
        self._condemned: set[str] = set()
        #: Storage nodes registered for silent-corruption injection.
        self._storage_nodes: dict[str, object] = {}
        #: Every injected corruption, from injection through repair; also
        #: the integrity probe the registered storage nodes report to.
        self.integrity = IntegrityLog(loop)

    def register_az(self, az: str, nodes: set[str]) -> None:
        """Declare which nodes belong to an AZ (for whole-AZ events)."""
        self._az_members.setdefault(az, set()).update(nodes)

    def az_nodes(self, az: str) -> set[str]:
        if az not in self._az_members:
            raise ConfigurationError(f"unknown AZ {az!r}")
        return set(self._az_members[az])

    def attach_storage(self, nodes) -> None:
        """Register storage nodes as silent-corruption targets and arm
        their integrity probes, so every detection / repair / served read
        reports back to :attr:`integrity`."""
        for node in nodes:
            self._storage_nodes[node.name] = node
            node.attach_integrity_probe(self.integrity)

    def _storage_node(self, name: str):
        if name not in self._storage_nodes:
            raise ConfigurationError(
                f"{name!r} is not an attached storage node "
                f"(call attach_storage first)"
            )
        return self._storage_nodes[name]

    def start_integrity_reconcile(self, interval_ms: float = 250.0) -> None:
        """Periodically close integrity-log entries whose damage left the
        system through untracked paths (GC, truncation, restore); see
        :meth:`IntegrityLog.reconcile`.  The registry dict is shared, so
        nodes attached later are swept too."""
        self.integrity.start_reconcile(self._storage_nodes, interval_ms)

    def generation_of(self, name: str) -> int:
        return self._generations.get(name, 0)

    def _bump(self, name: str) -> None:
        self._generations[name] = self._generations.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Immediate operations
    # ------------------------------------------------------------------
    def crash_node(self, name: str) -> None:
        self._bump(name)
        self.log.append((self.loop.now, "crash", name))
        self.network.fail_node(name)

    def restore_node(self, name: str) -> None:
        if name in self._condemned:
            return
        self._bump(name)
        self.log.append((self.loop.now, "restore", name))
        self.network.restore_node(name)

    def condemn_node(self, name: str) -> None:
        """Permanently decommission ``name``: crash it now and make every
        future restore -- manual, AZ-wide, or background -- a no-op.

        A plain :meth:`crash_node` only cancels *pre-scheduled background*
        restores (via the generation bump); a chaos schedule's
        ``restore_az`` or ``restore_node`` event landing later would still
        resurrect the node.  Condemnation models an unrecoverable host
        loss: the AZ can come back without that disk coming back with it.
        """
        self._condemned.add(name)
        self.log.append((self.loop.now, "condemn", name))
        self.crash_node(name)

    def crash_az(self, az: str) -> None:
        self.log.append((self.loop.now, "crash_az", az))
        for node in self.az_nodes(az):
            self._bump(node)
            self.network.fail_node(node)

    def restore_az(self, az: str) -> None:
        self.log.append((self.loop.now, "restore_az", az))
        for node in self.az_nodes(az):
            if node in self._condemned:
                continue
            self._bump(node)
            self.network.restore_node(node)

    def slow_node(self, name: str, factor: float) -> None:
        """Degrade a node: all its traffic is ``factor`` times slower."""
        self.log.append((self.loop.now, f"slow_x{factor}", name))
        self.network.set_latency_scale(name, factor)

    def unslow_node(self, name: str) -> None:
        self.log.append((self.loop.now, "unslow", name))
        self.network.set_latency_scale(name, 1.0)

    def partition_node(self, name: str, others: set[str]) -> None:
        """Isolate ``name`` from ``others`` (both directions drop)."""
        self.log.append((self.loop.now, "partition", name))
        self.network.partition({name}, set(others))

    def heal_node_partition(self, name: str, others: set[str]) -> None:
        self.log.append((self.loop.now, "heal_partition", name))
        self.network.heal_partition({name}, set(others))

    def quarantine_node(self, name: str, allow: set[str] = frozenset()) -> None:
        """Drop all traffic to/from ``name`` except ``allow`` -- unlike
        :meth:`partition_node`, this also covers peers created after the
        quarantine is installed."""
        self.log.append((self.loop.now, "quarantine", name))
        self.network.quarantine(name, allow)

    def lift_quarantine(self, name: str) -> None:
        self.log.append((self.loop.now, "lift_quarantine", name))
        self.network.lift_quarantine(name)

    # ------------------------------------------------------------------
    # Scheduled operations
    # ------------------------------------------------------------------
    def crash_at(
        self, time: float, name: str, duration: float | None = None
    ) -> None:
        """Crash ``name`` at ``time``; restore after ``duration`` if given."""
        self.loop.schedule_at(time, self.crash_node, name)
        if duration is not None:
            self.loop.schedule_at(time + duration, self.restore_node, name)

    def crash_az_at(
        self, time: float, az: str, duration: float | None = None
    ) -> None:
        self.loop.schedule_at(time, self.crash_az, az)
        if duration is not None:
            self.loop.schedule_at(time + duration, self.restore_az, az)

    def slow_at(
        self, time: float, name: str, factor: float, duration: float | None = None
    ) -> None:
        self.loop.schedule_at(time, self.slow_node, name, factor)
        if duration is not None:
            self.loop.schedule_at(time + duration, self.unslow_node, name)

    def partition_at(
        self,
        time: float,
        name: str,
        others: set[str],
        duration: float | None = None,
    ) -> None:
        self.loop.schedule_at(time, self.partition_node, name, set(others))
        if duration is not None:
            self.loop.schedule_at(
                time + duration, self.heal_node_partition, name, set(others)
            )

    # ------------------------------------------------------------------
    # Silent corruption (DESIGN.md §12)
    # ------------------------------------------------------------------
    def bit_rot(self, name: str) -> CorruptionRecord | None:
        """Rot one stored artifact on ``name``: 50/50 a materialized block
        version (image mutated *under* its recorded checksum) or a hot-log
        record (content diverges from its ingest digest).  Falls through
        to the other flavour when the first has no eligible target."""
        node = self._storage_node(name)
        if self.rng.random() < 0.5:
            return self._rot_version(node) or self._rot_record(node)
        return self._rot_record(node) or self._rot_version(node)

    def _rot_version(self, node) -> CorruptionRecord | None:
        from repro.storage.page import image_checksum

        seg = node.segment
        lo = max(seg.granular_floor, seg.gc_floor)
        victims = [
            (block, version.lsn)
            for block, chain in sorted(seg.blocks.items())
            for version in chain.versions
            if version.lsn > lo and not version.quarantined
        ]
        if not victims:
            return None
        block, lsn = self.rng.choice(victims)
        chain = seg.blocks[block]
        chain.corrupt_version(lsn)
        damaged = next(v for v in chain.versions if v.lsn == lsn)
        self.log.append((self.loop.now, "bit_rot_version", node.name))
        return self.integrity.inject(
            "bit_rot", node.name, block, lsn,
            corrupt_digest=image_checksum(damaged.image),
        )

    def _record_rot_targets(self, node) -> list[int]:
        # Above the GC floor as well as the local horizon: a record below
        # the PGMRPL floor may already be gone from every peer's hot log
        # (they GC eagerly; this copy may lag), which would make the
        # injected rot unrepairable by design rather than by failure --
        # and no instance will ever read below the floor anyway.
        seg = node.segment
        open_recs = self.integrity._open_recs
        floor = max(seg.gc_horizon, seg.gc_floor)
        return [
            lsn
            for lsn in sorted(seg.hot_log)
            if lsn > floor
            and lsn not in seg.corrupt_record_lsns
            and not open_recs.get((node.name, lsn))
        ]

    def _rot_record(self, node) -> CorruptionRecord | None:
        eligible = self._record_rot_targets(node)
        if not eligible:
            return None
        lsn = self.rng.choice(eligible)
        mangled = node.segment.corrupt_record(lsn)
        self.log.append((self.loop.now, "bit_rot_record", node.name))
        return self.integrity.inject(
            "bit_rot_record", node.name, mangled.block, lsn,
            corrupt_digest=record_digest(mangled),
        )

    def torn_write(
        self, name: str, duration: float = 150.0
    ) -> CorruptionRecord | None:
        """Crash ``name`` now; its newest hot-log record surfaces *torn*
        (content no longer matching the ingest digest) when the node
        restarts ``duration`` ms later.  No-op if the node is already
        down or holds no eligible record."""
        node = self._storage_node(name)
        if not self.network.is_up(name):
            return None
        eligible = self._record_rot_targets(node)
        if not eligible:
            return None
        lsn = eligible[-1]
        mangled = node.segment.corrupt_record(lsn, payload=("__torn__", lsn))
        self.log.append((self.loop.now, "torn_write", name))
        corruption = self.integrity.inject(
            "torn_write", name, mangled.block, lsn,
            corrupt_digest=record_digest(mangled),
        )
        self.crash_node(name)
        self.loop.schedule_at(
            self.loop.now + duration, self.restore_node, name
        )
        return corruption

    def lost_write(self, name: str) -> CorruptionRecord | None:
        """Drop an acknowledged write from ``name``: hot-log record and
        materialized version vanish while the SCL still covers the LSN.
        Restricted to blocks with a *later* retained version, so the hole
        sits mid-chain where the vote's structural comparison finds it."""
        node = self._storage_node(name)
        seg = node.segment
        lo = max(seg.granular_floor, seg.gc_floor, seg.gc_horizon)
        eligible = []
        for lsn in sorted(seg.hot_log):
            if lsn <= lo:
                continue
            chain = seg.blocks.get(seg.hot_log[lsn].block)
            if chain is not None and chain.latest_lsn > lsn:
                eligible.append(lsn)
        if not eligible:
            return None
        lsn = self.rng.choice(eligible)
        record = seg.lose_record(lsn)
        self.log.append((self.loop.now, "lost_write", name))
        return self.integrity.inject("lost_write", name, record.block, lsn)

    def misdirected_write(self, name: str) -> CorruptionRecord | None:
        """Apply a write under the wrong block id: block A's version at
        LSN L disappears and re-surfaces mid-chain in block B with a
        freshly computed -- *valid* -- checksum.  Both halves pass local
        verification; only the quorum vote's cross-peer structural
        comparison catches them."""
        node = self._storage_node(name)
        seg = node.segment
        lo = max(seg.granular_floor, seg.gc_floor)
        sources = [
            (block, version.lsn)
            for block, chain in sorted(seg.blocks.items())
            for version in chain.versions
            if lo < version.lsn < chain.latest_lsn
            and not version.quarantined
        ]
        self.rng.shuffle(sources)
        for block_a, lsn in sources[:8]:
            targets = [
                block
                for block, chain in sorted(seg.blocks.items())
                if block != block_a
                and chain.latest_lsn > lsn
                and all(v.lsn != lsn for v in chain.versions)
            ]
            if not targets:
                continue
            block_b = self.rng.choice(targets)
            chain_a = seg.blocks[block_a]
            version = next(v for v in chain_a.versions if v.lsn == lsn)
            bogus = seg.blocks[block_b].insert(lsn, dict(version.image))
            chain_a.remove_version(lsn)
            self.log.append((self.loop.now, "misdirected_write", name))
            injected = self.integrity.inject(
                "misdirected_write", name, block_b, lsn,
                corrupt_digest=bogus.checksum,
            )
            self.integrity.inject(
                "misdirected_write_hole", name, block_a, lsn
            )
            return injected
        return None

    # Scheduled and fire-time-random variants (the chaos schedule resolves
    # its victim when the event fires, like KILL_WRITER does).
    def bit_rot_at(self, time: float, name: str) -> None:
        self.loop.schedule_at(time, self.bit_rot, name)

    def torn_write_at(
        self, time: float, name: str, duration: float = 150.0
    ) -> None:
        self.loop.schedule_at(time, self.torn_write, name, duration)

    def lost_write_at(self, time: float, name: str) -> None:
        self.loop.schedule_at(time, self.lost_write, name)

    def misdirected_write_at(self, time: float, name: str) -> None:
        self.loop.schedule_at(time, self.misdirected_write, name)

    def _shuffled_storage(self) -> list[str]:
        names = sorted(self._storage_nodes)
        self.rng.shuffle(names)
        return names

    def bit_rot_any(self) -> CorruptionRecord | None:
        """Bit-rot a random attached storage node (first eligible one)."""
        for name in self._shuffled_storage():
            record = self.bit_rot(name)
            if record is not None:
                return record
        return None

    def torn_write_any(
        self, duration: float = 150.0
    ) -> CorruptionRecord | None:
        for name in self._shuffled_storage():
            record = self.torn_write(name, duration)
            if record is not None:
                return record
        return None

    def lost_write_any(self) -> CorruptionRecord | None:
        for name in self._shuffled_storage():
            record = self.lost_write(name)
            if record is not None:
                return record
        return None

    def misdirected_write_any(self) -> CorruptionRecord | None:
        for name in self._shuffled_storage():
            record = self.misdirected_write(name)
            if record is not None:
                return record
        return None

    # ------------------------------------------------------------------
    # Background stochastic failures
    # ------------------------------------------------------------------
    def enable_background_failures(
        self,
        nodes: list[str],
        mttf_ms: float,
        mttr_ms: float,
        horizon_ms: float,
    ) -> None:
        """Schedule an independent crash/repair renewal process per node.

        Each node alternates exponentially-distributed up intervals (mean
        ``mttf_ms``) and down intervals (mean ``mttr_ms``), pre-scheduled out
        to ``horizon_ms``.  Pre-scheduling keeps runs deterministic for a
        given seed regardless of what the protocols under test do.

        The whole pre-scheduled sequence for a node is tied to that node's
        current failure generation: a manual ``crash_node`` / ``restore_node``
        / ``crash_az`` / ``restore_az`` touching the node invalidates its
        remaining background events (see module docstring).
        """
        if mttf_ms <= 0 or mttr_ms <= 0:
            raise ConfigurationError("mttf_ms and mttr_ms must be > 0")
        for node in nodes:
            generation = self.generation_of(node)
            t = self.loop.now + self.rng.expovariate(1.0 / mttf_ms)
            while t < horizon_ms:
                down_for = self.rng.expovariate(1.0 / mttr_ms)
                self.loop.schedule_at(
                    t, self._background_crash, node, generation
                )
                restore_at = t + down_for
                if restore_at < horizon_ms:
                    self.loop.schedule_at(
                        restore_at, self._background_restore, node, generation
                    )
                t = restore_at + self.rng.expovariate(1.0 / mttf_ms)

    def _background_crash(self, name: str, generation: int) -> None:
        if self.generation_of(name) != generation:
            return  # stale: the node was manually touched since scheduling
        self.log.append((self.loop.now, "crash", name))
        self.network.fail_node(name)

    def _background_restore(self, name: str, generation: int) -> None:
        if name in self._condemned:
            return
        if self.generation_of(name) != generation:
            return  # stale: the node was manually touched since scheduling
        self.log.append((self.loop.now, "restore", name))
        self.network.restore_node(name)
