"""Deterministic discrete-event simulation kernel.

This package is the substitute for the paper's physical testbed (EC2
instances and a purpose-built storage fleet spread across three Availability
Zones).  It provides:

- :mod:`repro.sim.events` -- the event loop: a time-ordered heap of callbacks
  with deterministic FIFO tie-breaking, plus :class:`~repro.sim.events.Future`
  for completion signalling.
- :mod:`repro.sim.process` -- generator-based cooperative processes that can
  ``yield`` delays, futures, or other processes, in the style of SimPy.
- :mod:`repro.sim.latency` -- parametric latency distributions used to model
  network and disk service times.
- :mod:`repro.sim.network` -- a message-passing network between named actors
  with per-link latency, partitions, and node up/down state.
- :mod:`repro.sim.failures` -- failure injection (node crashes, whole-AZ
  outages, slow nodes) driven by schedules or probabilistic models.

All randomness flows from a single seeded :class:`random.Random` so that any
simulation is exactly reproducible from its seed.
"""

from repro.sim.events import Event, EventLoop, Future
from repro.sim.failures import FailureInjector
from repro.sim.latency import (
    CompositeLatency,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.network import Actor, Message, Network
from repro.sim.process import Process, sleep

__all__ = [
    "Actor",
    "CompositeLatency",
    "Event",
    "EventLoop",
    "ExponentialLatency",
    "FailureInjector",
    "FixedLatency",
    "Future",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "Network",
    "Process",
    "UniformLatency",
    "sleep",
]
