"""Generator-based cooperative processes for the simulator.

A process is a Python generator driven by the event loop.  The generator may
yield:

- a ``float`` or ``int`` -- sleep for that many simulated milliseconds;
- a :class:`~repro.sim.events.Future` -- suspend until it resolves; the
  ``yield`` expression evaluates to the future's result (or re-raises its
  exception inside the generator);
- another :class:`Process` -- suspend until the child process finishes; the
  ``yield`` evaluates to the child's return value.

Example::

    def writer(loop, storage):
        ack = storage.write(b"record")     # returns a Future
        result = yield ack                 # wait for the quorum ack
        yield 1.5                          # think time
        return result

    proc = Process(loop, writer(loop, storage))
    loop.run()
    assert proc.finished

This style keeps multi-step protocol flows (2PC rounds, recovery scans,
hedged reads) readable as straight-line code while remaining fully
deterministic.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.events import EventLoop, Future


class Process:
    """Drives a generator to completion on an event loop."""

    def __init__(self, loop: EventLoop, generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; got "
                f"{type(generator).__name__} (did you forget to call the "
                "generator function?)"
            )
        self._loop = loop
        self._generator = generator
        self._completion = Future(loop)
        loop.call_soon(self._advance, None, None)

    @property
    def completion(self) -> Future:
        """Future resolved with the generator's return value."""
        return self._completion

    @property
    def finished(self) -> bool:
        return self._completion.done

    def result(self) -> Any:
        """Return value of the finished process (raises if still running)."""
        return self._completion.result()

    def _advance(self, value: Any, exception: BaseException | None) -> None:
        if self._completion.done:
            return
        try:
            if exception is not None:
                yielded = self._generator.throw(exception)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self._completion.set_result(stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - propagate via future
            self._completion.set_exception(exc)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            self._loop.schedule(float(yielded), self._advance, None, None)
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future)
        elif isinstance(yielded, Process):
            yielded.completion.add_done_callback(self._on_future)
        else:
            self._advance(
                None,
                SimulationError(
                    f"process yielded unsupported value: {yielded!r}"
                ),
            )

    def _on_future(self, future: Future) -> None:
        exc = future.exception()
        if exc is not None:
            self._advance(None, exc)
        else:
            self._advance(future.result(), None)


def sleep(loop: EventLoop, delay: float) -> Future:
    """Return a future that resolves after ``delay`` ms (for non-process code)."""
    future = Future(loop)
    loop.schedule(delay, future.set_result, None)
    return future


class Mutex:
    """A FIFO asynchronous mutex for cooperative processes.

    Plays the role of the paper's block latches on the writer: operations
    that build an MTR hold the mutex across their storage fetches so no two
    mini-transactions interleave their structural reads and writes.

    Usage inside a process generator::

        yield mutex.acquire()
        try:
            ...
        finally:
            mutex.release()
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._locked = False
        self._waiters: list[Future] = []

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Future:
        future = Future(self._loop)
        if not self._locked:
            self._locked = True
            future.set_result(None)
        else:
            self._waiters.append(future)
        return future

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("mutex released while not held")
        if self._waiters:
            # Hand the lock to the oldest waiter, but resolve its future
            # on the next loop iteration: resolving synchronously runs
            # the waiter's whole critical section on this call stack, and
            # a long convoy (every waiter releasing into the next) then
            # recurses once per waiter until the stack overflows.
            waiter = self._waiters.pop(0)
            self._loop.call_soon(waiter.set_result, None)
        else:
            self._locked = False
