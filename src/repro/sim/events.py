"""Event loop and futures for the discrete-event simulator.

The loop is a classic calendar queue in struct-of-arrays form: the heap
holds bare ``(time, seq)`` tuples -- compared at C speed, no Python
``__lt__`` dispatch per sift -- and a flat side table maps ``seq`` to the
``(callback, args)`` pair.  ``seq`` is a monotonically increasing
tie-breaker so that two events scheduled for the same instant fire in the
order they were scheduled, which keeps simulations deterministic regardless
of heap internals.  Cancellation deletes the side-table entry (O(1), and
the callback's references drop immediately); the heap tuple is swept
lazily on pop or by compaction.

Times are floats in arbitrary units; this library uses **milliseconds**
throughout by convention (network RTTs of a fraction of a millisecond to a
few milliseconds match the paper's intra-AZ / cross-AZ setting).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from repro.errors import SimulationError


class Event:
    """Handle to a scheduled callback.  Cancellable until it has fired.

    A thin view over the loop's flat tables: the callback itself lives in
    the loop, keyed by ``seq``, so the hot scheduling path never builds a
    Python object per event -- handles exist only for callers that keep one
    (timers they may cancel).
    """

    __slots__ = ("time", "seq", "_loop")

    def __init__(self, time: float, seq: int, loop: "EventLoop") -> None:
        self.time = time
        self.seq = seq
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives.

        A no-op once the event has fired or was already cancelled (either
        way its entry is gone from the loop's table).
        """
        self._loop._cancel(self.seq)

    @property
    def cancelled(self) -> bool:
        return self.seq not in self._loop._entries

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class EventLoop:
    """Deterministic discrete-event scheduler.

    Example::

        loop = EventLoop()
        loop.schedule(5.0, print, "five ms elapsed")
        loop.run()
        assert loop.now == 5.0
    """

    # Lazy-deletion compaction: cancelled events leave a stale (time, seq)
    # tuple in the heap until popped, which leaks memory on long soaks that
    # arm and re-arm timers.  When the stale fraction passes ~50% (and the
    # heap is big enough for a rebuild to pay for itself) the heap is
    # filtered against the live table and re-heapified.
    COMPACT_MIN_HEAP = 256

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: Bare (time, seq) tuples -- native comparisons in the heap.
        self._heap: list[tuple[float, int]] = []
        #: seq -> (callback, args); membership defines "live".
        self._entries: dict[int, tuple[Callable[..., None], tuple]] = {}
        self._stale = 0
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time (milliseconds)."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._entries[seq] = (callback, args)
        heapq.heappush(self._heap, (time, seq))
        return Event(time, seq, self)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` at the current time (after pending events).

        Fast path: skips the delay/past-time validation of
        :meth:`schedule_at` -- ``now`` is never before ``now``.
        """
        seq = self._seq
        self._seq = seq + 1
        self._entries[seq] = (callback, args)
        heapq.heappush(self._heap, (self._now, seq))
        return Event(self._now, seq, self)

    def _cancel(self, seq: int) -> None:
        if self._entries.pop(seq, None) is not None:
            self._stale += 1
            self._maybe_compact()

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        heap = self._heap
        entries = self._entries
        pop = heapq.heappop
        while heap:
            time, seq = pop(heap)
            entry = entries.pop(seq, None)
            if entry is None:
                self._stale -= 1
                continue
            self._now = time
            self.events_executed += 1
            callback, args = entry
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Run events until the heap drains or ``until`` is reached.

        ``max_events`` is a runaway-loop backstop; exceeding it raises
        :class:`SimulationError` rather than hanging the host.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events); "
                    "likely a scheduling loop"
                )
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self) -> None:
        """Drain every pending event regardless of time."""
        self.run(until=None)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._entries)

    def _maybe_compact(self) -> None:
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN_HEAP and self._stale * 2 > len(heap):
            entries = self._entries
            self._heap = [item for item in heap if item[1] in entries]
            heapq.heapify(self._heap)
            self._stale = 0


class Future:
    """A one-shot container for a value that will exist later.

    Futures connect asynchronous flows (quorum acknowledgements, commit
    acks, storage reads) back to the code waiting on them.  Callbacks added
    with :meth:`add_done_callback` run inline when the future resolves;
    processes waiting via ``yield future`` are resumed through the same
    mechanism.
    """

    __slots__ = ("_loop", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._done = False
        self._value: Any = None
        self._exception: BaseException | None = None
        #: None (none yet), a bare callable (the common single-waiter
        #: case: no list allocation), or a list of callables.
        self._callbacks: Any = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def loop(self) -> EventLoop:
        return self._loop

    def result(self) -> Any:
        """Return the resolved value, re-raising a stored exception."""
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def exception(self) -> BaseException | None:
        if not self._done:
            raise SimulationError("future is not resolved yet")
        return self._exception

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._run_callbacks()

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when resolved (immediately if already done)."""
        if self._done:
            fn(self)
        elif self._callbacks is None:
            self._callbacks = fn
        elif type(self._callbacks) is list:
            self._callbacks.append(fn)
        else:
            self._callbacks = [self._callbacks, fn]

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks is None:
            return
        if type(callbacks) is list:
            for fn in callbacks:
                fn(self)
        else:
            callbacks(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._done:
            return "<Future pending>"
        if self._exception is not None:
            return f"<Future exception={self._exception!r}>"
        return f"<Future value={self._value!r}>"


def gather(loop: EventLoop, futures: Iterable[Future]) -> Future:
    """Return a future that resolves with a list of all results.

    Resolves with the first exception if any input future fails.
    """
    futures = list(futures)
    combined = Future(loop)
    if not futures:
        combined.set_result([])
        return combined
    remaining = [len(futures)]

    def _on_done(_f: Future) -> None:
        if combined.done:
            return
        if _f.exception() is not None:
            combined.set_exception(_f.exception())  # type: ignore[arg-type]
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.set_result([f.result() for f in futures])

    for f in futures:
        f.add_done_callback(_on_done)
    return combined
