"""Event loop and futures for the discrete-event simulator.

The loop is a classic calendar queue: a binary heap of ``(time, seq,
callback)`` entries.  ``seq`` is a monotonically increasing tie-breaker so
that two events scheduled for the same instant fire in the order they were
scheduled, which keeps simulations deterministic regardless of heap
internals.

Times are floats in arbitrary units; this library uses **milliseconds**
throughout by convention (network RTTs of a fraction of a millisecond to a
few milliseconds match the paper's intra-AZ / cross-AZ setting).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Cancellable until it has fired."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class EventLoop:
    """Deterministic discrete-event scheduler.

    Example::

        loop = EventLoop()
        loop.schedule(5.0, print, "five ms elapsed")
        loop.run()
        assert loop.now == 5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[Event] = []

    @property
    def now(self) -> float:
        """Current simulation time (milliseconds)."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now {self._now}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.schedule(0.0, callback, *args)

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Run events until the heap drains or ``until`` is reached.

        ``max_events`` is a runaway-loop backstop; exceeding it raises
        :class:`SimulationError` rather than hanging the host.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events); "
                    "likely a scheduling loop"
                )
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self) -> None:
        """Drain every pending event regardless of time."""
        self.run(until=None)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)


class Future:
    """A one-shot container for a value that will exist later.

    Futures connect asynchronous flows (quorum acknowledgements, commit
    acks, storage reads) back to the code waiting on them.  Callbacks added
    with :meth:`add_done_callback` run inline when the future resolves;
    processes waiting via ``yield future`` are resumed through the same
    mechanism.
    """

    __slots__ = ("_loop", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._done = False
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def loop(self) -> EventLoop:
        return self._loop

    def result(self) -> Any:
        """Return the resolved value, re-raising a stored exception."""
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def exception(self) -> BaseException | None:
        if not self._done:
            raise SimulationError("future is not resolved yet")
        return self._exception

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._run_callbacks()

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when resolved (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._done:
            return "<Future pending>"
        if self._exception is not None:
            return f"<Future exception={self._exception!r}>"
        return f"<Future value={self._value!r}>"


def gather(loop: EventLoop, futures: Iterable[Future]) -> Future:
    """Return a future that resolves with a list of all results.

    Resolves with the first exception if any input future fails.
    """
    futures = list(futures)
    combined = Future(loop)
    if not futures:
        combined.set_result([])
        return combined
    remaining = [len(futures)]

    def _on_done(_f: Future) -> None:
        if combined.done:
            return
        if _f.exception() is not None:
            combined.set_exception(_f.exception())  # type: ignore[arg-type]
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.set_result([f.result() for f in futures])

    for f in futures:
        f.add_done_callback(_on_done)
    return combined
