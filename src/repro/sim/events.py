"""Event loop and futures for the discrete-event simulator.

The loop is a classic calendar queue: a binary heap of ``(time, seq,
callback)`` entries.  ``seq`` is a monotonically increasing tie-breaker so
that two events scheduled for the same instant fire in the order they were
scheduled, which keeps simulations deterministic regardless of heap
internals.

Times are floats in arbitrary units; this library uses **milliseconds**
throughout by convention (network RTTs of a fraction of a millisecond to a
few milliseconds match the paper's intra-AZ / cross-AZ setting).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Cancellable until it has fired."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None] | None,
        args: tuple,
        loop: "EventLoop | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        # ``callback is None`` marks an event that already fired; cancelling
        # it again must not disturb the loop's live/stale accounting.
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        loop = self._loop
        if loop is not None:
            loop._live -= 1
            loop._stale += 1
            loop._maybe_compact()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class EventLoop:
    """Deterministic discrete-event scheduler.

    Example::

        loop = EventLoop()
        loop.schedule(5.0, print, "five ms elapsed")
        loop.run()
        assert loop.now == 5.0
    """

    # Lazy-deletion compaction: cancelled events stay in the heap until
    # popped, which leaks memory on long soaks that arm and re-arm timers.
    # When the stale fraction passes ~50% (and the heap is big enough for a
    # rebuild to pay for itself) the heap is filtered and re-heapified.
    COMPACT_MIN_HEAP = 256

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[Event] = []
        self._live = 0
        self._stale = 0
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time (milliseconds)."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now {self._now}"
            )
        event = Event(time, self._seq, callback, args, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` at the current time (after pending events).

        Fast path: skips the delay/past-time validation of
        :meth:`schedule_at` -- ``now`` is never before ``now``.
        """
        event = Event(self._now, self._seq, callback, args, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._stale -= 1
                continue
            self._now = event.time
            self._live -= 1
            self.events_executed += 1
            callback, args = event.callback, event.args
            # Mark fired (and drop references) so a late cancel() is a no-op.
            event.callback = None
            event.args = ()
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Run events until the heap drains or ``until`` is reached.

        ``max_events`` is a runaway-loop backstop; exceeding it raises
        :class:`SimulationError` rather than hanging the host.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events); "
                    "likely a scheduling loop"
                )
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self) -> None:
        """Drain every pending event regardless of time."""
        self.run(until=None)

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def _maybe_compact(self) -> None:
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN_HEAP and self._stale * 2 > len(heap):
            self._heap = [e for e in heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._stale = 0


class Future:
    """A one-shot container for a value that will exist later.

    Futures connect asynchronous flows (quorum acknowledgements, commit
    acks, storage reads) back to the code waiting on them.  Callbacks added
    with :meth:`add_done_callback` run inline when the future resolves;
    processes waiting via ``yield future`` are resumed through the same
    mechanism.
    """

    __slots__ = ("_loop", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._done = False
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def loop(self) -> EventLoop:
        return self._loop

    def result(self) -> Any:
        """Return the resolved value, re-raising a stored exception."""
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def exception(self) -> BaseException | None:
        if not self._done:
            raise SimulationError("future is not resolved yet")
        return self._exception

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._run_callbacks()

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when resolved (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._done:
            return "<Future pending>"
        if self._exception is not None:
            return f"<Future exception={self._exception!r}>"
        return f"<Future value={self._value!r}>"


def gather(loop: EventLoop, futures: Iterable[Future]) -> Future:
    """Return a future that resolves with a list of all results.

    Resolves with the first exception if any input future fails.
    """
    futures = list(futures)
    combined = Future(loop)
    if not futures:
        combined.set_result([])
        return combined
    remaining = [len(futures)]

    def _on_done(_f: Future) -> None:
        if combined.done:
            return
        if _f.exception() is not None:
            combined.set_exception(_f.exception())  # type: ignore[arg-type]
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.set_result([f.result() for f in futures])

    for f in futures:
        f.add_done_callback(_on_done)
    return combined
