"""Message-passing network between named actors.

The network models the paper's deployment: nodes live in Availability Zones;
links within an AZ are fast, links across AZs slower; nodes can crash and
recover; AZs can fail wholesale; arbitrary partitions can be injected.

Two communication styles are offered:

- :meth:`Network.send` -- one-way, fire-and-forget.  This is what Aurora's
  write path uses: the driver streams redo records and acknowledgements flow
  back as independent one-way messages.
- :meth:`Network.rpc` -- request/response with a :class:`Future` resolved on
  reply.  Used for reads, gossip queries, and the consensus baselines.

If either endpoint is down or the pair is partitioned at *delivery* time the
message is silently dropped, exactly as a real network loses packets during a
failure -- the protocols above must tolerate this (the paper, section 2.3:
"since any given write may be lost for any reason we need to tolerate missing
writes in the storage nodes").

Message counts per payload type are tracked in :attr:`Network.stats`; the
consensus-comparison benchmarks read them to report messages-per-commit.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import EventLoop, Future
from repro.sim.latency import (
    FixedLatency,
    LatencyModel,
    cross_az_link,
    intra_az_link,
)


@dataclass(slots=True)
class Message:
    """A delivered network message.

    ``request_id`` is non-None for RPC requests (replies carry the same id).
    Actors answer an RPC by calling :meth:`Network.reply` with the original
    message.
    """

    src: str
    dst: str
    payload: Any
    send_time: float
    deliver_time: float
    request_id: int | None = None
    is_reply: bool = False


class Actor:
    """Base class for network-attached components.

    Subclasses override :meth:`on_message`.  Attaching an actor to the
    network gives it ``self.network`` and ``self.loop`` handles.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: "Network" | None = None

    @property
    def loop(self) -> EventLoop:
        if self.network is None:
            raise SimulationError(f"actor {self.name} is not attached")
        return self.network.loop

    def on_message(self, message: Message) -> None:
        raise NotImplementedError

    def on_crash(self) -> None:
        """Hook invoked when the failure injector crashes this node."""

    def on_restart(self) -> None:
        """Hook invoked when the failure injector restores this node."""


@dataclass(slots=True)
class _NodeState:
    az: str | None
    actor: Actor | None = None
    up: bool = True
    latency_scale: float = 1.0


@dataclass
class NetworkStats:
    """Counters exposed for benchmarks and assertions.

    ``detailed`` arms per-payload-type accounting in :attr:`by_type`.  It
    defaults to on (benchmarks and tests read the breakdown); long sweeps
    that only need aggregate counts switch to the lite mode via
    :meth:`Network.set_stats_detail` and skip the per-message ``Counter``
    update on the hot path.

    Batched payloads (``WriteBatch``, ``ReplicationFrame``) are counted
    twice over: once as a wire message under the payload class name, and
    once per contained record under ``"<ClassName>.records"`` so batching
    ratios stay observable.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    by_type: Counter = field(default_factory=Counter)
    detailed: bool = True
    #: Wire-byte accounting for boxcar payloads that carry a size model
    #: (:class:`~repro.storage.messages.WriteBatch`): modelled bytes
    #: actually sent (delta-encoded LSNs, elided payloads) versus the
    #: uncompressed bytes of the same logical records.  Ratio =
    #: ``wire_bytes_sent / logical_bytes_sent`` is the on-wire compression
    #: factor benchmarks report alongside write amplification.
    wire_bytes_sent: int = 0
    logical_bytes_sent: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
        }


def payload_type_name(payload: Any) -> str:
    """Human-readable payload class name used for per-type stats."""
    return type(payload).__name__


class Network:
    """The simulated network fabric."""

    def __init__(
        self,
        loop: EventLoop,
        rng: random.Random,
        intra_az: LatencyModel | None = None,
        cross_az: LatencyModel | None = None,
        local: LatencyModel | None = None,
    ) -> None:
        self.loop = loop
        self.rng = rng
        self.intra_az = intra_az if intra_az is not None else intra_az_link()
        self.cross_az = cross_az if cross_az is not None else cross_az_link()
        self.local = local if local is not None else FixedLatency(0.01)
        # Local (self-to-self) delivery fast path: a fixed-latency local
        # link needs no rng sample, so the constant is read directly on the
        # hot path.  ``FixedLatency.sample`` ignores the rng, so this is
        # bit-identical to the slow path.
        self._local_fixed: float | None = (
            self.local.value if isinstance(self.local, FixedLatency) else None
        )
        self.stats = NetworkStats()
        self._nodes: dict[str, _NodeState] = {}
        self._link_overrides: dict[tuple[str, str], LatencyModel] = {}
        # Partitioned name-pairs, refcounted: independent injectors (a
        # chaos schedule and a planted scenario, say) may partition
        # overlapping pairs, and one healing must not un-partition the
        # other's still-active isolation.
        self._partitions: dict[frozenset[str], int] = {}
        # Quarantined names: all traffic to/from the name is dropped
        # except peers in its allowlist.  Unlike a pairwise partition, a
        # quarantine also covers nodes *added after* it is installed --
        # the hole a snapshot-of-peers partition cannot close.
        self._quarantines: dict[str, frozenset[str]] = {}
        self._next_request_id = 0
        self._pending_rpcs: dict[int, Future] = {}
        self._taps: list[Callable[[Message], None]] = []
        # WAN policies per unordered pair (see repro.sim.wan.WanLink):
        # the link decides loss and latency for every message crossing
        # the pair, from its own rng.  Empty for purely intra-region
        # simulations, so the hot path pays one falsy check.
        self._wan_links: dict[frozenset[str], Any] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(
        self, name: str, az: str | None = None, actor: Actor | None = None
    ) -> None:
        """Register a node; each name may only be added once."""
        if name in self._nodes:
            raise ConfigurationError(f"node {name!r} already registered")
        self._nodes[name] = _NodeState(az=az, actor=actor)
        if actor is not None:
            actor.network = self

    def attach(self, actor: Actor, az: str | None = None) -> None:
        """Register ``actor`` under its own name."""
        self.add_node(actor.name, az=az, actor=actor)

    def set_actor(self, name: str, actor: Actor) -> None:
        self._node(name).actor = actor
        actor.network = self

    def az_of(self, name: str) -> str | None:
        return self._node(name).az

    def nodes(self) -> list[str]:
        return list(self._nodes)

    def set_link_latency(self, a: str, b: str, model: LatencyModel) -> None:
        """Override latency for the (unordered) pair ``a``-``b``."""
        self._link_overrides[self._pair(a, b)] = model

    def set_wan_link(self, a: str, b: str, wan: Any) -> None:
        """Route the (unordered) pair ``a``-``b`` over a lossy WAN.

        ``wan`` is a :class:`repro.sim.wan.WanLink`; its :meth:`plan`
        decides per message whether the link drops it and, if not, the
        total one-way latency (RTT distribution, bandwidth queueing,
        reorder).  Partitions and quarantines still apply at delivery
        time on top of the WAN's own loss.
        """
        self._wan_links[self._pair(a, b)] = wan

    def wan_link_between(self, a: str, b: str) -> Any | None:
        return self._wan_links.get(self._pair(a, b))

    # ------------------------------------------------------------------
    # Failure state
    # ------------------------------------------------------------------
    def is_up(self, name: str) -> bool:
        return self._node(name).up

    def fail_node(self, name: str) -> None:
        node = self._node(name)
        if node.up:
            node.up = False
            if node.actor is not None:
                node.actor.on_crash()

    def restore_node(self, name: str) -> None:
        node = self._node(name)
        if not node.up:
            node.up = True
            if node.actor is not None:
                node.actor.on_restart()

    def set_latency_scale(self, name: str, factor: float) -> None:
        """Make every message to/from ``name`` slower by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        self._node(name).latency_scale = factor

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Drop all traffic between ``group_a`` and ``group_b``."""
        for a in group_a:
            for b in group_b:
                pair = self._pair(a, b)
                self._partitions[pair] = self._partitions.get(pair, 0) + 1

    def heal_partition(self, group_a: set[str], group_b: set[str]) -> None:
        for a in group_a:
            for b in group_b:
                pair = self._pair(a, b)
                count = self._partitions.get(pair, 0)
                if count > 1:
                    self._partitions[pair] = count - 1
                elif count == 1:
                    del self._partitions[pair]

    def heal_all_partitions(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return self._pair(a, b) in self._partitions

    def quarantine(self, name: str, allow: set[str] = frozenset()) -> None:
        """Drop all traffic to/from ``name`` except peers in ``allow``.

        Covers peers that do not exist yet: ``name`` is just a key, so a
        quarantine can isolate a node from members the cluster will only
        create later (candidates, recovered writers), which a pairwise
        :meth:`partition` against a snapshot of current nodes cannot.
        """
        self._quarantines[name] = frozenset(allow)

    def lift_quarantine(self, name: str) -> None:
        self._quarantines.pop(name, None)

    def is_quarantined(self, a: str, b: str) -> bool:
        if a == b:
            return False  # a node always reaches itself
        for us, peer in ((a, b), (b, a)):
            allow = self._quarantines.get(us)
            if allow is not None and peer not in allow:
                return True
        return False

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any) -> None:
        """One-way message; silently lost if the path is unavailable."""
        self._transmit(src, dst, payload, request_id=None, is_reply=False)

    def rpc(self, src: str, dst: str, payload: Any) -> Future:
        """Request/response; the future resolves with the reply payload.

        The future never resolves if the request or reply is lost -- the
        caller is responsible for hedging or retrying, which is faithful to
        the paper's design (section 3.1 handles exactly this case without
        timeouts).
        """
        request_id = self._next_request_id
        self._next_request_id += 1
        future = Future(self.loop)
        self._pending_rpcs[request_id] = future
        self._transmit(src, dst, payload, request_id=request_id, is_reply=False)
        return future

    def reply(self, request: Message, payload: Any) -> None:
        """Answer an RPC request message."""
        if request.request_id is None:
            raise SimulationError("cannot reply to a one-way message")
        self._transmit(
            request.dst,
            request.src,
            payload,
            request_id=request.request_id,
            is_reply=True,
        )

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Observe every delivered message (tracing, debugging, benches)."""
        self._taps.append(tap)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _node(self, name: str) -> _NodeState:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    @staticmethod
    def _pair(a: str, b: str) -> frozenset[str]:
        return frozenset((a, b))

    def set_stats_detail(self, detailed: bool) -> None:
        """Toggle per-payload-type accounting (lite mode when ``False``)."""
        self.stats.detailed = detailed

    def _latency_between(self, src: str, dst: str) -> float:
        if self._link_overrides:
            override = self._link_overrides.get(self._pair(src, dst))
        else:
            override = None
        if override is not None:
            base = override.sample(self.rng)
        elif src == dst:
            if self._local_fixed is not None:
                base = self._local_fixed
            else:
                base = self.local.sample(self.rng)
        else:
            src_az = self._nodes[src].az
            dst_az = self._nodes[dst].az
            if src_az is not None and src_az == dst_az:
                base = self.intra_az.sample(self.rng)
            else:
                base = self.cross_az.sample(self.rng)
        scale = (
            self._nodes[src].latency_scale * self._nodes[dst].latency_scale
        )
        return base * scale

    def _transmit(
        self,
        src: str,
        dst: str,
        payload: Any,
        request_id: int | None,
        is_reply: bool,
    ) -> None:
        nodes = self._nodes
        if src not in nodes:
            raise ConfigurationError(f"unknown node {src!r}")
        if dst not in nodes:
            raise ConfigurationError(f"unknown node {dst!r}")
        stats = self.stats
        stats.messages_sent += 1
        if stats.detailed:
            name = type(payload).__name__
            stats.by_type[name] += 1
            if getattr(payload, "is_boxcar", False):
                stats.by_type[name + ".records"] += payload.boxcar_count()
                wire = getattr(payload, "wire_bytes", 0)
                if wire:
                    stats.wire_bytes_sent += wire
                    stats.logical_bytes_sent += payload.logical_bytes
        if not nodes[src].up:
            stats.messages_dropped += 1
            return
        if self._wan_links:
            wan = self._wan_links.get(self._pair(src, dst))
        else:
            wan = None
        if wan is not None:
            verdict = wan.plan(src, payload, self.loop.now)
            if verdict is None:
                stats.messages_dropped += 1
                return
            latency = verdict
        else:
            latency = self._latency_between(src, dst)
        now = self.loop.now
        message = Message(
            src=src,
            dst=dst,
            payload=payload,
            send_time=now,
            deliver_time=now + latency,
            request_id=request_id,
            is_reply=is_reply,
        )
        self.loop.schedule_at(now + latency, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        node = self._nodes[message.dst]
        if (
            not node.up
            or self.is_partitioned(message.src, message.dst)
            or self.is_quarantined(message.src, message.dst)
        ):
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        for tap in self._taps:
            tap(message)
        if message.is_reply:
            future = self._pending_rpcs.pop(message.request_id, None)
            if future is not None and not future.done:
                future.set_result(message.payload)
            return
        if node.actor is None:
            raise SimulationError(
                f"message delivered to node {message.dst!r} with no actor"
            )
        node.actor.on_message(message)
