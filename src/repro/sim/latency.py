"""Latency distributions for network links and disk service times.

The paper's performance arguments are about *latency shape* -- tails, jitter,
peak-to-average ratios -- rather than absolute values, so the simulator needs
realistic heavy-tailed service time distributions.  Log-normal service times
are the workhorse; composite models add rare slow outliers ("a storage node
is busy") which is exactly what the hedged-read machinery of section 3.1 is
designed to mask.

All distributions sample from an injected :class:`random.Random` so the
caller controls determinism.
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError


class LatencyModel:
    """Interface: a sampleable non-negative latency distribution (ms)."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean, used by hedging heuristics and tests."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Always the same value; useful for exact-schedule unit tests."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be >= 0, got {value}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"FixedLatency({self.value})"


class UniformLatency(LatencyModel):
    """Uniform on [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError(
                f"need 0 <= low <= high, got [{low}, {high}]"
            )
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Shifted exponential: ``base + Exp(mean=tail_mean)``.

    Models a fixed propagation delay plus memoryless queueing.
    """

    def __init__(self, base: float, tail_mean: float) -> None:
        if base < 0 or tail_mean < 0:
            raise ConfigurationError("base and tail_mean must be >= 0")
        self.base = base
        self.tail_mean = tail_mean

    def sample(self, rng: random.Random) -> float:
        if self.tail_mean == 0:
            return self.base
        return self.base + rng.expovariate(1.0 / self.tail_mean)

    def mean(self) -> float:
        return self.base + self.tail_mean

    def __repr__(self) -> str:
        return f"ExponentialLatency(base={self.base}, tail_mean={self.tail_mean})"


class LogNormalLatency(LatencyModel):
    """Log-normal latency parameterised by its median and sigma.

    ``median`` is the 50th percentile in ms; ``sigma`` is the shape parameter
    of the underlying normal (0.3-0.6 resembles healthy datacenter links,
    1.0+ resembles a congested or failing path).
    """

    def __init__(self, median: float, sigma: float) -> None:
        if median <= 0 or sigma < 0:
            raise ConfigurationError(
                f"need median > 0 and sigma >= 0, got ({median}, {sigma})"
            )
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


class CompositeLatency(LatencyModel):
    """Mixture model: with probability ``slow_probability`` use ``slow``.

    Captures the bimodal behaviour of a mostly-fast storage node that is
    occasionally busy compacting, scrubbing, or backing up -- the outliers
    the paper's read hedging exists to cap.
    """

    def __init__(
        self,
        fast: LatencyModel,
        slow: LatencyModel,
        slow_probability: float,
    ) -> None:
        if not 0.0 <= slow_probability <= 1.0:
            raise ConfigurationError(
                f"slow_probability must be in [0, 1], got {slow_probability}"
            )
        self.fast = fast
        self.slow = slow
        self.slow_probability = slow_probability

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.slow_probability:
            return self.slow.sample(rng)
        return self.fast.sample(rng)

    def mean(self) -> float:
        p = self.slow_probability
        return (1.0 - p) * self.fast.mean() + p * self.slow.mean()

    def __repr__(self) -> str:
        return (
            f"CompositeLatency(fast={self.fast!r}, slow={self.slow!r}, "
            f"p_slow={self.slow_probability})"
        )


class ScaledLatency(LatencyModel):
    """Wrap another model and multiply samples by a factor.

    The failure injector uses this to make a node "slow" without replacing
    its underlying distribution.
    """

    def __init__(self, inner: LatencyModel, factor: float) -> None:
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        self.inner = inner
        self.factor = factor

    def sample(self, rng: random.Random) -> float:
        return self.inner.sample(rng) * self.factor

    def mean(self) -> float:
        return self.inner.mean() * self.factor

    def __repr__(self) -> str:
        return f"ScaledLatency({self.inner!r}, x{self.factor})"


def intra_az_link() -> LatencyModel:
    """Default model for a link between nodes in the same AZ (~0.25 ms)."""
    return LogNormalLatency(median=0.25, sigma=0.35)


def cross_az_link() -> LatencyModel:
    """Default model for a link between nodes in different AZs (~1 ms)."""
    return LogNormalLatency(median=1.0, sigma=0.40)


def disk_service() -> LatencyModel:
    """Default model for a storage-node local write (SSD-ish, ~0.1 ms)."""
    return LogNormalLatency(median=0.1, sigma=0.30)


def wan_link(median_ms: float = 35.0, sigma: float = 0.25) -> LatencyModel:
    """Default model for a one-way inter-region WAN hop (~35 ms).

    A long-haul link's latency distribution has a heavier tail than the
    intra-region links (routing changes, congestion), hence the log-normal
    with a wider body.  Loss, bandwidth, and reorder are properties of the
    *link*, not the latency sample -- see :class:`repro.sim.wan.WanLink`.
    """
    return LogNormalLatency(median=median_ms, sigma=sigma)
