"""Seeded chaos schedules: reproducible randomized failure scenarios.

A :class:`ChaosSchedule` composes the four failure granularities of
:class:`~repro.sim.failures.FailureInjector` -- node crashes, whole-AZ
outages, degraded (slow) nodes, and network partitions -- into a
deterministic event list generated from a seed.  The same seed over the
same fleet always yields the same schedule, so any invariant violation the
:class:`repro.audit.Auditor` reports is reproducible from its seed alone
(``python -m repro audit-run --seed N``).

Generation is shaped to keep the scenario *survivable* rather than fair:

- every event has a bounded duration, so quorum always eventually returns;
- at most one AZ outage is in flight at a time (the paper's fault model:
  "AZ+1" is the design point, not "AZ+AZ");
- events never overlap on the same target, keeping crash/restore pairs
  well-nested and the injector log easy to read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.failures import FailureInjector

#: Event kinds, in the order the generator attempts them.
CRASH_NODE = "crash_node"
CRASH_AZ = "crash_az"
SLOW_NODE = "slow_node"
PARTITION = "partition"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: ``kind`` applied to ``target`` at ``at`` for
    ``duration`` milliseconds (``factor`` is the slowdown for SLOW_NODE)."""

    at: float
    duration: float
    kind: str
    target: str
    factor: float = 1.0

    def __str__(self) -> str:
        extra = f" x{self.factor:g}" if self.kind == SLOW_NODE else ""
        return (
            f"t={self.at:8.1f}ms {self.kind:<10} {self.target}"
            f" for {self.duration:.0f}ms{extra}"
        )


@dataclass
class ChaosConfig:
    """Intensity knobs for schedule generation (rates are per-millisecond
    expectations scaled by the horizon)."""

    node_crash_period_ms: float = 700.0
    az_outage_period_ms: float = 2500.0
    slow_period_ms: float = 900.0
    partition_period_ms: float = 1600.0
    min_duration_ms: float = 40.0
    max_duration_ms: float = 350.0
    min_slow_factor: float = 3.0
    max_slow_factor: float = 12.0
    #: Correlated AZ failure bursts: a whole-AZ outage plus simultaneous
    #: node crashes *outside* that AZ -- the paper's scary case, where an
    #: AZ failure lands on a fleet that already has degraded quorums.
    #: 0 disables bursts (the default schedule stays unchanged).
    az_burst_period_ms: float = 0.0
    #: Nodes outside the failed AZ crashed alongside each burst.
    az_burst_fanout: int = 3


def fleet_chaos_config() -> ChaosConfig:
    """The fleet-mode profile: correlated AZ bursts on top of (slightly
    thinned) independent noise, tuned for many-PG clusters where the
    burst itself already takes down two segments of every PG."""
    return ChaosConfig(
        node_crash_period_ms=1100.0,
        az_outage_period_ms=4000.0,
        az_burst_period_ms=2200.0,
        az_burst_fanout=3,
    )


class ChaosSchedule:
    """A deterministic, seed-reproducible list of fault events."""

    def __init__(
        self, seed: int, horizon_ms: float, events: list[ChaosEvent]
    ) -> None:
        self.seed = seed
        self.horizon_ms = horizon_ms
        self.events = sorted(events, key=lambda e: (e.at, e.target))

    @classmethod
    def generate(
        cls,
        seed: int,
        nodes: list[str],
        azs: dict[str, set[str]],
        horizon_ms: float,
        config: ChaosConfig | None = None,
    ) -> "ChaosSchedule":
        """Generate a schedule over ``nodes`` grouped into ``azs``.

        Uses a private ``random.Random(seed)`` so the schedule depends on
        nothing but the seed and the fleet shape.
        """
        if horizon_ms <= 0:
            raise ConfigurationError("horizon_ms must be > 0")
        if not nodes:
            raise ConfigurationError("chaos needs at least one node")
        cfg = config if config is not None else ChaosConfig()
        rng = random.Random(seed)
        events: list[ChaosEvent] = []
        #: target -> list of (start, end) busy intervals, to keep events
        #: on the same target from overlapping.
        busy: dict[str, list[tuple[float, float]]] = {}

        def overlaps(target: str, start: float, end: float) -> bool:
            return any(
                s < end and start < e for s, e in busy.get(target, [])
            )

        def reserve(target: str, start: float, end: float) -> None:
            busy.setdefault(target, []).append((start, end))

        def place(count: int, pick) -> None:
            for _ in range(count):
                for _attempt in range(8):
                    event = pick()
                    if event is None:
                        continue
                    end = event.at + event.duration
                    if end >= horizon_ms:
                        continue
                    if overlaps(event.target, event.at, end):
                        continue
                    reserve(event.target, event.at, end)
                    events.append(event)
                    break

        def duration() -> float:
            return rng.uniform(cfg.min_duration_ms, cfg.max_duration_ms)

        def start_time(d: float) -> float:
            # Leave a tail of one max duration so the run can settle.
            latest = horizon_ms - d - cfg.max_duration_ms
            if latest <= 0:
                return -1.0
            return rng.uniform(0.0, latest)

        def pick_node_crash() -> ChaosEvent | None:
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, CRASH_NODE, rng.choice(nodes))

        az_names = sorted(azs)

        def pick_az_outage() -> ChaosEvent | None:
            if not az_names:
                return None
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            # Serialize AZ outages: reserve a shared pseudo-target too.
            if overlaps("__az__", at, at + d):
                return None
            event = ChaosEvent(at, d, CRASH_AZ, rng.choice(az_names))
            reserve("__az__", at, at + d)
            return event

        def pick_slow() -> ChaosEvent | None:
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            factor = rng.uniform(cfg.min_slow_factor, cfg.max_slow_factor)
            return ChaosEvent(
                at, d, SLOW_NODE, rng.choice(nodes), factor=round(factor, 1)
            )

        def pick_partition() -> ChaosEvent | None:
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, PARTITION, rng.choice(nodes))

        def place_az_burst() -> None:
            """One correlated burst: an AZ outage and ``az_burst_fanout``
            node crashes outside that AZ, all starting together.  Burst
            events are composed from the existing kinds, so ``install``
            needs no new machinery."""
            if not az_names:
                return
            d = duration()
            at = start_time(d)
            if at < 0:
                return
            if overlaps("__az__", at, at + d):
                return
            az = rng.choice(az_names)
            reserve("__az__", at, at + d)
            events.append(ChaosEvent(at, d, CRASH_AZ, az))
            outside = sorted(set(nodes) - azs.get(az, set()))
            if not outside:
                return
            victims = rng.sample(
                outside, min(cfg.az_burst_fanout, len(outside))
            )
            for victim in victims:
                vd = duration()
                if at + vd >= horizon_ms or overlaps(victim, at, at + vd):
                    continue
                reserve(victim, at, at + vd)
                events.append(ChaosEvent(at, vd, CRASH_NODE, victim))

        place(max(1, int(horizon_ms / cfg.node_crash_period_ms)),
              pick_node_crash)
        place(int(horizon_ms / cfg.az_outage_period_ms), pick_az_outage)
        place(max(1, int(horizon_ms / cfg.slow_period_ms)), pick_slow)
        place(int(horizon_ms / cfg.partition_period_ms), pick_partition)
        if cfg.az_burst_period_ms > 0:
            for _ in range(max(1, int(horizon_ms / cfg.az_burst_period_ms))):
                place_az_burst()
        return cls(seed=seed, horizon_ms=horizon_ms, events=events)

    def install(self, injector: FailureInjector) -> int:
        """Schedule every event on the injector's loop; returns the count.

        Event times are *relative*: an event at ``at`` fires ``at``
        milliseconds after install time (schedules are generated on a
        ``[0, horizon)`` timeline, independent of where the simulation
        clock happens to be).  Partition events isolate the target node
        from every *other* node the injector knows about (all registered
        AZ members).
        """
        base = injector.loop.now
        everyone: set[str] = set()
        for az in list(injector._az_members):
            everyone |= injector.az_nodes(az)
        for event in self.events:
            at = base + event.at
            if event.kind == CRASH_NODE:
                injector.crash_at(at, event.target, event.duration)
            elif event.kind == CRASH_AZ:
                injector.crash_az_at(at, event.target, event.duration)
            elif event.kind == SLOW_NODE:
                injector.slow_at(
                    at, event.target, event.factor, event.duration
                )
            elif event.kind == PARTITION:
                others = everyone - {event.target}
                if others:
                    injector.partition_at(
                        at, event.target, others, event.duration
                    )
            else:  # pragma: no cover - generator only emits known kinds
                raise ConfigurationError(f"unknown chaos kind {event.kind!r}")
        return len(self.events)

    def describe(self) -> str:
        header = (
            f"chaos schedule seed={self.seed} horizon={self.horizon_ms:.0f}ms "
            f"events={len(self.events)}"
        )
        return "\n".join([header] + [f"  {e}" for e in self.events])

    def __len__(self) -> int:
        return len(self.events)
