"""Seeded chaos schedules: reproducible randomized failure scenarios.

A :class:`ChaosSchedule` composes the four failure granularities of
:class:`~repro.sim.failures.FailureInjector` -- node crashes, whole-AZ
outages, degraded (slow) nodes, and network partitions -- into a
deterministic event list generated from a seed.  The same seed over the
same fleet always yields the same schedule, so any invariant violation the
:class:`repro.audit.Auditor` reports is reproducible from its seed alone
(``python -m repro audit-run --seed N``).

Generation is shaped to keep the scenario *survivable* rather than fair:

- every event has a bounded duration, so quorum always eventually returns;
- at most one AZ outage is in flight at a time (the paper's fault model:
  "AZ+1" is the design point, not "AZ+AZ");
- events never overlap on the same target, keeping crash/restore pairs
  well-nested and the injector log easy to read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.failures import FailureInjector

#: Event kinds, in the order the generator attempts them.
CRASH_NODE = "crash_node"
CRASH_AZ = "crash_az"
SLOW_NODE = "slow_node"
PARTITION = "partition"
#: Database-tier kinds (installed via callbacks; the schedule does not
#: know writer names, which change across failovers -- the pseudo-target
#: ``__writer__`` stands for "whoever is the writer when the event fires").
KILL_WRITER = "kill_writer"
GREY_WRITER = "grey_writer"
#: Geo-tier kinds (installed via callbacks, like the writer kinds).
#: ``REGION_LOSS`` and ``REGION_PARTITION`` are *terminal* region events:
#: a geo schedule contains exactly one of them, because after either one
#: the secondary region is promoted and the scenario changes shape.
REGION_LOSS = "region_loss"
REGION_PARTITION = "region_partition"
WAN_BROWNOUT = "wan_brownout"
STREAM_STALL = "stream_stall"
#: Silent-corruption kinds (DESIGN.md §12).  The victim node is resolved
#: at fire time from the injector's attached storage fleet (like the
#: writer kinds, the schedule does not know storage-node names).
BIT_ROT = "bit_rot"
TORN_WRITE = "torn_write"
LOST_WRITE = "lost_write"
MISDIRECTED_WRITE = "misdirected_write"

WRITER_TARGET = "__writer__"
REGION_TARGET = "__region__"
WAN_TARGET = "__wan__"
STORAGE_TARGET = "__storage__"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: ``kind`` applied to ``target`` at ``at`` for
    ``duration`` milliseconds (``factor`` is the slowdown for SLOW_NODE)."""

    at: float
    duration: float
    kind: str
    target: str
    factor: float = 1.0
    #: Loss rate for WAN_BROWNOUT events (``factor`` carries the latency
    #: multiplier); 0.0 for every other kind.
    rate: float = 0.0

    def __str__(self) -> str:
        if self.kind in (SLOW_NODE, GREY_WRITER):
            extra = f" x{self.factor:g}"
        elif self.kind == WAN_BROWNOUT:
            extra = f" loss={self.rate:g} x{self.factor:g}"
        else:
            extra = ""
        return (
            f"t={self.at:8.1f}ms {self.kind:<10} {self.target}"
            f" for {self.duration:.0f}ms{extra}"
        )


@dataclass
class ChaosConfig:
    """Intensity knobs for schedule generation (rates are per-millisecond
    expectations scaled by the horizon)."""

    node_crash_period_ms: float = 700.0
    az_outage_period_ms: float = 2500.0
    slow_period_ms: float = 900.0
    partition_period_ms: float = 1600.0
    min_duration_ms: float = 40.0
    max_duration_ms: float = 350.0
    min_slow_factor: float = 3.0
    max_slow_factor: float = 12.0
    #: Correlated AZ failure bursts: a whole-AZ outage plus simultaneous
    #: node crashes *outside* that AZ -- the paper's scary case, where an
    #: AZ failure lands on a fleet that already has degraded quorums.
    #: 0 disables bursts (the default schedule stays unchanged).
    az_burst_period_ms: float = 0.0
    #: Nodes outside the failed AZ crashed alongside each burst.
    az_burst_fanout: int = 3
    #: Database-tier chaos: kill the current writer outright (no scheduled
    #: restore -- recovery is the failover plane's job), or grey-fail it
    #: (slow, not dead: latency inflated for the duration).  0 disables
    #: either kind; disabled kinds draw nothing from the RNG, so existing
    #: seeded schedules are byte-identical.
    writer_kill_period_ms: float = 0.0
    writer_grey_period_ms: float = 0.0
    #: Geo-tier chaos.  Brownouts degrade the WAN link (loss + latency)
    #: without severing it; stream stalls freeze the geo sender outright.
    #: 0 disables either kind; like the writer kinds, disabled kinds draw
    #: nothing from the RNG so pre-geo schedules replay byte-identically.
    wan_brownout_period_ms: float = 0.0
    stream_stall_period_ms: float = 0.0
    #: Terminal region event selection.  When either weight is > 0 the
    #: schedule gets *exactly one* region event -- REGION_LOSS with
    #: probability loss/(loss+partition), else REGION_PARTITION -- placed
    #: in the middle of the horizon so steady replication precedes it and
    #: enough runway remains for detection, lease expiry, and promotion.
    region_loss_weight: float = 0.0
    region_partition_weight: float = 0.0
    #: Duration bounds for REGION_PARTITION (must comfortably exceed the
    #: geo lease so the stale primary provably self-fences mid-partition).
    min_region_partition_ms: float = 5000.0
    max_region_partition_ms: float = 9000.0
    #: Silent-corruption chaos (DESIGN.md §12).  Each kind is disabled at
    #: 0 and, like every kind added after v0, disabled kinds draw nothing
    #: from the RNG -- legacy seeded schedules replay byte-identically.
    #: ``torn_write`` events use their duration as the crash downtime
    #: before the torn record surfaces at restart.
    bit_rot_period_ms: float = 0.0
    torn_write_period_ms: float = 0.0
    lost_write_period_ms: float = 0.0
    misdirected_write_period_ms: float = 0.0


def fleet_chaos_config() -> ChaosConfig:
    """The fleet-mode profile: correlated AZ bursts on top of (slightly
    thinned) independent noise, tuned for many-PG clusters where the
    burst itself already takes down two segments of every PG."""
    return ChaosConfig(
        node_crash_period_ms=1100.0,
        az_outage_period_ms=4000.0,
        az_burst_period_ms=2200.0,
        az_burst_fanout=3,
    )


def geo_chaos_config() -> ChaosConfig:
    """The geo-audit profile: light intra-primary noise (crashes, grey
    nodes, one-node partitions), recurring WAN degradation, and exactly
    one terminal region event per schedule.  AZ outages are disabled --
    the region event is the correlated disaster under test, and stacking
    an AZ outage on top would conflate intra-region repair with
    cross-region recovery in the RPO/RTO attribution."""
    return ChaosConfig(
        node_crash_period_ms=5000.0,
        az_outage_period_ms=10.0**12,
        slow_period_ms=4000.0,
        partition_period_ms=9000.0,
        wan_brownout_period_ms=7000.0,
        stream_stall_period_ms=11000.0,
        region_loss_weight=1.0,
        region_partition_weight=1.0,
    )


def integrity_chaos_config() -> ChaosConfig:
    """The integrity-audit profile: light fail-stop noise (so corruption
    repair must work through crashes, grey nodes, and partitions, not in a
    calm fleet) plus a steady stream of all four silent-corruption kinds.
    AZ outages are disabled -- losing a third of every quorum at once is
    the durability audits' business; here it would only starve the vote of
    responders without exercising anything new."""
    return ChaosConfig(
        node_crash_period_ms=3000.0,
        az_outage_period_ms=10.0**12,
        slow_period_ms=2500.0,
        partition_period_ms=4000.0,
        bit_rot_period_ms=900.0,
        torn_write_period_ms=4000.0,
        lost_write_period_ms=2500.0,
        misdirected_write_period_ms=2800.0,
    )


class ChaosSchedule:
    """A deterministic, seed-reproducible list of fault events."""

    def __init__(
        self, seed: int, horizon_ms: float, events: list[ChaosEvent]
    ) -> None:
        self.seed = seed
        self.horizon_ms = horizon_ms
        self.events = sorted(events, key=lambda e: (e.at, e.target))

    @classmethod
    def generate(
        cls,
        seed: int,
        nodes: list[str],
        azs: dict[str, set[str]],
        horizon_ms: float,
        config: ChaosConfig | None = None,
    ) -> "ChaosSchedule":
        """Generate a schedule over ``nodes`` grouped into ``azs``.

        Uses a private ``random.Random(seed)`` so the schedule depends on
        nothing but the seed and the fleet shape.
        """
        if horizon_ms <= 0:
            raise ConfigurationError("horizon_ms must be > 0")
        if not nodes:
            raise ConfigurationError("chaos needs at least one node")
        cfg = config if config is not None else ChaosConfig()
        rng = random.Random(seed)
        events: list[ChaosEvent] = []
        #: target -> list of (start, end) busy intervals, to keep events
        #: on the same target from overlapping.
        busy: dict[str, list[tuple[float, float]]] = {}

        def overlaps(target: str, start: float, end: float) -> bool:
            return any(
                s < end and start < e for s, e in busy.get(target, [])
            )

        def reserve(target: str, start: float, end: float) -> None:
            busy.setdefault(target, []).append((start, end))

        def place(count: int, pick) -> None:
            for _ in range(count):
                for _attempt in range(8):
                    event = pick()
                    if event is None:
                        continue
                    end = event.at + event.duration
                    if end >= horizon_ms:
                        continue
                    if overlaps(event.target, event.at, end):
                        continue
                    reserve(event.target, event.at, end)
                    events.append(event)
                    break

        def duration() -> float:
            return rng.uniform(cfg.min_duration_ms, cfg.max_duration_ms)

        def start_time(d: float) -> float:
            # Leave a tail of one max duration so the run can settle.
            latest = horizon_ms - d - cfg.max_duration_ms
            if latest <= 0:
                return -1.0
            return rng.uniform(0.0, latest)

        def pick_node_crash() -> ChaosEvent | None:
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, CRASH_NODE, rng.choice(nodes))

        az_names = sorted(azs)

        def pick_az_outage() -> ChaosEvent | None:
            if not az_names:
                return None
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            # Serialize AZ outages: reserve a shared pseudo-target too.
            if overlaps("__az__", at, at + d):
                return None
            event = ChaosEvent(at, d, CRASH_AZ, rng.choice(az_names))
            reserve("__az__", at, at + d)
            return event

        def pick_slow() -> ChaosEvent | None:
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            factor = rng.uniform(cfg.min_slow_factor, cfg.max_slow_factor)
            return ChaosEvent(
                at, d, SLOW_NODE, rng.choice(nodes), factor=round(factor, 1)
            )

        def pick_partition() -> ChaosEvent | None:
            d = duration()
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, PARTITION, rng.choice(nodes))

        def place_az_burst() -> None:
            """One correlated burst: an AZ outage and ``az_burst_fanout``
            node crashes outside that AZ, all starting together.  Burst
            events are composed from the existing kinds, so ``install``
            needs no new machinery."""
            if not az_names:
                return
            d = duration()
            at = start_time(d)
            if at < 0:
                return
            if overlaps("__az__", at, at + d):
                return
            az = rng.choice(az_names)
            reserve("__az__", at, at + d)
            events.append(ChaosEvent(at, d, CRASH_AZ, az))
            outside = sorted(set(nodes) - azs.get(az, set()))
            if not outside:
                return
            victims = rng.sample(
                outside, min(cfg.az_burst_fanout, len(outside))
            )
            for victim in victims:
                vd = duration()
                if at + vd >= horizon_ms or overlaps(victim, at, at + vd):
                    continue
                reserve(victim, at, at + vd)
                events.append(ChaosEvent(at, vd, CRASH_NODE, victim))

        def pick_writer_kill() -> ChaosEvent | None:
            # The "duration" of a kill is the exclusion window reserved on
            # the writer pseudo-target, spacing successive writer events
            # far enough apart for a failover to complete in between.
            d = max(duration() * 4, cfg.max_duration_ms * 4)
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, KILL_WRITER, WRITER_TARGET)

        def pick_writer_grey() -> ChaosEvent | None:
            d = max(duration() * 2, cfg.max_duration_ms)
            at = start_time(d)
            if at < 0:
                return None
            factor = rng.uniform(cfg.min_slow_factor, cfg.max_slow_factor)
            return ChaosEvent(
                at, d, GREY_WRITER, WRITER_TARGET, factor=round(factor, 1)
            )

        place(max(1, int(horizon_ms / cfg.node_crash_period_ms)),
              pick_node_crash)
        place(int(horizon_ms / cfg.az_outage_period_ms), pick_az_outage)
        place(max(1, int(horizon_ms / cfg.slow_period_ms)), pick_slow)
        place(int(horizon_ms / cfg.partition_period_ms), pick_partition)
        if cfg.az_burst_period_ms > 0:
            for _ in range(max(1, int(horizon_ms / cfg.az_burst_period_ms))):
                place_az_burst()
        # Writer events draw last and only when enabled, so schedules
        # generated before these kinds existed replay byte-identically.
        if cfg.writer_kill_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.writer_kill_period_ms)),
                  pick_writer_kill)
        if cfg.writer_grey_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.writer_grey_period_ms)),
                  pick_writer_grey)

        # Geo kinds likewise draw last and only when enabled.
        def pick_wan_brownout() -> ChaosEvent | None:
            d = rng.uniform(500.0, 1800.0)
            at = start_time(d)
            if at < 0:
                return None
            loss = rng.uniform(0.25, 0.7)
            factor = rng.uniform(2.0, 6.0)
            return ChaosEvent(
                at, d, WAN_BROWNOUT, WAN_TARGET,
                factor=round(factor, 1), rate=round(loss, 2),
            )

        def pick_stream_stall() -> ChaosEvent | None:
            d = rng.uniform(300.0, 1200.0)
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, STREAM_STALL, WAN_TARGET)

        if cfg.wan_brownout_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.wan_brownout_period_ms)),
                  pick_wan_brownout)
        if cfg.stream_stall_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.stream_stall_period_ms)),
                  pick_stream_stall)
        region_total = cfg.region_loss_weight + cfg.region_partition_weight
        if region_total > 0:
            # Exactly one terminal region event, appended directly rather
            # than through place(): its aftermath (lease expiry, promotion,
            # post-heal fencing) deliberately runs past the horizon tail
            # guard, and nothing else shares its pseudo-target.
            at = rng.uniform(0.45, 0.7) * horizon_ms
            if rng.random() * region_total < cfg.region_loss_weight:
                events.append(
                    ChaosEvent(at, 0.0, REGION_LOSS, REGION_TARGET)
                )
            else:
                d = rng.uniform(cfg.min_region_partition_ms,
                                cfg.max_region_partition_ms)
                events.append(
                    ChaosEvent(at, d, REGION_PARTITION, REGION_TARGET)
                )

        # Silent-corruption kinds draw after everything above (including
        # the region event), and only when enabled: any schedule generated
        # before these kinds existed replays byte-identically.
        def pick_bit_rot() -> ChaosEvent | None:
            at = start_time(0.0)
            if at < 0:
                return None
            return ChaosEvent(at, 0.0, BIT_ROT, STORAGE_TARGET)

        def pick_torn_write() -> ChaosEvent | None:
            # The duration is the crash downtime before the torn record
            # surfaces at restart.
            d = rng.uniform(80.0, 250.0)
            at = start_time(d)
            if at < 0:
                return None
            return ChaosEvent(at, d, TORN_WRITE, STORAGE_TARGET)

        def pick_lost_write() -> ChaosEvent | None:
            at = start_time(0.0)
            if at < 0:
                return None
            return ChaosEvent(at, 0.0, LOST_WRITE, STORAGE_TARGET)

        def pick_misdirected_write() -> ChaosEvent | None:
            at = start_time(0.0)
            if at < 0:
                return None
            return ChaosEvent(at, 0.0, MISDIRECTED_WRITE, STORAGE_TARGET)

        if cfg.bit_rot_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.bit_rot_period_ms)),
                  pick_bit_rot)
        if cfg.torn_write_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.torn_write_period_ms)),
                  pick_torn_write)
        if cfg.lost_write_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.lost_write_period_ms)),
                  pick_lost_write)
        if cfg.misdirected_write_period_ms > 0:
            place(max(1, int(horizon_ms / cfg.misdirected_write_period_ms)),
                  pick_misdirected_write)
        return cls(seed=seed, horizon_ms=horizon_ms, events=events)

    def install(
        self,
        injector: FailureInjector,
        writer_kill=None,
        writer_grey=None,
        region_loss=None,
        region_partition=None,
        wan_brownout=None,
        stream_stall=None,
    ) -> int:
        """Schedule every event on the injector's loop; returns the count.

        Event times are *relative*: an event at ``at`` fires ``at``
        milliseconds after install time (schedules are generated on a
        ``[0, horizon)`` timeline, independent of where the simulation
        clock happens to be).  Partition events isolate the target node
        from every *other* node the injector knows about (all registered
        AZ members).

        ``KILL_WRITER`` / ``GREY_WRITER`` events resolve their target at
        fire time through the ``writer_kill()`` / ``writer_grey(factor,
        duration_ms)`` callbacks (the writer's name changes across
        failovers).  Geo events likewise fire through callbacks:
        ``region_loss()``, ``region_partition(duration_ms)``,
        ``wan_brownout(loss_rate, latency_factor, duration_ms)``, and
        ``stream_stall(duration_ms)``.  Schedules containing any of these
        kinds require the corresponding callback.

        Silent-corruption kinds (``BIT_ROT`` / ``TORN_WRITE`` /
        ``LOST_WRITE`` / ``MISDIRECTED_WRITE``) need no callback -- they
        dispatch to the injector's own ``*_any`` operations, which resolve
        a victim at fire time -- but the injector must have storage nodes
        attached (:meth:`FailureInjector.attach_storage`).
        """
        base = injector.loop.now
        everyone: set[str] = set()
        for az in list(injector._az_members):
            everyone |= injector.az_nodes(az)
        corruption_kinds = (
            BIT_ROT, TORN_WRITE, LOST_WRITE, MISDIRECTED_WRITE,
        )
        if any(
            e.kind in corruption_kinds for e in self.events
        ) and not injector._storage_nodes:
            raise ConfigurationError(
                "schedule contains silent-corruption events; call "
                "injector.attach_storage(...) before install()"
            )
        for event in self.events:
            at = base + event.at
            if event.kind == CRASH_NODE:
                injector.crash_at(at, event.target, event.duration)
            elif event.kind == CRASH_AZ:
                injector.crash_az_at(at, event.target, event.duration)
            elif event.kind == SLOW_NODE:
                injector.slow_at(
                    at, event.target, event.factor, event.duration
                )
            elif event.kind == PARTITION:
                others = everyone - {event.target}
                if others:
                    injector.partition_at(
                        at, event.target, others, event.duration
                    )
            elif event.kind == KILL_WRITER:
                if writer_kill is None:
                    raise ConfigurationError(
                        "schedule contains KILL_WRITER events; pass a "
                        "writer_kill callback to install()"
                    )
                injector.loop.schedule_at(at, writer_kill)
            elif event.kind == GREY_WRITER:
                if writer_grey is None:
                    raise ConfigurationError(
                        "schedule contains GREY_WRITER events; pass a "
                        "writer_grey callback to install()"
                    )
                injector.loop.schedule_at(
                    at,
                    lambda factor=event.factor, d=event.duration: (
                        writer_grey(factor, d)
                    ),
                )
            elif event.kind == REGION_LOSS:
                if region_loss is None:
                    raise ConfigurationError(
                        "schedule contains REGION_LOSS events; pass a "
                        "region_loss callback to install()"
                    )
                injector.loop.schedule_at(at, region_loss)
            elif event.kind == REGION_PARTITION:
                if region_partition is None:
                    raise ConfigurationError(
                        "schedule contains REGION_PARTITION events; pass "
                        "a region_partition callback to install()"
                    )
                injector.loop.schedule_at(
                    at,
                    lambda d=event.duration: region_partition(d),
                )
            elif event.kind == WAN_BROWNOUT:
                if wan_brownout is None:
                    raise ConfigurationError(
                        "schedule contains WAN_BROWNOUT events; pass a "
                        "wan_brownout callback to install()"
                    )
                injector.loop.schedule_at(
                    at,
                    lambda loss=event.rate, factor=event.factor, d=(
                        event.duration
                    ): wan_brownout(loss, factor, d),
                )
            elif event.kind == STREAM_STALL:
                if stream_stall is None:
                    raise ConfigurationError(
                        "schedule contains STREAM_STALL events; pass a "
                        "stream_stall callback to install()"
                    )
                injector.loop.schedule_at(
                    at,
                    lambda d=event.duration: stream_stall(d),
                )
            elif event.kind == BIT_ROT:
                injector.loop.schedule_at(at, injector.bit_rot_any)
            elif event.kind == TORN_WRITE:
                injector.loop.schedule_at(
                    at,
                    lambda d=event.duration: injector.torn_write_any(d),
                )
            elif event.kind == LOST_WRITE:
                injector.loop.schedule_at(at, injector.lost_write_any)
            elif event.kind == MISDIRECTED_WRITE:
                injector.loop.schedule_at(
                    at, injector.misdirected_write_any
                )
            else:  # pragma: no cover - generator only emits known kinds
                raise ConfigurationError(f"unknown chaos kind {event.kind!r}")
        return len(self.events)

    def describe(self) -> str:
        header = (
            f"chaos schedule seed={self.seed} horizon={self.horizon_ms:.0f}ms "
            f"events={len(self.events)}"
        )
        return "\n".join([header] + [f"  {e}" for e in self.events])

    def __len__(self) -> int:
        return len(self.events)
