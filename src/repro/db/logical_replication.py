"""Logical replication to non-Aurora systems (section 3.2).

"Aurora supports logical replication to communicate with non-Aurora
systems and in cases where the application does not want physical
consistency -- for example, when schemas differ."

Unlike the physical stream (redo records, applied to identical block
images), the logical stream carries **row-level changes of durably
committed transactions**, in commit order.  Subscribers apply them to any
store whatsoever; a transforming subscriber demonstrates the
schemas-differ case.

Ordering guarantee: changes are published when the commit is acknowledged
(SCN <= VCL), and commit acknowledgements fire in SCN order, so the
logical stream is totally ordered by SCN and contains only durable
transactions -- a subscriber can never observe a transaction that crash
recovery would annul.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable


class ChangeKind(enum.Enum):
    UPSERT = "upsert"
    DELETE = "delete"


@dataclass(frozen=True)
class RowChange:
    """One row-level change within a committed transaction."""

    kind: ChangeKind
    key: Hashable
    value: Any = None


@dataclass(frozen=True)
class LogicalTransaction:
    """A durably committed transaction, in commit (SCN) order."""

    txn_id: int
    scn: int
    changes: tuple[RowChange, ...]


class LogicalPublisher:
    """Writer-side logical change publisher.

    The writer records each transaction's net row changes as they execute
    and hands the bundle to every subscriber when the commit becomes
    durable.  Subscribers are plain callables (in-process) -- shipping
    them across the simulated network is a subscriber's own concern.
    """

    def __init__(self) -> None:
        self._subscribers: list[Callable[[LogicalTransaction], None]] = []
        self._staged: dict[int, dict[Hashable, RowChange]] = {}
        self.published = 0
        self.last_scn = 0

    def subscribe(
        self, subscriber: Callable[[LogicalTransaction], None]
    ) -> None:
        self._subscribers.append(subscriber)

    def unsubscribe(
        self, subscriber: Callable[[LogicalTransaction], None]
    ) -> None:
        self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # ------------------------------------------------------------------
    # Writer integration
    # ------------------------------------------------------------------
    def stage(self, txn_id: int, change: RowChange) -> None:
        """Record a row change for an in-flight transaction.

        Later changes to the same key within one transaction supersede
        earlier ones: the logical stream carries net effects.
        """
        self._staged.setdefault(txn_id, {})[change.key] = change

    def discard(self, txn_id: int) -> None:
        """The transaction rolled back (or was never logical-relevant)."""
        self._staged.pop(txn_id, None)

    def publish_commit(self, txn_id: int, scn: int) -> None:
        """The transaction is durably committed: emit its changes."""
        staged = self._staged.pop(txn_id, None)
        if not staged:
            return
        transaction = LogicalTransaction(
            txn_id=txn_id,
            scn=scn,
            changes=tuple(
                staged[key] for key in sorted(staged, key=repr)
            ),
        )
        self.published += 1
        self.last_scn = max(self.last_scn, scn)
        for subscriber in self._subscribers:
            subscriber(transaction)

    def drop_transient_state(self) -> None:
        """Crash: staged (uncommitted) changes die with the instance.

        This is safe for exactly the reason commits are: nothing is ever
        published before it is durable, so subscribers hold no state that
        recovery could contradict.
        """
        self._staged.clear()


@dataclass
class TableSubscriber:
    """The simplest non-Aurora system: a dict kept in sync."""

    table: dict = field(default_factory=dict)
    applied: list[int] = field(default_factory=list)

    def __call__(self, transaction: LogicalTransaction) -> None:
        for change in transaction.changes:
            if change.kind is ChangeKind.DELETE:
                self.table.pop(change.key, None)
            else:
                self.table[change.key] = change.value
        self.applied.append(transaction.scn)

    @property
    def in_order(self) -> bool:
        return self.applied == sorted(self.applied)


@dataclass
class TransformingSubscriber:
    """The 'schemas differ' case: project/rename on the way through."""

    transform: Callable[[Hashable, Any], tuple[Hashable, Any]] = (
        lambda key, value: (key, value)
    )
    table: dict = field(default_factory=dict)

    def __call__(self, transaction: LogicalTransaction) -> None:
        for change in transaction.changes:
            if change.kind is ChangeKind.DELETE:
                new_key, _ = self.transform(change.key, None)
                self.table.pop(new_key, None)
            else:
                new_key, new_value = self.transform(
                    change.key, change.value
                )
                self.table[new_key] = new_value
