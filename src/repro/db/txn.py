"""Transactions, undo, and the commit/rollback state machines.

Transactions live entirely at the database tier (section 2.3).  A
transaction accumulates:

- row write locks (released at commit/abort),
- an **undo log** of before-images -- per modified key, the version chain
  as it stood before this transaction's change, so rollback can restore it
  with compensating MTRs ("Undo of previously active transactions is
  required but can occur after the database has been opened"), and
- a read view (opened lazily at first read) anchoring its snapshot.

The commit flow mirrors section 2.3 exactly: the worker writes the commit
record, enqueues the transaction on the commit queue keyed by its SCN, and
moves on; the acknowledgement fires when the VCL passes the SCN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from repro.db.mvcc import ReadView, Version
from repro.errors import TransactionError


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTING = "committing"  # commit record written, awaiting durability
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class UndoRecord:
    """Before-image of one key's version chain in one block."""

    block: int
    key: Hashable
    prior_versions: tuple[Version, ...]


@dataclass
class Transaction:
    """One database transaction on the writer instance."""

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    scn: int | None = None
    read_view: ReadView | None = None
    undo_log: list[UndoRecord] = field(default_factory=list)
    written_keys: set[Hashable] = field(default_factory=set)
    begin_time: float = 0.0

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, "
                "not active"
            )

    def record_undo(
        self, block: int, key: Hashable, prior_versions: tuple[Version, ...]
    ) -> None:
        self.require_active()
        self.undo_log.append(
            UndoRecord(block=block, key=key, prior_versions=prior_versions)
        )
        self.written_keys.add(key)

    @property
    def is_read_only(self) -> bool:
        return not self.undo_log


class TransactionManager:
    """Allocates transaction ids and tracks active transactions.

    Transaction ids share nothing with the LSN space; visibility never
    compares them against LSNs (it goes through commit SCNs), so a plain
    counter is enough.  The counter is seeded above any transaction id seen
    in recovered durable state so ids never collide across crashes.
    """

    def __init__(self, first_txn_id: int = 1) -> None:
        self._next_txn_id = first_txn_id
        self._active: dict[int, Transaction] = {}
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    def begin(self, now: float = 0.0) -> Transaction:
        txn = Transaction(txn_id=self._next_txn_id, begin_time=now)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self.begun += 1
        return txn

    def get(self, txn_id: int) -> Transaction:
        try:
            return self._active[txn_id]
        except KeyError:
            raise TransactionError(
                f"transaction {txn_id} is not active"
            ) from None

    def mark_committing(self, txn: Transaction, scn: int) -> None:
        txn.require_active()
        txn.state = TxnState.COMMITTING
        txn.scn = scn

    def finish_commit(self, txn: Transaction) -> None:
        if txn.state is not TxnState.COMMITTING:
            raise TransactionError(
                f"transaction {txn.txn_id} is {txn.state.value}, "
                "not committing"
            )
        txn.state = TxnState.COMMITTED
        self._active.pop(txn.txn_id, None)
        self.committed += 1

    def finish_abort(self, txn: Transaction) -> None:
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionError(
                f"transaction {txn.txn_id} already {txn.state.value}"
            )
        txn.state = TxnState.ABORTED
        self._active.pop(txn.txn_id, None)
        self.aborted += 1

    def active_transactions(self) -> list[Transaction]:
        return list(self._active.values())

    def seed_above(self, txn_id: int) -> None:
        """Ensure future ids exceed ``txn_id`` (recovery)."""
        self._next_txn_id = max(self._next_txn_id, txn_id + 1)

    def clear(self) -> None:
        """Crash: active-transaction state is ephemeral."""
        self._active.clear()

    @property
    def active_count(self) -> int:
        return len(self._active)
