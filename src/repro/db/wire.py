"""Wire-format model for redo shipping: coalescing and compression.

BtrLog and Taurus (PAPERS.md) both make the point that the log path is
where cloud-database latency and network cost live, and that frugality on
the wire compounds with batching.  This module models two wire-level
optimizations the driver applies to a :class:`~repro.storage.messages.
WriteBatch` at flush time:

- **Same-transaction payload elision** (:func:`elide_superseded`): a DATA
  record whose entire write set is overwritten by later records of the
  *same transaction* inside the *same batch* ships with an
  :class:`~repro.core.records.ElidedPayload` -- LSN and back-chains intact,
  content elided.  Safe because B-tree row updates log the full MVCC
  version chain built on the prior image (the covering record embeds the
  superseded effect) and an uncommitted intermediate version is invisible
  at every legal read point.  Cross-transaction collapse is deliberately
  NOT attempted: a commit record can land between two transactions'
  records, making the earlier committed effect readable in between.

- **Delta-encoded LSNs** (:func:`batch_wire_bytes`): consecutive LSNs
  inside a batch cost a one-byte delta instead of a full word, mirroring
  the varint framing a real wire format would use.

Records are Python objects in this simulation, so "bytes" are a
deterministic model, not a serialization: the same records always cost the
same bytes, which is what the amplification benchmarks need.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.records import (
    NO_BLOCK,
    BlockDelete,
    BlockPut,
    BlockReplace,
    ElidedPayload,
    LogRecord,
    RecordKind,
)

#: Modelled framing overhead of one WriteBatch (header, epochs, pgmrpl).
BATCH_HEADER_BYTES = 64
#: Fixed per-record metadata (kind, flags, block, pg, txn, mtr ids).
RECORD_HEADER_BYTES = 18
#: A full (non-delta) LSN or back-chain pointer.
LSN_BYTES = 8
#: A delta-encoded LSN (consecutive within the batch).
LSN_DELTA_BYTES = 1
#: An elided payload on the wire: a marker plus the covering delta.
ELIDED_PAYLOAD_BYTES = 2

#: Coverage sentinel: a whole-block overwrite covers every key.
_ALL = object()


def value_bytes(value: object) -> int:
    """Deterministic modelled size of one payload value."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 1
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (tuple, list, frozenset, set)):
        return 8 + sum(value_bytes(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(
            value_bytes(k) + value_bytes(v) for k, v in value.items()
        )
    return 16


def payload_bytes(payload: object) -> int:
    """Modelled wire size of one record payload.

    Sizes are memoized on the (frozen, immutable) payload object: every
    flushed record is measured twice -- once for the logical total, once
    for the wire total -- and resubmitted batches would measure it again.
    """
    if isinstance(payload, ElidedPayload):
        return ELIDED_PAYLOAD_BYTES
    size = getattr(payload, "_wire_size", None)
    if size is not None:
        return size
    if isinstance(payload, BlockPut):
        size = 4 + sum(
            value_bytes(k) + value_bytes(v) for k, v in payload.entries
        )
    elif isinstance(payload, BlockDelete):
        size = 4 + sum(value_bytes(k) for k in payload.keys)
    elif isinstance(payload, BlockReplace):
        size = 4 + sum(
            value_bytes(k) + value_bytes(v) for k, v in payload.image
        )
    else:
        # Commit / control / foreign payloads: a fixed frame plus any
        # obvious attributes is close enough for a model.  Foreign types
        # may be slotted, so do not attempt to cache on them.
        return 16
    object.__setattr__(payload, "_wire_size", size)
    return size


def batch_wire_bytes(records: tuple[LogRecord, ...]) -> int:
    """Modelled bytes of a batch with delta-encoded LSNs."""
    total = BATCH_HEADER_BYTES
    prev_lsn = None
    for record in records:
        total += RECORD_HEADER_BYTES
        if prev_lsn is not None and record.lsn == prev_lsn + 1:
            total += LSN_DELTA_BYTES
        else:
            total += LSN_BYTES
        # Back-chains delta against the record's own LSN (always below it);
        # model them at delta cost when nearby, full cost otherwise.
        for back in (
            record.prev_volume_lsn,
            record.prev_pg_lsn,
            record.prev_block_lsn,
        ):
            total += (
                LSN_DELTA_BYTES if 0 <= record.lsn - back < 128 else LSN_BYTES
            )
        total += payload_bytes(record.payload)
        prev_lsn = record.lsn
    return total


def batch_logical_bytes(records: tuple[LogRecord, ...]) -> int:
    """Modelled bytes of the same records with no wire compression."""
    total = BATCH_HEADER_BYTES
    for record in records:
        total += RECORD_HEADER_BYTES + 4 * LSN_BYTES
        payload = record.payload
        if isinstance(payload, ElidedPayload):
            # Should not happen (elision runs after this is measured), but
            # stay honest if it does.
            total += ELIDED_PAYLOAD_BYTES
        else:
            total += payload_bytes(payload)
    return total


def _payload_key_coverage(payload: object):
    """(keys_written, covers_all) for a known payload type."""
    if isinstance(payload, BlockPut):
        return [k for k, _v in payload.entries], False
    if isinstance(payload, BlockDelete):
        return list(payload.keys), False
    if isinstance(payload, BlockReplace):
        return [], True
    return None, False


def elide_superseded(
    records: tuple[LogRecord, ...],
) -> tuple[tuple[LogRecord, ...], int]:
    """Replace superseded same-transaction payloads with elided stand-ins.

    Walks the batch backwards accumulating, per ``(block, txn_id)``, the
    set of keys later records overwrite.  A record is elided only when

    - it is a DATA record of a real transaction (``txn_id != 0``) touching
      a real block,
    - its payload type is known (so its write set is known), and
    - every key it writes is covered by later records of the *same*
      transaction on the same block (a whole-block replace covers all).

    Unknown payload types are never elided and never extend coverage.
    Returns the (possibly rewritten) record tuple and the elision count.
    """
    n = len(records)
    if n < 2:
        return records, 0
    out = list(records)
    coverage: dict[tuple[int, int], object] = {}
    covered_by: dict[tuple[int, int], int] = {}
    elided = 0
    for i in range(n - 1, -1, -1):
        record = out[i]
        if (
            record.kind is not RecordKind.DATA
            or record.txn_id == 0
            or record.block == NO_BLOCK
        ):
            continue
        keys, covers_all = _payload_key_coverage(record.payload)
        if keys is None and not covers_all:
            continue  # unknown write set: keep, and do not extend coverage
        slot = (record.block, record.txn_id)
        cover = coverage.get(slot)
        if cover is _ALL or (
            cover is not None
            and not covers_all
            and keys is not None
            and all(k in cover for k in keys)
        ):
            out[i] = replace(
                record, payload=ElidedPayload(covered_by=covered_by[slot])
            )
            elided += 1
            continue
        if covers_all:
            coverage[slot] = _ALL
        else:
            if not isinstance(cover, set):
                cover = set()
                coverage[slot] = cover
            cover.update(keys)
        covered_by[slot] = record.lsn
    if not elided:
        return records, 0
    return tuple(out), elided
