"""Read replicas (sections 3.2 - 3.4).

A replica attaches to the same storage volume as the writer.  It consumes
the physical replication stream and enforces the paper's three invariants:

1. **Replica read views lag durability at the writer**: views anchor at
   VDL points the writer has advertised, never ahead of them.
2. **Structural changes apply atomically**: records arrive and apply in
   whole MTR chunks, in LSN order, "applied only if above the VDL in the
   writer as seen in the replica" -- i.e. a chunk is only applied once a
   VDL update covering it arrives, so the replica never materializes
   state the writer has not made durable.
3. **Read views anchor to equivalent points on the writer**: the replica
   tracks per-PG frontiers from the stream, so a view at VDL ``v`` reads
   uncached blocks from storage at exactly ``f(pg, v)``.

Redo for uncached blocks is discarded ("Redo records for uncached blocks
can be discarded, as they can be read from the shared storage volume") --
except transaction-table blocks, which every instance keeps warm because
visibility depends on them.

Commit visibility comes from :class:`CommitNotice` messages ("we ship
commit notifications and maintain transaction commit history").

Promotion is modelled at the cluster level: a promoted replica's identity
is handed to a fresh :class:`WriterInstance` that runs ordinary crash
recovery against the shared volume -- "if a commit has been marked durable
and acknowledged to the client, there is no data loss when a replica is
promoted to a write instance".
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.core.consistency import MinReadPointTracker, PGFrontierHistory
from repro.core.lsn import NULL_LSN
from repro.core.records import LogRecord
from repro.db.btree import BlockIO, BTree
from repro.db.buffer_cache import BufferCache
from repro.db.driver import DriverConfig, StorageDriver
from repro.db.mtr import MTRBuilder
from repro.db.mvcc import ReadView, ReadViewManager, TransactionStatusRegistry
from repro.db.replication import (
    CommitNotice,
    MTRChunk,
    ReplicationFrame,
    VDLUpdate,
)
from repro.errors import InstanceStateError
from repro.sim.network import Actor, Message
from repro.storage.messages import GCFloorUpdate, RequestRejected
from repro.storage.metadata import StorageMetadataService


@dataclass
class ReplicaConfig:
    cache_capacity: int = 100_000
    txn_table_blocks: int = 4
    max_leaf_rows: int = 16
    max_internal_keys: int = 16
    driver: DriverConfig = field(default_factory=DriverConfig)
    gc_floor_interval: float = 50.0


@dataclass
class ReplicaStats:
    chunks_received: int = 0
    chunks_applied: int = 0
    records_applied: int = 0
    records_discarded: int = 0
    #: Storage-read images not cached because a discarded record postdated
    #: their read point (the install-vs-discard race).
    stale_installs_declined: int = 0
    commit_notices: int = 0
    reads: int = 0
    #: Samples of (writer_vdl_seen - applied_vdl) at each VDL update.
    lag_samples: list[int] = field(default_factory=list)


class ReplicaInstance(Actor, BlockIO):
    """A read replica attached to the shared storage volume."""

    META_BLOCK = 0

    def __init__(
        self,
        name: str,
        metadata: StorageMetadataService,
        rng: random.Random,
        config: ReplicaConfig | None = None,
    ) -> None:
        Actor.__init__(self, name=name)
        self.metadata = metadata
        self.rng = rng
        self.config = config if config is not None else ReplicaConfig()
        self.stats = ReplicaStats()
        self.cache = BufferCache(self.config.cache_capacity)
        self.registry = TransactionStatusRegistry()
        self.views = ReadViewManager()
        self.min_read = MinReadPointTracker()
        self.frontiers = PGFrontierHistory()
        self.driver: StorageDriver | None = None
        self.btree: BTree | None = None
        #: Chunks sequenced by first LSN, waiting for order or durability.
        self._pending_chunks: list[tuple[int, MTRChunk]] = []
        #: Highest redo LSN discarded per uncached block.  A storage read
        #: issued before such a record arrived returns an image that
        #: predates it; installing that image would silently lose the
        #: record (later redo applies on top of the stale base).  The
        #: install path consults this frontier and declines to cache.
        self._discard_frontier: dict[int, int] = {}
        self._next_expected_lsn = NULL_LSN + 1
        self._writer_vdl_seen = NULL_LSN
        self._applied_vdl = NULL_LSN
        self.online = False
        self._gc_tick_scheduled = False
        #: Optional :class:`repro.audit.Auditor` observer (zero-cost when
        #: unattached).
        self.audit_probe = None
        #: Optional :class:`repro.repair.DbHealthMonitor` observer: the
        #: ``writer_id`` on every replication message this replica hears
        #: is writer-liveness evidence.
        self.db_health_probe = None

    # ------------------------------------------------------------------
    # Wiring / attach
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.driver = StorageDriver(
            instance_id=self.name,
            loop=self.loop,
            send=lambda dst, payload: self.network.send(self.name, dst, payload),
            rpc=lambda dst, payload: self.network.rpc(self.name, dst, payload),
            metadata=self.metadata,
            rng=self.rng,
            config=self.config.driver,
            optimistic_reads=True,
        )
        self.driver.configure_all_pgs()
        self.btree = BTree(
            io=self,
            registry=self.registry,
            meta_block=self.META_BLOCK,
            max_leaf_rows=self.config.max_leaf_rows,
            max_internal_keys=self.config.max_internal_keys,
        )
        self._schedule_gc_tick()

    def attach(
        self,
        next_expected_lsn: int,
        vdl: int,
        pg_frontiers: dict[int, int],
        commit_history: dict[int, int],
    ) -> None:
        """Join the replication stream at the writer's current position.

        "This approach allows Aurora customers to quickly set up and tear
        down replicas in response to sharp demand spikes, since durable
        state is shared" -- attaching needs only the stream cursor and the
        commit history, never a data copy.
        """
        self._next_expected_lsn = next_expected_lsn
        self._writer_vdl_seen = vdl
        self._applied_vdl = vdl
        self._discard_frontier.clear()
        self.frontiers.reset(vdl, pg_frontiers)
        self.min_read.advance_floor(vdl)
        for txn_id, scn in commit_history.items():
            self.registry.record_commit(txn_id, scn)
        self.online = True

    @property
    def applied_vdl(self) -> int:
        return self._applied_vdl

    @property
    def replica_lag(self) -> int:
        """LSN distance between the writer's durable point and ours."""
        return max(0, self._writer_vdl_seen - self._applied_vdl)

    def pg_of_block(self, block: int) -> int:
        return self.metadata.geometry.pg_of_block(block)

    # ------------------------------------------------------------------
    # Replication stream intake
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not self.online:
            return
        if self.db_health_probe is not None:
            writer_id = getattr(payload, "writer_id", None)
            if writer_id is not None:
                # Redo chunks, VDL heartbeats and commit notices all prove
                # the writer alive.
                self.db_health_probe.note_signal(writer_id)
        if isinstance(payload, ReplicationFrame):
            for item in payload.items:
                self._on_stream_item(item)
        elif isinstance(payload, RequestRejected):
            self.driver.on_rejection(payload)
        else:
            self._on_stream_item(payload)

    def _on_stream_item(self, item) -> None:
        if isinstance(item, MTRChunk):
            self._on_chunk(item)
        elif isinstance(item, VDLUpdate):
            self._on_vdl_update(item)
        elif isinstance(item, CommitNotice):
            self._on_commit_notice(item)

    def _on_chunk(self, chunk: MTRChunk) -> None:
        self.stats.chunks_received += 1
        first_lsn = chunk.records[0].lsn
        if first_lsn < self._next_expected_lsn:
            return  # duplicate / pre-attach history
        heapq.heappush(self._pending_chunks, (first_lsn, chunk))
        self._drain_chunks()

    def _on_vdl_update(self, update: VDLUpdate) -> None:
        if update.vdl <= self._writer_vdl_seen:
            return
        self._writer_vdl_seen = update.vdl
        self._drain_chunks()
        self.stats.lag_samples.append(self.replica_lag)

    def _on_commit_notice(self, notice: CommitNotice) -> None:
        self.stats.commit_notices += 1
        if self.registry.commit_scn(notice.txn_id) is None:
            self.registry.record_commit(notice.txn_id, notice.scn)

    def _drain_chunks(self) -> None:
        """Apply sequenced chunks whose records the writer reports durable.

        Invariant 2 (atomicity) comes from applying whole chunks in one
        event; invariant 1 (lag durability) from the VDL gate.
        """
        while self._pending_chunks:
            first_lsn, chunk = self._pending_chunks[0]
            last_lsn = chunk.records[-1].lsn
            if first_lsn != self._next_expected_lsn:
                # Out-of-order delivery: wait for the gap to fill.  (If the
                # writer crashed, the promoted writer re-attaches us.)
                return
            if last_lsn > self._writer_vdl_seen:
                return  # not yet durable at the writer, invariant 1
            heapq.heappop(self._pending_chunks)
            self._apply_chunk(chunk)
            self._next_expected_lsn = last_lsn + 1

    def _apply_chunk(self, chunk: MTRChunk) -> None:
        self.stats.chunks_applied += 1
        last_lsn = chunk.records[-1].lsn
        for record in chunk.records:
            self.frontiers.record(record.lsn, record.pg_index)
            self._apply_record(record)
        # The chunk is durable (VDL-gated), so its end is our new VDL.
        self._applied_vdl = last_lsn
        if self.audit_probe is not None:
            self.audit_probe.on_replica_apply(
                self.name, self._applied_vdl, self._writer_vdl_seen
            )
        self.frontiers.advance_vdl(last_lsn)
        self.min_read.advance_floor(last_lsn)
        self.frontiers.prune_below(self.min_read.current())

    def _apply_record(self, record: LogRecord) -> None:
        if record.block < 0:
            return
        cached = self.cache.peek(record.block)
        if cached is None:
            # Uncached: discard; storage serves it on demand.  This must
            # hold even for the hot txn-table blocks: fabricating an
            # empty base image and applying only this record is correct
            # only for a replica that has seen the block's entire
            # history, and a replica attached mid-life (failover
            # replenishment) has not -- it would then serve the
            # fabricated image as authoritative.  The first read warms
            # the block from storage at a consistent point instead.
            if record.lsn > self._discard_frontier.get(record.block, NULL_LSN):
                self._discard_frontier[record.block] = record.lsn
            self.stats.records_discarded += 1
            return
        if record.lsn <= cached.latest_lsn:
            return
        new_image = record.payload.apply(cached.image)
        self.cache.apply_change(record.block, new_image, record.lsn)
        self.stats.records_applied += 1

    # ------------------------------------------------------------------
    # BlockIO (read-only)
    # ------------------------------------------------------------------
    def read_image(self, block: int, mtr: MTRBuilder | None = None):
        if mtr is not None:
            raise InstanceStateError("replicas are read-only")
        cached = self.cache.lookup(block)
        if cached is not None:
            return dict(cached.image)
        pg_index = self.pg_of_block(block)
        pg_point = self.frontiers.pg_read_point(pg_index, self._applied_vdl)
        if pg_point == NULL_LSN:
            return {}
        image, version_lsn = yield self.driver.read_block(
            block, pg_index, pg_point
        )
        # Install-vs-discard race: while this read was in flight, redo for
        # this (then-uncached) block may have arrived and been discarded.
        # The image is a consistent snapshot at ``pg_point`` -- fine for
        # the caller's view -- but caching it would resurrect a base that
        # predates the discarded record, and later redo would apply on top
        # of the gap, permanently diverging this replica.  Decline to
        # cache; a later read at a fresh point will warm the block.
        if self._discard_frontier.get(block, NULL_LSN) <= pg_point:
            self.cache.install(
                block, dict(image), version_lsn, self._applied_vdl
            )
        else:
            self.stats.stale_installs_declined += 1
        return dict(image)

    def stage_change(self, mtr, block, payload):
        raise InstanceStateError("replicas are read-only")

    def allocate_block(self, mtr):
        raise InstanceStateError("replicas are read-only")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def open_view(self) -> ReadView:
        """Anchor a snapshot at the latest applied VDL (invariant 3)."""
        view = self.views.open(read_point=self._applied_vdl)
        if self.audit_probe is not None:
            self.audit_probe.on_replica_view(
                self.name, view.read_point, self._writer_vdl_seen
            )
        self.min_read.register(view.read_point)
        return view

    def close_view(self, view: ReadView) -> None:
        if not self.views.is_open(view):
            # The view was already discarded wholesale (a crash cleared
            # the manager while this read was in flight); there is nothing
            # left to release.
            return
        self.views.close(view)
        self.min_read.release(view.read_point)

    def get(self, key):
        """Generator: visible value of ``key`` at this replica's snapshot."""
        if not self.online:
            raise InstanceStateError(f"replica {self.name} is not attached")
        self.stats.reads += 1
        view = self.open_view()
        try:
            found, value = yield from self.btree.get(view, key)
        finally:
            self.close_view(view)
        return value if found else None

    def scan(self, low, high):
        """Generator: visible (key, value) pairs in [low, high]."""
        if not self.online:
            raise InstanceStateError(f"replica {self.name} is not attached")
        self.stats.reads += 1
        view = self.open_view()
        try:
            results = yield from self.btree.scan(view, low, high)
        finally:
            self.close_view(view)
        return results

    # ------------------------------------------------------------------
    # Background: GC-floor advertisement (replicas hold back GC too)
    # ------------------------------------------------------------------
    def _schedule_gc_tick(self) -> None:
        if self._gc_tick_scheduled:
            return
        self._gc_tick_scheduled = True

        def _tick() -> None:
            self._gc_tick_scheduled = False
            if self.online:
                self._advertise_gc_floor()
            self._schedule_gc_tick()

        self.loop.schedule(self.config.gc_floor_interval, _tick)

    def _advertise_gc_floor(self) -> None:
        pgmrpl = self.min_read.current()
        if pgmrpl == NULL_LSN or not self.frontiers.knows(pgmrpl):
            # A view opened before a writer failover can still be draining;
            # its anchor belongs to the previous stream generation, whose
            # history :meth:`attach` reset.  Holding the advertisement back
            # is safe (GC merely waits); advertising a floor from the wrong
            # generation would not be.
            return
        frontier = self.frontiers.frontier_at(pgmrpl)
        for pg_index in self.metadata.pg_indexes():
            pg_floor = frontier.get(pg_index, NULL_LSN)
            if pg_floor == NULL_LSN:
                continue
            update = GCFloorUpdate(
                instance_id=self.name,
                pg_index=pg_index,
                pgmrpl=pg_floor,
                epochs=self.driver.epochs,
            )
            for member in self.driver.members_of(pg_index):
                self.network.send(self.name, member, update)

    # ------------------------------------------------------------------
    # Detach / crash
    # ------------------------------------------------------------------
    def detach(self) -> None:
        self.online = False
        self._pending_chunks.clear()

    def on_crash(self) -> None:
        self.online = False
        self.cache.drop_all()
        self._discard_frontier.clear()
        self.views.clear()
        self.min_read.clear_active()
        self._pending_chunks.clear()
