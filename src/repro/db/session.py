"""Synchronous client session over the simulated database.

The instance API is asynchronous (generators and futures) because the
simulator is event-driven.  A :class:`Session` gives examples, tests, and
benchmarks a comfortable synchronous surface: each call drives the event
loop until its own result is ready, letting all background activity
(acknowledgements, gossip, replication) interleave naturally, exactly as
wall-clock time would.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from repro.core.retry import Backoff, RetryPolicy
from repro.db.instance import InstanceState, WriterInstance
from repro.db.replica import ReplicaInstance
from repro.db.txn import Transaction
from repro.errors import (
    CommitUncertainError,
    FailoverInProgressError,
    InstanceStateError,
    RegionUnavailableError,
    ReplicationLagExceededError,
    SimulationError,
)
from repro.sim.events import EventLoop, Future
from repro.sim.process import Process


class Session:
    """A client connection to a writer or replica instance."""

    def __init__(self, instance: WriterInstance | ReplicaInstance) -> None:
        self.instance = instance

    @property
    def loop(self) -> EventLoop:
        return self.instance.loop

    # ------------------------------------------------------------------
    # Driving machinery
    # ------------------------------------------------------------------
    def drive(
        self,
        awaitable: Future | Process | Generator,
        max_ms: float = 60_000.0,
    ) -> Any:
        """Run the event loop until ``awaitable`` completes; return result.

        ``max_ms`` bounds the *simulated* time spent waiting: background
        maintenance ticks keep the event loop alive forever, so an
        operation that can never complete (e.g. a commit with the write
        quorum lost) would otherwise spin indefinitely.  Sixty simulated
        seconds is several orders of magnitude beyond any healthy
        operation in this library.
        """
        if isinstance(awaitable, Generator):
            awaitable = Process(self.loop, awaitable)
        future = (
            awaitable.completion
            if isinstance(awaitable, Process)
            else awaitable
        )
        deadline = self.loop.now + max_ms
        while not future.done:
            if not self.loop.step():
                raise SimulationError(
                    "event loop drained before the operation completed "
                    "(lost quorum or unreachable storage?)"
                )
            if self.loop.now > deadline:
                raise SimulationError(
                    f"operation did not complete within {max_ms} ms of "
                    "simulated time (lost quorum or unreachable storage?)"
                )
        return future.result()

    def spawn(self, generator: Generator) -> Process:
        """Start an instance operation without waiting for it."""
        return Process(self.loop, generator)

    # ------------------------------------------------------------------
    # Transactions (writer sessions only)
    # ------------------------------------------------------------------
    def _writer(self) -> WriterInstance:
        if not isinstance(self.instance, WriterInstance):
            raise SimulationError("this session is attached to a replica")
        return self.instance

    def begin(self) -> Transaction:
        return self._writer().begin()

    def put(self, txn: Transaction, key, value) -> None:
        self.drive(self._writer().put(txn, key, value))

    def delete(self, txn: Transaction, key) -> None:
        self.drive(self._writer().delete(txn, key))

    def commit(self, txn: Transaction) -> int:
        """Commit and wait for the durable acknowledgement; returns SCN."""
        return self.drive(self._writer().commit(txn))

    def commit_async(self, txn: Transaction) -> Future:
        """Commit without waiting (the paper's worker-thread behaviour)."""
        return self._writer().commit(txn)

    def rollback(self, txn: Transaction) -> None:
        self.drive(self._writer().rollback(txn))

    # ------------------------------------------------------------------
    # Reads (writer or replica)
    # ------------------------------------------------------------------
    def get(self, key, txn: Transaction | None = None) -> Any:
        if isinstance(self.instance, WriterInstance):
            return self.drive(self.instance.get(key, txn))
        return self.drive(self.instance.get(key))

    def scan(self, low, high, txn: Transaction | None = None) -> list:
        if isinstance(self.instance, WriterInstance):
            return self.drive(self.instance.scan(low, high, txn))
        return self.drive(self.instance.scan(low, high))

    # ------------------------------------------------------------------
    # One-shot convenience (auto-commit)
    # ------------------------------------------------------------------
    def write(self, key, value) -> int:
        """Single-statement write transaction; returns its SCN."""
        txn = self.begin()
        self.put(txn, key, value)
        return self.commit(txn)

    def write_many(self, items: dict) -> int:
        """One transaction writing several keys; returns its SCN."""
        txn = self.begin()
        for key in sorted(items, key=repr):
            self.put(txn, key, items[key])
        return self.commit(txn)

    def remove(self, key) -> int:
        txn = self.begin()
        self.delete(txn, key)
        return self.commit(txn)


class ClusterSession(Session):
    """A failover-aware client session.

    A plain :class:`Session` is pinned to one instance; when that writer
    dies the session dies with it.  A ``ClusterSession`` instead resolves
    the cluster's *current* writer on every operation, waits out
    in-progress failovers, and transparently retries the **idempotent**
    surface -- reads and the one-shot auto-commit writes, whose re-apply
    is a no-op by construction -- when a typed retryable error
    (:class:`FailoverInProgressError`, :class:`InstanceStateError`,
    :class:`CommitUncertainError`) interrupts it.

    Explicit transactions (:meth:`begin` .. :meth:`commit`) are *not*
    retried: a transaction handle is bound to one writer generation, and
    replaying arbitrary statement sequences is not idempotent in general.
    Their commit futures resolve with :class:`CommitUncertainError` on
    failover -- never a false acknowledgement -- and the caller decides.
    """

    #: Errors that mean "the writer moved under you; same call is safe".
    #: ``RegionUnavailableError`` and ``ReplicationLagExceededError`` are
    #: subclasses of the first two but named explicitly: the geo tier's
    #: region re-resolution depends on them staying retryable, so the
    #: tuple documents (and tests pin) that contract.
    RETRYABLE = (
        CommitUncertainError,
        FailoverInProgressError,
        InstanceStateError,
        RegionUnavailableError,
        ReplicationLagExceededError,
    )

    #: Re-poll schedule between retry attempts.  Jitter is load-bearing:
    #: with the proxy tier multiplexing very many sessions over one
    #: cluster, a fixed re-poll interval makes every session that saw the
    #: same failure retry in lockstep (thundering herd); decorrelated
    #: jitter spreads the wave.
    RETRY_POLICY = RetryPolicy(
        base_ms=10.0, cap_ms=200.0, multiplier=2.0, jitter=0.5
    )

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        # Deterministic per-session jitter stream: derived from the
        # cluster seed plus a per-cluster session counter, never from
        # module-level state, so parallel audit sweeps stay byte-identical
        # to sequential ones.
        seq = getattr(cluster, "_session_jitter_seq", 0)
        cluster._session_jitter_seq = seq + 1
        seed = getattr(getattr(cluster, "config", None), "seed", 0)
        self._retry_rng = random.Random((seed * 1_000_003 + seq) & 0xFFFFFFFF)

    def _new_backoff(self) -> Backoff:
        return Backoff(self.RETRY_POLICY, rng=self._retry_rng)

    @property
    def instance(self) -> WriterInstance:  # type: ignore[override]
        writer = self.cluster.writer
        if writer is None or self.cluster.failover_in_progress:
            # A geo cluster distinguishes "this whole region is gone,
            # promotion pending" from an ordinary in-region failover.
            if getattr(self.cluster, "region_unavailable", False):
                raise RegionUnavailableError(
                    "active region lost: waiting for secondary promotion"
                )
            raise FailoverInProgressError(
                "writer endpoint unresolved: a failover is in progress"
            )
        return writer

    @property
    def loop(self) -> EventLoop:
        return self.cluster.loop

    def await_writer(self, max_ms: float = 60_000.0) -> WriterInstance:
        """Pump the simulation until an open writer is available."""
        deadline = self.cluster.loop.now + max_ms
        for _ in range(int(max_ms / 5.0) + 1):
            writer = self.cluster.writer
            if (
                writer is not None
                and not self.cluster.failover_in_progress
                and writer.state is InstanceState.OPEN
            ):
                return writer
            if self.cluster.loop.now > deadline:
                break
            self.cluster.run_for(5.0)
        raise SimulationError(
            f"no open writer within {max_ms} ms of simulated time "
            "(failover stalled or no coordinator armed?)"
        )

    def _retry(self, op, max_ms: float = 60_000.0) -> Any:
        deadline = self.cluster.loop.now + max_ms
        backoff = self._new_backoff()
        while True:
            # Each attempt gets only the *remaining* budget: passing the
            # full ``max_ms`` here would let a failover that stalls after
            # the first attempt block for nearly twice the stated bound.
            remaining = max(1.0, deadline - self.cluster.loop.now)
            self.await_writer(max_ms=remaining)
            try:
                return op()
            except self.RETRYABLE:
                if self.cluster.loop.now > deadline:
                    raise
                # Let the failover plane make progress before retrying.
                self.cluster.run_for(backoff.next_delay())

    # Idempotent surface: safe to re-apply after an uncertain outcome.
    def write(self, key, value) -> int:
        return self._retry(lambda: super(ClusterSession, self).write(key, value))

    def write_many(self, items: dict) -> int:
        return self._retry(
            lambda: super(ClusterSession, self).write_many(items)
        )

    def remove(self, key) -> int:
        return self._retry(lambda: super(ClusterSession, self).remove(key))

    def get(self, key, txn: Transaction | None = None) -> Any:
        if txn is not None:
            # A transaction handle is bound to one writer generation:
            # replaying its reads against a promoted writer would silently
            # change the snapshot the caller is working in.  Raise the
            # retryable error through and let the caller restart the txn.
            return super().get(key, txn)
        return self._retry(lambda: super(ClusterSession, self).get(key))

    def scan(self, low, high, txn: Transaction | None = None) -> list:
        if txn is not None:
            return super().scan(low, high, txn)
        return self._retry(
            lambda: super(ClusterSession, self).scan(low, high)
        )
