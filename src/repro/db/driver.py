"""The storage driver inside a database instance.

Write path (section 2.2): "Changes to data blocks modify the image in the
Aurora buffer cache and add the corresponding redo record to a log buffer.
These are periodically flushed to a storage driver ...  Inside the driver,
they are shuffled to individual write buffers for each storage node storing
segments for the data volume.  The driver asynchronously issues writes,
receives acknowledgments, and establishes consistency points."

Boxcar strategy (the paper's jitter fix): "Aurora handles this by submitting
the asynchronous network operation when it receives the first redo log
record in the boxcar but continuing to fill the buffer until the network
operation executes."  Two ablation modes are provided -- a classic
size-or-timeout boxcar (the jittery design the paper criticises) and
no-boxcar-at-all -- so benchmark C2 can compare all three.

Read path (section 3.1): reads go to a single segment chosen from the
driver's own durability bookkeeping, with latency tracking, occasional
exploration, and hedging of overdue requests.  Hedging is checked whenever
any other I/O completes ("without request timeouts by inspecting the list
of outstanding requests when performing other I/Os") plus a coarse fallback
sweep for idle periods.

The driver also provides the quorum-RPC helpers recovery and membership
changes are built from: scatter a request to every member, resolve once the
responder set satisfies the read or write quorum expression.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.consistency import PGConsistencyTracker, VolumeConsistencyTracker
from repro.core.commit import CommitQueue
from repro.core.epochs import EpochStamp
from repro.core.read_routing import LatencyTracker, ReadPlan, ReadRouter
from repro.core.records import LogRecord
from repro.core.retry import Backoff, RetryPolicy
from repro.db.wire import (
    batch_logical_bytes,
    batch_wire_bytes,
    elide_superseded,
)
from repro.errors import SegmentUnavailableError
from repro.sim.events import EventLoop, Future
from repro.storage.messages import (
    CORRUPT_PAYLOAD,
    EpochWrite,
    ReadBlockRequest,
    ReadBlockResponse,
    RecoveryScanRequest,
    RequestRejected,
    TruncateRequest,
    WriteAck,
    WriteBatch,
)
from repro.storage.metadata import StorageMetadataService


class BoxcarMode(enum.Enum):
    """How the driver batches records into write buffers."""

    #: The paper's design: issue the async send on the first record, keep
    #: filling the buffer until the send executes.  No added latency, no
    #: timeout jitter, still batches under load.
    AURORA = "aurora"
    #: Classic group-commit boxcar: flush at N records or after a timeout.
    #: "Jitter is greatest under low load when the boxcar times out."
    TIMEOUT = "timeout"
    #: No batching: one network operation per record.
    IMMEDIATE = "immediate"


#: Legal :attr:`DriverConfig.group_commit` policies.
GROUP_COMMIT_POLICIES = ("fixed", "immediate", "adaptive", "quorum-piggyback")


@dataclass
class DriverConfig:
    boxcar_mode: BoxcarMode = BoxcarMode.AURORA
    #: AURORA mode: delay until the issued async network op executes (ms).
    submit_delay: float = 0.05
    #: TIMEOUT mode parameters.
    boxcar_timeout: float = 4.0
    boxcar_max_records: int = 32
    #: Group-commit policy governing the AURORA-mode window:
    #:
    #: - ``"fixed"``: the window is ``submit_delay``, always (PR 5
    #:   behaviour; the default).
    #: - ``"immediate"``: flush on every record (ablation; like
    #:   ``BoxcarMode.IMMEDIATE`` but switchable per policy).
    #: - ``"adaptive"``: the window is derived from observed load -- an
    #:   EWMA of inter-record arrival gaps per PG, scaled by
    #:   ``adaptive_gain`` and clamped to ``[0, boxcar_timeout]``.  A gap
    #:   of ``adaptive_idle_gap`` or more resets the estimate, so the
    #:   first record after an idle period flushes with a ~zero window
    #:   (no sticky wide window after a burst).
    #: - ``"quorum-piggyback"``: hold the buffer until the next WriteAck
    #:   arrives for that PG (piggyback the flush on quorum round-trip
    #:   completions), with ``boxcar_timeout`` as the backstop timer.
    group_commit: str = "fixed"
    #: Adaptive window = ``adaptive_gain`` x EWMA(inter-arrival gap).
    adaptive_gain: float = 16.0
    #: EWMA smoothing factor for arrival gaps (0 < alpha <= 1).
    adaptive_alpha: float = 0.2
    #: An arrival gap at or above this (ms) marks an idle boundary and
    #: resets the EWMA, collapsing the window for the next record.
    adaptive_idle_gap: float = 2.0
    #: Gap samples required since the last idle reset before the window
    #: opens at all.  One or two closely spaced records are not load
    #: evidence -- a lone transaction's put->commit gap must not buy its
    #: own commit record a wait (the low-load latency guardrail in C1).
    adaptive_min_samples: int = 4
    #: Compress redo payloads on the wire: delta-encode consecutive LSNs
    #: and elide same-transaction superseded payloads inside each batch
    #: (see :mod:`repro.db.wire`).
    wire_compression: bool = True
    #: Hedged-read fallback sweep period when no other I/O fires (ms).
    hedge_sweep_interval: float = 1.0
    #: Grace period to collect straggler responses past quorum (ms).
    quorum_grace: float = 5.0
    #: Hard deadline for a quorum RPC; unreachable quorum fails here (ms).
    quorum_deadline: float = 200.0
    explore_probability: float = 0.02
    hedge_multiplier: float = 3.0
    #: Resubmit rejected write batches under the adopted epochs, so a
    #: single stale-epoch race costs one extra request instead of
    #: stranding records until gossip refills them (section 4.1).
    resubmit_on_rejection: bool = True
    #: Unacknowledged batches retained per segment for resubmission.
    unacked_retain: int = 64
    #: Pacing between successive resubmissions to the *same* segment, via
    #: the shared :mod:`repro.core.retry` policy.  The default is the
    #: paper's behaviour -- "just one additional request past the one
    #: rejected", no wait -- while repeated rejections from a flapping
    #: segment can be damped by a non-zero policy.
    resubmit_policy: RetryPolicy = field(default_factory=RetryPolicy.immediate)

    def __post_init__(self) -> None:
        if self.group_commit not in GROUP_COMMIT_POLICIES:
            raise ValueError(
                f"unknown group_commit policy {self.group_commit!r}; "
                f"expected one of {GROUP_COMMIT_POLICIES}"
            )


@dataclass
class DriverStats:
    batches_sent: int = 0
    records_sent: int = 0
    acks_received: int = 0
    rejections_seen: int = 0
    corrupt_rejections_seen: int = 0
    batches_resubmitted: int = 0
    reads_issued: int = 0
    reads_completed: int = 0
    hedges_issued: int = 0
    explores_issued: int = 0
    read_latencies: list[float] = field(default_factory=list)
    #: Per-record wait between submit() and the batch leaving the driver.
    boxcar_delays: list[float] = field(default_factory=list)
    #: Wire compression: superseded same-txn payloads elided from batches.
    records_elided: int = 0
    #: Modelled wire bytes of every batch sent (per unique batch, not per
    #: fan-out target) versus the uncompressed bytes of the same records.
    wire_bytes: int = 0
    logical_bytes: int = 0
    #: Adaptive group commit: windows actually used at flush-arm time.
    adaptive_window_max: float = 0.0
    adaptive_window_sum: float = 0.0
    adaptive_windows_armed: int = 0


class _PGWriteBuffer:
    """Pending records for one protection group."""

    __slots__ = (
        "records", "flush_event", "last_arrival", "ewma_gap", "ewma_samples"
    )

    def __init__(self) -> None:
        self.records: list[tuple[LogRecord, float]] = []
        self.flush_event = None  # scheduled Event or None
        #: Adaptive group commit: when the last record arrived, the EWMA
        #: of inter-arrival gaps (None until two arrivals land close
        #: enough together to estimate load), and how many gap samples
        #: fed it since the last idle reset.
        self.last_arrival: float | None = None
        self.ewma_gap: float | None = None
        self.ewma_samples: int = 0

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class _OutstandingRead:
    block: int
    pg_index: int
    read_point: int
    segment: str
    issued_at: float
    plan: ReadPlan
    future: Future
    is_hedge: bool = False
    settled: bool = False
    exclude: frozenset[str] = frozenset()


class StorageDriver:
    """Asynchronous write/read engine owned by one database instance."""

    def __init__(
        self,
        instance_id: str,
        loop: EventLoop,
        send: Callable[[str, object], None],
        rpc: Callable[[str, object], Future],
        metadata: StorageMetadataService,
        rng: random.Random,
        config: DriverConfig | None = None,
        optimistic_reads: bool = False,
    ) -> None:
        self.instance_id = instance_id
        #: Replicas are not in the acknowledgement path, so they cannot
        #: know which segments are durable; with optimistic reads the
        #: driver targets any full segment and relies on the storage
        #: node's read-window rejection plus retry to find a current one.
        self.optimistic_reads = optimistic_reads
        self.loop = loop
        self._send = send
        self._rpc = rpc
        self.metadata = metadata
        self.rng = rng
        self.config = config if config is not None else DriverConfig()
        self.stats = DriverStats()
        self.epochs: EpochStamp = metadata.epochs
        self.pg_trackers: dict[int, PGConsistencyTracker] = {}
        self.volume = VolumeConsistencyTracker()
        self.commit_queue = CommitQueue()
        #: Optional :class:`repro.audit.Auditor` observer.  The driver owns
        #: it (rather than the trackers alone) because crash handling
        #: replaces the trackers wholesale; see :meth:`attach_audit_probe`.
        self.audit_probe = None
        #: Optional :class:`repro.repair.HealthMonitor` observer: acks,
        #: rejections, read replies, and hedge escalations feed its passive
        #: per-segment liveness signals (``None`` = one attribute load).
        self.health_probe = None
        #: Fired (no arguments) when a rejection reveals a *volume*-epoch
        #: advance this driver did not perform: a successor writer fenced
        #: us (section 6's "changing the locks on the door").  The owning
        #: instance subscribes to stop issuing I/O.
        self.on_fenced: list[Callable[[], None]] = []
        #: Per-segment ring of recently sent, not-yet-acknowledged batches
        #: (fuel for resubmission after a stale-epoch rejection).
        self._unacked: dict[str, deque[WriteBatch]] = {}
        #: Per-segment backoff cursor over ``config.resubmit_policy``;
        #: reset whenever the segment acks (progress).
        self._resubmit_backoff: dict[str, Backoff] = {}
        self.latency_tracker = LatencyTracker()
        self.router = ReadRouter(
            self.latency_tracker,
            rng,
            explore_probability=self.config.explore_probability,
            hedge_multiplier=self.config.hedge_multiplier,
        )
        self._buffers: dict[int, _PGWriteBuffer] = {}
        self._outstanding_reads: list[_OutstandingRead] = []
        self._hedge_sweep_scheduled = False
        #: Called with the new VCL after each advance.
        self.on_vcl_advance: list[Callable[[int], None]] = []
        #: Called with the new VDL after each advance.
        self.on_vdl_advance: list[Callable[[int], None]] = []
        #: Supplies the PGMRPL piggybacked on writes.
        self.pgmrpl_provider: Callable[[], int] = lambda: 0

    # ------------------------------------------------------------------
    # Configuration / membership
    # ------------------------------------------------------------------
    def configure_pg(self, pg_index: int) -> PGConsistencyTracker:
        """(Re)load a PG's quorum config from the metadata service."""
        config = self.metadata.quorum_config(pg_index)
        # Backends whose durability quorum spans only part of the
        # membership (Taurus: log stores) still track every member's acked
        # SCL, so asynchronous replicas feed read routing.
        tracked = self.metadata.tracked_members_of_pg(pg_index)
        tracker = self.pg_trackers.get(pg_index)
        if tracker is None:
            tracker = PGConsistencyTracker(
                pg_index,
                config,
                audit_probe=self.audit_probe,
                audit_owner=self.instance_id,
                tracked=tracked,
            )
            self.pg_trackers[pg_index] = tracker
        else:
            tracker.set_config(config, tracked=tracked)
        return tracker

    def attach_audit_probe(self, probe) -> None:
        """Arm a :class:`repro.audit.Auditor` on every tracker this driver
        owns, now and across crash-time recreation."""
        self.audit_probe = probe
        self.volume.audit_probe = probe
        self.volume.audit_owner = self.instance_id
        self.commit_queue.audit_probe = probe
        self.commit_queue.audit_owner = self.instance_id
        for tracker in self.pg_trackers.values():
            tracker.audit_probe = probe
            tracker.audit_owner = self.instance_id
            probe.on_quorum_config(
                self.instance_id, tracker.pg_index, tracker.config
            )

    def configure_all_pgs(self) -> None:
        for pg_index in self.metadata.pg_indexes():
            self.configure_pg(pg_index)

    def refresh_epochs(self) -> None:
        self.epochs = self.metadata.epochs

    def adopt_epochs(self, stamp: EpochStamp) -> None:
        old = self.epochs
        self.epochs = old.merge(stamp)
        if self.epochs != old and self.audit_probe is not None:
            self.audit_probe.on_epoch_change(
                self.instance_id, old, self.epochs
            )
        self.metadata.record_epochs(self.epochs)

    @property
    def vcl(self) -> int:
        return self.volume.vcl

    @property
    def vdl(self) -> int:
        return self.volume.vdl

    def members_of(self, pg_index: int) -> list[str]:
        return sorted(self.metadata.membership(pg_index).members)

    def _full_members_of(self, pg_index: int) -> set[str]:
        return {
            p.segment_id for p in self.metadata.full_segments_of_pg(pg_index)
        }

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def submit(self, records: list[LogRecord]) -> None:
        """Hand sealed MTR records to the driver (registers them for VCL
        tracking and shards them into per-PG write buffers)."""
        now = self.loop.now
        adaptive = self.config.group_commit == "adaptive"
        for record in records:
            self.volume.register(record.lsn, record.pg_index, record.mtr_end)
            buffer = self._buffers.setdefault(record.pg_index, _PGWriteBuffer())
            buffer.records.append((record, now))
            if adaptive:
                self._observe_arrival(buffer, now)
            self._arm_flush(record.pg_index, buffer)

    def _observe_arrival(self, buffer: _PGWriteBuffer, now: float) -> None:
        """Feed the per-PG inter-arrival EWMA (adaptive group commit).

        Records submitted at the same instant are one arrival event; a gap
        at or above ``adaptive_idle_gap`` is an idle boundary and resets
        the estimate so a burst's wide window never outlives the burst.
        """
        last = buffer.last_arrival
        if last is None:
            buffer.last_arrival = now
            return
        gap = now - last
        if gap <= 0.0:
            return
        buffer.last_arrival = now
        config = self.config
        if gap >= config.adaptive_idle_gap:
            buffer.ewma_gap = None
            buffer.ewma_samples = 0
        elif buffer.ewma_gap is None:
            buffer.ewma_gap = gap
            buffer.ewma_samples = 1
        else:
            buffer.ewma_gap += config.adaptive_alpha * (gap - buffer.ewma_gap)
            buffer.ewma_samples += 1

    def adaptive_window(self, pg_index: int) -> float:
        """The AURORA-mode window the adaptive policy would use right now."""
        buffer = self._buffers.get(pg_index)
        if (
            buffer is None
            or buffer.ewma_gap is None
            or buffer.ewma_samples < self.config.adaptive_min_samples
        ):
            return 0.0
        window = self.config.adaptive_gain * buffer.ewma_gap
        if window > self.config.boxcar_timeout:
            return self.config.boxcar_timeout
        return window

    def _arm_flush(self, pg_index: int, buffer: _PGWriteBuffer) -> None:
        config = self.config
        mode = config.boxcar_mode
        if mode is BoxcarMode.IMMEDIATE or config.group_commit == "immediate":
            self._flush(pg_index)
            return
        if mode is BoxcarMode.AURORA:
            # Size bound: a full boxcar goes out immediately -- the async
            # send "executes" once the wire buffer is full.  The time bound
            # (the group-commit window) otherwise caps how long the first
            # record waits.
            if len(buffer) >= config.boxcar_max_records:
                if buffer.flush_event is not None:
                    buffer.flush_event.cancel()
                    buffer.flush_event = None
                self._flush(pg_index)
            elif buffer.flush_event is None:
                policy = config.group_commit
                if policy == "adaptive":
                    window = self.adaptive_window(pg_index)
                    stats = self.stats
                    stats.adaptive_windows_armed += 1
                    stats.adaptive_window_sum += window
                    if window > stats.adaptive_window_max:
                        stats.adaptive_window_max = window
                elif policy == "quorum-piggyback":
                    # Wait for the next ack round-trip to carry the flush;
                    # the boxcar timeout backstops a quiet ack path.
                    window = config.boxcar_timeout
                else:
                    window = config.submit_delay
                buffer.flush_event = self.loop.schedule(
                    window, self._flush, pg_index
                )
            return
        # TIMEOUT mode: flush when full, else wait out the boxcar timer.
        if len(buffer) >= config.boxcar_max_records:
            if buffer.flush_event is not None:
                buffer.flush_event.cancel()
                buffer.flush_event = None
            self._flush(pg_index)
        elif buffer.flush_event is None:
            buffer.flush_event = self.loop.schedule(
                config.boxcar_timeout, self._flush, pg_index
            )

    def _flush(self, pg_index: int) -> None:
        buffer = self._buffers.get(pg_index)
        if buffer is None or not buffer.records:
            if buffer is not None:
                buffer.flush_event = None
            return
        records = tuple(record for record, _t in buffer.records)
        now = self.loop.now
        self.stats.boxcar_delays.extend(
            now - submitted for _r, submitted in buffer.records
        )
        buffer.records.clear()
        buffer.flush_event = None
        wire_bytes = logical_bytes = 0
        if self.config.wire_compression:
            logical_bytes = batch_logical_bytes(records)
            records, elided = elide_superseded(records)
            wire_bytes = batch_wire_bytes(records)
            stats = self.stats
            stats.records_elided += elided
            stats.wire_bytes += wire_bytes
            stats.logical_bytes += logical_bytes
        batch = WriteBatch(
            instance_id=self.instance_id,
            pg_index=pg_index,
            records=records,
            epochs=self.epochs,
            pgmrpl=self.pgmrpl_provider(),
            wire_bytes=wire_bytes,
            logical_bytes=logical_bytes,
        )
        # The synchronous write fan-out is backend policy: Aurora ships to
        # all six members; Taurus ships only to the log stores (page
        # stores drain the log asynchronously via gossip).
        targets = self.metadata.write_targets_of_pg(pg_index)
        members = (
            self.members_of(pg_index) if targets is None else sorted(targets)
        )
        for member in members:
            self._send(member, batch)
            self.stats.batches_sent += 1
            self.stats.records_sent += len(records)
            if self.config.resubmit_on_rejection:
                queue = self._unacked.get(member)
                if queue is None:
                    queue = deque(maxlen=self.config.unacked_retain)
                    self._unacked[member] = queue
                queue.append(batch)

    def flush_all(self) -> None:
        """Force every buffer out (used at commit in TIMEOUT ablations)."""
        for pg_index in list(self._buffers):
            self._flush(pg_index)

    # ------------------------------------------------------------------
    # Acknowledgement processing
    # ------------------------------------------------------------------
    def on_write_ack(self, ack: WriteAck) -> None:
        self.stats.acks_received += 1
        if self.health_probe is not None:
            self.health_probe.note_ack(ack.segment_id)
        if self.config.group_commit == "quorum-piggyback":
            # A completed round-trip for this PG carries the pending buffer
            # out "for free" -- the backstop timer (if armed) is cancelled
            # by _flush clearing flush_event below.
            buffer = self._buffers.get(ack.pg_index)
            if buffer is not None and buffer.records:
                if buffer.flush_event is not None:
                    buffer.flush_event.cancel()
                    buffer.flush_event = None
                self._flush(ack.pg_index)
        backoff = self._resubmit_backoff.get(ack.segment_id)
        if backoff is not None:
            backoff.reset()
        queue = self._unacked.get(ack.segment_id)
        if queue:
            # Everything at or below the acked SCL is durable on that
            # segment; retained batches covered by it are dead weight.
            while queue and queue[0].records[-1].lsn <= ack.scl:
                queue.popleft()
        tracker = self.pg_trackers.get(ack.pg_index)
        if tracker is None:
            return
        if tracker.record_ack(ack.segment_id, ack.scl):
            vcl_advanced, vdl_advanced = self.volume.on_pgcl(
                ack.pg_index, tracker.pgcl
            )
            if vcl_advanced:
                self.commit_queue.on_vcl_advance(self.volume.vcl, self.loop.now)
                for callback in self.on_vcl_advance:
                    callback(self.volume.vcl)
            if vdl_advanced:
                for callback in self.on_vdl_advance:
                    callback(self.volume.vdl)
        # Any completed I/O is an opportunity to inspect outstanding reads.
        self._inspect_outstanding_reads()

    def on_rejection(self, rejection: RequestRejected) -> None:
        self.stats.rejections_seen += 1
        if self.health_probe is not None:
            # A rejection is negative protocol evidence but *positive*
            # liveness evidence: the segment is up and talking.
            self.health_probe.note_rejection(rejection.segment_id)
        before = self.epochs
        self.adopt_epochs(rejection.current_epochs)
        if self.epochs.volume > before.volume:
            # A volume-epoch advance this driver did not perform can only
            # mean a successor ran recovery: we have been fenced.  Our
            # retained batches belong to a dead generation -- resubmitting
            # them at the new epoch would inject a zombie's writes past
            # the fence -- so drop them and tell the instance to stop.
            self._unacked.clear()
            for callback in list(self.on_fenced):
                callback()
            return
        if (
            self.config.resubmit_on_rejection
            and rejection.reason == CORRUPT_PAYLOAD
        ):
            # The segment's ingest verification caught the payload damaged
            # in flight; the retained copy here is clean, so resubmit it
            # even though no epoch advanced (DESIGN.md §12).
            self.stats.corrupt_rejections_seen += 1
            self._schedule_resubmit(rejection.segment_id)
            return
        if not self.config.resubmit_on_rejection or self.epochs == before:
            # Nothing newer was adopted (e.g. a read-window rejection):
            # resending the same stamp would only bounce again.
            return
        self._schedule_resubmit(rejection.segment_id)

    def _schedule_resubmit(self, segment_id: str) -> None:
        queue = self._unacked.get(segment_id)
        if not queue:
            return
        backoff = self._resubmit_backoff.get(segment_id)
        if backoff is None:
            backoff = Backoff(self.config.resubmit_policy, rng=self.rng)
            self._resubmit_backoff[segment_id] = backoff
        delay = backoff.next_delay()
        if delay <= 0.0:
            self._resubmit_segment(segment_id)
        else:
            self.loop.schedule(delay, self._resubmit_segment, segment_id)

    def _resubmit_segment(self, segment_id: str) -> None:
        """"Updates of stale state ... requiring just one additional
        request past the one rejected": re-stamp the retained batches with
        the adopted epochs and resend.  Segment receive is idempotent, so a
        batch that actually landed before the epoch bump is harmless."""
        queue = self._unacked.get(segment_id)
        if not queue:
            return
        pending = list(queue)
        queue.clear()
        for batch in pending:
            restamped = replace(batch, epochs=self.epochs)
            self._send(segment_id, restamped)
            queue.append(restamped)
            self.stats.batches_resubmitted += 1

    def seed_member_scl(self, pg_index: int, segment_id: str, scl: int) -> None:
        """Install a known SCL after recovery (from scan/truncate acks)."""
        tracker = self.pg_trackers.get(pg_index)
        if tracker is not None:
            tracker.record_ack(segment_id, scl)
            self.volume.on_pgcl(pg_index, tracker.pgcl)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read_block(
        self, block: int, pg_index: int, read_point: int
    ) -> Future:
        """Read one block at ``read_point``; resolves with
        ``(image_dict, version_lsn)``.

        Candidates are the full segments known, from ack bookkeeping, to be
        durable through ``read_point`` -- no quorum read.
        """
        future = Future(self.loop)
        self._issue_read(
            block, pg_index, read_point, future, exclude=frozenset()
        )
        return future

    def _read_candidates(
        self, pg_index: int, read_point: int, exclude: frozenset[str]
    ) -> list[str]:
        fulls = self._full_members_of(pg_index)
        tracker = self.pg_trackers.get(pg_index)
        durable: frozenset[str] = frozenset()
        if tracker is not None:
            durable = tracker.durable_members_at(read_point)
        candidates = durable & fulls
        if len(candidates - exclude) < 2:
            # Backend read fallback (the Taurus log tail): when fewer than
            # two full copies are caught up and reachable, log stores that
            # can materialize the read point on demand join the candidate
            # set, so hedging has somewhere to escalate.  Empty for Aurora.
            fallback = self.metadata.read_fallback_members_of_pg(pg_index)
            candidates |= durable & fallback
        if not candidates and self.optimistic_reads:
            candidates = frozenset(fulls)
            if not candidates - exclude:
                candidates |= self.metadata.read_fallback_members_of_pg(
                    pg_index
                )
        return sorted(candidates - exclude)

    def _issue_read(
        self,
        block: int,
        pg_index: int,
        read_point: int,
        future: Future,
        exclude: frozenset[str],
    ) -> None:
        candidates = self._read_candidates(pg_index, read_point, exclude)
        if not candidates:
            future.set_exception(
                SegmentUnavailableError(
                    f"no full segment durable through LSN {read_point} "
                    f"in PG {pg_index}"
                )
            )
            return
        plan = self.router.plan(candidates)
        self._dispatch_read(
            block, pg_index, read_point, plan.primary, plan, future,
            is_hedge=False, exclude=exclude,
        )
        if plan.explore is not None:
            self.stats.explores_issued += 1
            self._dispatch_read(
                block, pg_index, read_point, plan.explore, plan, future,
                is_hedge=False, exclude=exclude,
            )

    def _dispatch_read(
        self,
        block: int,
        pg_index: int,
        read_point: int,
        segment: str,
        plan: ReadPlan,
        future: Future,
        is_hedge: bool,
        exclude: frozenset[str] = frozenset(),
    ) -> None:
        self.stats.reads_issued += 1
        if is_hedge:
            self.stats.hedges_issued += 1
        outstanding = _OutstandingRead(
            block=block,
            pg_index=pg_index,
            read_point=read_point,
            segment=segment,
            issued_at=self.loop.now,
            plan=plan,
            future=future,
            is_hedge=is_hedge,
            exclude=exclude,
        )
        self._outstanding_reads.append(outstanding)
        request = ReadBlockRequest(
            pg_index=pg_index,
            block=block,
            read_point=read_point,
            epochs=self.epochs,
        )
        rpc_future = self._rpc(segment, request)
        rpc_future.add_done_callback(
            lambda f: self._on_read_reply(outstanding, f)
        )
        self._ensure_hedge_sweep()

    def _on_read_reply(self, outstanding: _OutstandingRead, rpc_future: Future) -> None:
        response = rpc_future.result()
        latency = self.loop.now - outstanding.issued_at
        self.latency_tracker.record(outstanding.segment, latency)
        outstanding.settled = True
        self._outstanding_reads = [
            r for r in self._outstanding_reads if not r.settled
        ]
        if self.health_probe is not None and not isinstance(
            response, RequestRejected
        ):
            self.health_probe.note_alive(outstanding.segment)
        if isinstance(response, RequestRejected):
            self.on_rejection(response)
            if not outstanding.future.done:
                # Refresh-and-retry, per the paper's stale-epoch rule; a
                # read-window rejection also steers the retry away from
                # the rejecting segment.
                self._issue_read(
                    outstanding.block,
                    outstanding.pg_index,
                    outstanding.read_point,
                    outstanding.future,
                    exclude=outstanding.exclude | {outstanding.segment},
                )
            return
        if isinstance(response, ReadBlockResponse) and not outstanding.future.done:
            self.stats.reads_completed += 1
            self.stats.read_latencies.append(latency)
            outstanding.future.set_result(
                (response.image_dict(), response.version_lsn)
            )
        self._inspect_outstanding_reads()

    def _inspect_outstanding_reads(self) -> None:
        """Hedge any overdue read (called on every completed I/O)."""
        now = self.loop.now
        for outstanding in list(self._outstanding_reads):
            if outstanding.future.done or outstanding.is_hedge:
                continue
            elapsed = now - outstanding.issued_at
            if not self.router.should_hedge(outstanding.segment, elapsed):
                continue
            target = self.router.hedge_target(outstanding.plan)
            if target is None or target == outstanding.segment:
                continue
            # Mark so we hedge each slow read at most once.
            outstanding.is_hedge = True
            if self.health_probe is not None:
                self.health_probe.note_hedge(outstanding.segment)
            self._dispatch_read(
                outstanding.block,
                outstanding.pg_index,
                outstanding.read_point,
                target,
                ReadPlan(primary=target, hedge_candidates=[]),
                outstanding.future,
                is_hedge=True,
            )

    def _ensure_hedge_sweep(self) -> None:
        if self._hedge_sweep_scheduled:
            return
        self._hedge_sweep_scheduled = True
        self.loop.schedule(self.config.hedge_sweep_interval, self._hedge_sweep)

    def _hedge_sweep(self) -> None:
        self._hedge_sweep_scheduled = False
        self._outstanding_reads = [
            r for r in self._outstanding_reads if not r.future.done
        ]
        if not self._outstanding_reads:
            return
        self._inspect_outstanding_reads()
        self._ensure_hedge_sweep()

    # ------------------------------------------------------------------
    # Quorum RPC helpers (recovery, membership, epoch bumps)
    # ------------------------------------------------------------------
    def quorum_rpc(
        self,
        pg_index: int,
        payload_factory: Callable[[str], object],
        quorum: str,
    ) -> Future:
        """Scatter an RPC to every member of a PG; resolve with the
        responses once the responder set satisfies the requested quorum
        expression (``"read"`` or ``"write"``).

        After quorum is reached a short grace period collects stragglers,
        so recovery sees *every reachable* segment, not a minimal quorum
        (see the discussion in :mod:`repro.core.membership`).
        """
        config = self.metadata.quorum_config(pg_index)
        members = self.members_of(pg_index)
        result = Future(self.loop)
        responses: dict[str, object] = {}
        state = {"resolve_scheduled": False}

        def _maybe_resolve(final: bool) -> None:
            if result.done:
                return
            responders = frozenset(responses)
            satisfied = (
                config.read_satisfied(responders)
                if quorum == "read"
                else config.write_satisfied(responders)
            )
            if final:
                if satisfied:
                    result.set_result(dict(responses))
                else:
                    result.set_exception(
                        SegmentUnavailableError(
                            f"PG {pg_index}: responders {sorted(responders)} "
                            f"never satisfied the {quorum} quorum"
                        )
                    )
                return
            if len(responses) == len(members):
                if satisfied:
                    result.set_result(dict(responses))
                return
            if satisfied and not state["resolve_scheduled"]:
                state["resolve_scheduled"] = True
                self.loop.schedule(
                    self.config.quorum_grace, _maybe_resolve, True
                )

        self.loop.schedule(self.config.quorum_deadline, _maybe_resolve, True)

        for member in members:
            future = self._rpc(member, payload_factory(member))

            def _on_reply(f: Future, member=member) -> None:
                reply = f.result()
                if isinstance(reply, RequestRejected):
                    self.on_rejection(reply)
                    return
                responses[member] = reply
                _maybe_resolve(False)

            future.add_done_callback(_on_reply)
        return result

    def scan_pg(self, pg_index: int) -> Future:
        """Recovery scan: gather SCLs + chain digests from a read quorum."""
        return self.quorum_rpc(
            pg_index,
            lambda _member: RecoveryScanRequest(
                pg_index=pg_index, epochs=self.epochs
            ),
            quorum="read",
        )

    def fence_pg(self, pg_index: int, new_epochs: EpochStamp) -> Future:
        """Establish ``new_epochs`` on a write quorum of ``pg_index``.

        This is the fence itself: once a write quorum has adopted the new
        volume epoch, no batch stamped with the prior epoch can reach a
        write quorum again (any two write quorums intersect), so a zombie
        predecessor can never acknowledge another commit.  The request
        presents the *new* stamp so the caller -- who has already adopted
        it locally -- is teaching, not being rejected.
        """
        return self.quorum_rpc(
            pg_index,
            lambda _member: EpochWrite(
                pg_index=pg_index, epochs=new_epochs, new_epochs=new_epochs
            ),
            quorum="write",
        )

    def truncate_pg(
        self, pg_index: int, pg_point: int, truncation, new_epochs: EpochStamp
    ) -> Future:
        """Install a truncation range + new epochs on a write quorum."""
        return self.quorum_rpc(
            pg_index,
            lambda _member: TruncateRequest(
                pg_index=pg_index,
                pg_point=pg_point,
                truncation=truncation,
                new_epochs=new_epochs,
            ),
            quorum="write",
        )

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def drop_transient_state(self) -> None:
        """Crash: buffers, trackers, and outstanding I/O are all ephemeral."""
        self._buffers.clear()
        self._outstanding_reads.clear()
        self._unacked.clear()
        self._resubmit_backoff.clear()
        self.pg_trackers.clear()
        self.volume = VolumeConsistencyTracker()
        self.commit_queue = CommitQueue()
        if self.audit_probe is not None:
            # Re-arm the fresh trackers: the probe outlives the crash even
            # though the per-generation tracker objects do not.
            probe = self.audit_probe
            probe.on_instance_crash(self.instance_id)
            self.volume.audit_probe = probe
            self.volume.audit_owner = self.instance_id
            self.commit_queue.audit_probe = probe
            self.commit_queue.audit_owner = self.instance_id
