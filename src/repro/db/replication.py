"""Physical replication stream from the writer to its read replicas.

"Aurora read replicas attach to the same storage volume as the writer
instance.  They receive a physical redo log stream from the writer instance
and use this to update only data blocks present in their local caches."
(section 3.2)

The stream carries three message kinds, all asynchronous and one-way:

- :class:`MTRChunk` -- "log records are only shipped from the writer
  instance in MTR chunks" (section 3.3): one sealed mini-transaction's
  records, applied atomically at the replica.
- :class:`VDLUpdate` -- "The writer instance sends VDL update control
  records as part of its replication stream" (section 3.4).  Replicas may
  only apply chunks at or below the writer's advertised VDL and anchor read
  views at these points.
- :class:`CommitNotice` -- "for efficiency reasons we ship commit
  notifications and maintain transaction commit history" (section 3.4).

Replication "is asynchronous" and adds "little latency ... to the write
path": publishing is fire-and-forget sends on the simulated network.

Like the storage driver's write path, the stream is boxcarred: items
published within a sub-millisecond window travel in one
:class:`ReplicationFrame` per replica instead of one wire message each
(consecutive :class:`VDLUpdate` items additionally coalesce to the newest,
since the VDL is monotone and chunks gate on whatever update arrives).
Framing only engages when the publisher is given an event loop; without
one it degrades to immediate per-item sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.records import LogRecord
from repro.sim.events import EventLoop


@dataclass(frozen=True)
class MTRChunk:
    """One mini-transaction's records (contiguous LSNs, last is mtr_end)."""

    writer_id: str
    records: tuple[LogRecord, ...]


@dataclass(frozen=True)
class VDLUpdate:
    """The writer's current Volume Durable LSN."""

    writer_id: str
    vdl: int


@dataclass(frozen=True)
class CommitNotice:
    """A transaction became durably committed (SCN passed the VCL)."""

    writer_id: str
    txn_id: int
    scn: int


@dataclass(frozen=True, slots=True)
class ReplicationFrame:
    """A boxcar of stream items (chunks / VDL updates / commit notices).

    Items apply in order at the replica, so a frame preserves exactly the
    per-sender ordering the unbatched stream had.
    """

    writer_id: str
    items: tuple

    # See repro.storage.messages.WriteBatch: marks boxcar payloads for the
    # network's batch-aware by_type stats.
    is_boxcar = True

    def boxcar_count(self) -> int:
        return len(self.items)


class ReplicationPublisher:
    """Writer-side fan-out of the replication stream."""

    def __init__(
        self,
        writer_id: str,
        send: Callable[[str, object], None],
        loop: EventLoop | None = None,
        frame_window: float = 0.05,
        frame_max_items: int = 64,
    ) -> None:
        self.writer_id = writer_id
        self._send = send
        self._loop = loop
        self.frame_window = frame_window
        self.frame_max_items = frame_max_items
        self._replicas: list[str] = []
        self._frame_items: list[object] = []
        self._flush_event = None
        self.chunks_published = 0
        self.vdl_updates_published = 0
        self.commit_notices_published = 0
        self.frames_published = 0

    @property
    def replicas(self) -> list[str]:
        return list(self._replicas)

    def attach_replica(self, replica_id: str) -> None:
        if replica_id not in self._replicas:
            self._replicas.append(replica_id)

    def detach_replica(self, replica_id: str) -> None:
        if replica_id in self._replicas:
            self._replicas.remove(replica_id)

    def publish_mtr(self, records: list[LogRecord]) -> None:
        if not self._replicas or not records:
            return
        chunk = MTRChunk(writer_id=self.writer_id, records=tuple(records))
        self._enqueue(chunk)
        self.chunks_published += 1

    def publish_vdl(self, vdl: int) -> None:
        if not self._replicas:
            return
        update = VDLUpdate(writer_id=self.writer_id, vdl=vdl)
        self._enqueue(update)
        self.vdl_updates_published += 1

    def publish_commit(self, txn_id: int, scn: int) -> None:
        if not self._replicas:
            return
        notice = CommitNotice(
            writer_id=self.writer_id, txn_id=txn_id, scn=scn
        )
        self._enqueue(notice)
        self.commit_notices_published += 1

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _enqueue(self, item: object) -> None:
        if self._loop is None:
            for replica in self._replicas:
                self._send(replica, item)
            return
        items = self._frame_items
        if (
            items
            and isinstance(item, VDLUpdate)
            and isinstance(items[-1], VDLUpdate)
        ):
            # The VDL is monotone and chunks gate on whichever update
            # arrives, so back-to-back updates collapse to the newest.
            items[-1] = item
            return
        items.append(item)
        if len(items) >= self.frame_max_items:
            self.flush_frame()
        elif self._flush_event is None:
            self._flush_event = self._loop.schedule(
                self.frame_window, self._on_flush_timer
            )

    def _on_flush_timer(self) -> None:
        self._flush_event = None
        self.flush_frame()

    def flush_frame(self) -> None:
        """Send the pending boxcar now (a lone item travels unframed)."""
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        if not self._frame_items:
            return
        items = tuple(self._frame_items)
        self._frame_items.clear()
        payload: object
        if len(items) == 1:
            payload = items[0]
        else:
            payload = ReplicationFrame(writer_id=self.writer_id, items=items)
            self.frames_published += 1
        for replica in self._replicas:
            self._send(replica, payload)
