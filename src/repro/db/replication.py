"""Physical replication stream from the writer to its read replicas.

"Aurora read replicas attach to the same storage volume as the writer
instance.  They receive a physical redo log stream from the writer instance
and use this to update only data blocks present in their local caches."
(section 3.2)

The stream carries three message kinds, all asynchronous and one-way:

- :class:`MTRChunk` -- "log records are only shipped from the writer
  instance in MTR chunks" (section 3.3): one sealed mini-transaction's
  records, applied atomically at the replica.
- :class:`VDLUpdate` -- "The writer instance sends VDL update control
  records as part of its replication stream" (section 3.4).  Replicas may
  only apply chunks at or below the writer's advertised VDL and anchor read
  views at these points.
- :class:`CommitNotice` -- "for efficiency reasons we ship commit
  notifications and maintain transaction commit history" (section 3.4).

Replication "is asynchronous" and adds "little latency ... to the write
path": publishing is fire-and-forget sends on the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.records import LogRecord


@dataclass(frozen=True)
class MTRChunk:
    """One mini-transaction's records (contiguous LSNs, last is mtr_end)."""

    writer_id: str
    records: tuple[LogRecord, ...]


@dataclass(frozen=True)
class VDLUpdate:
    """The writer's current Volume Durable LSN."""

    writer_id: str
    vdl: int


@dataclass(frozen=True)
class CommitNotice:
    """A transaction became durably committed (SCN passed the VCL)."""

    writer_id: str
    txn_id: int
    scn: int


class ReplicationPublisher:
    """Writer-side fan-out of the replication stream."""

    def __init__(
        self, writer_id: str, send: Callable[[str, object], None]
    ) -> None:
        self.writer_id = writer_id
        self._send = send
        self._replicas: list[str] = []
        self.chunks_published = 0
        self.vdl_updates_published = 0
        self.commit_notices_published = 0

    @property
    def replicas(self) -> list[str]:
        return list(self._replicas)

    def attach_replica(self, replica_id: str) -> None:
        if replica_id not in self._replicas:
            self._replicas.append(replica_id)

    def detach_replica(self, replica_id: str) -> None:
        if replica_id in self._replicas:
            self._replicas.remove(replica_id)

    def publish_mtr(self, records: list[LogRecord]) -> None:
        if not self._replicas or not records:
            return
        chunk = MTRChunk(writer_id=self.writer_id, records=tuple(records))
        for replica in self._replicas:
            self._send(replica, chunk)
        self.chunks_published += 1

    def publish_vdl(self, vdl: int) -> None:
        if not self._replicas:
            return
        update = VDLUpdate(writer_id=self.writer_id, vdl=vdl)
        for replica in self._replicas:
            self._send(replica, update)
        self.vdl_updates_published += 1

    def publish_commit(self, txn_id: int, scn: int) -> None:
        if not self._replicas:
            return
        notice = CommitNotice(
            writer_id=self.writer_id, txn_id=txn_id, scn=scn
        )
        for replica in self._replicas:
            self._send(replica, notice)
        self.commit_notices_published += 1
