"""The database kernel: writer instance, replicas, and their substrate.

"Each database instance acts as a SQL endpoint and includes most of the
components of a traditional database kernel (query processing, access
methods, transactions, locking, buffer caching, and undo management).  Some
database functions, including redo logging, materialization of data blocks,
garbage collection, and backup/restore, are offloaded to our storage fleet."
(section 2.1)

Modules:

- :mod:`repro.db.mtr` -- mini-transactions: atomic multi-block change sets.
- :mod:`repro.db.buffer_cache` -- the buffer pool with the WAL eviction
  invariant (a dirty block may not be discarded until its redo is durable).
- :mod:`repro.db.locks` -- key-range row locking at the database tier.
- :mod:`repro.db.mvcc` -- read views and version visibility (snapshot
  isolation by LSN comparison).
- :mod:`repro.db.txn` -- transactions, undo, and the commit/rollback flows.
- :mod:`repro.db.btree` -- the B-tree access method whose structural
  changes are MTR-atomic.
- :mod:`repro.db.driver` -- the storage driver: per-PG write buffers, the
  jitter-free boxcar, acknowledgement processing, consistency points, and
  hedged reads.
- :mod:`repro.db.instance` -- the single-writer database instance.
- :mod:`repro.db.replication` / :mod:`repro.db.replica` -- physical
  replication and read replicas.
- :mod:`repro.db.cluster` -- one-call construction of a full simulated
  Aurora deployment (the library's main entry point).
- :mod:`repro.db.proxy` -- the connection-multiplexing serving tier
  (bounded backend pool, lag-aware read routing with read-your-writes
  floors, failover ride-through).
"""

from repro.db.cluster import AuroraCluster, ClusterConfig
from repro.db.instance import WriterInstance
from repro.db.proxy import (
    ConnectionProxy,
    LogicalSession,
    ProxyConfig,
    ProxyStats,
    ReplicaLagBalancer,
)
from repro.db.replica import ReplicaInstance
from repro.db.session import Session

__all__ = [
    "AuroraCluster",
    "ClusterConfig",
    "ConnectionProxy",
    "LogicalSession",
    "ProxyConfig",
    "ProxyStats",
    "ReplicaInstance",
    "ReplicaLagBalancer",
    "Session",
    "WriterInstance",
]
