"""Mini-transactions: the unit of structural atomicity.

"Each database transaction in Aurora MySQL is a sequence of ordered
mini-transactions (MTRs) that are performed atomically.  Each MTR is
composed of changes to one or more data blocks, represented as a batch of
sequenced redo log records ...  The database instance acquires latches for
each data block, allocates a batch of contiguously ordered LSNs, generates
the log records, issues a write, shards them into write buffers for each
protection group associated with the blocks" (section 3.3).

:class:`MTRBuilder` collects block changes; :meth:`MTRBuilder.seal` performs
the LSN allocation and record generation, maintaining all three back-chains.
The last record of the batch is flagged ``mtr_end`` -- the only legal VDL
points.  Chain state (last volume LSN, last LSN per PG, last LSN per block)
lives in :class:`ChainState`, owned by the writer and rebuilt at recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lsn import NULL_LSN, LSNAllocator
from repro.core.records import NO_BLOCK, LogRecord, RecordKind, RedoPayload
from repro.errors import ConfigurationError


@dataclass
class ChainState:
    """The writer's back-chain bookkeeping across all records it generates."""

    last_volume_lsn: int = NULL_LSN
    last_pg_lsn: dict[int, int] = field(default_factory=dict)
    last_block_lsn: dict[int, int] = field(default_factory=dict)

    def thread(
        self, lsn: int, pg_index: int, block: int
    ) -> tuple[int, int, int]:
        """Return and update (prev_volume, prev_pg, prev_block) for a record."""
        prev_volume = self.last_volume_lsn
        prev_pg = self.last_pg_lsn.get(pg_index, NULL_LSN)
        prev_block = (
            self.last_block_lsn.get(block, NULL_LSN)
            if block != NO_BLOCK
            else NULL_LSN
        )
        self.last_volume_lsn = lsn
        self.last_pg_lsn[pg_index] = lsn
        if block != NO_BLOCK:
            self.last_block_lsn[block] = lsn
        return prev_volume, prev_pg, prev_block

    def reset_to(self, volume_lsn: int, pg_lsns: dict[int, int]) -> None:
        """Re-anchor the chains after crash recovery."""
        self.last_volume_lsn = volume_lsn
        self.last_pg_lsn = dict(pg_lsns)
        # Block chains are only used for on-demand materialization hints;
        # they restart empty and re-thread from the recovered blocks.
        self.last_block_lsn = {}


@dataclass
class BlockChange:
    """One pending change inside an open MTR."""

    block: int
    pg_index: int
    payload: RedoPayload
    kind: RecordKind = RecordKind.DATA


class MTRBuilder:
    """Collects the block changes of one mini-transaction.

    The builder is deliberately not thread-aware: in the discrete-event
    simulation the writer executes one event at a time, which plays the role
    of the paper's block latches (no reader can observe a half-built MTR on
    the writer).
    """

    _next_mtr_id = 1

    def __init__(self, txn_id: int = 0) -> None:
        self.txn_id = txn_id
        self.mtr_id = MTRBuilder._next_mtr_id
        MTRBuilder._next_mtr_id += 1
        self.changes: list[BlockChange] = []
        #: Overlay of block images as staged by this MTR (visible only to
        #: reads performed on behalf of this MTR -- the latch analogue).
        self.staged_images: dict[int, dict] = {}
        self._sealed = False

    def change(
        self,
        block: int,
        pg_index: int,
        payload: RedoPayload,
        kind: RecordKind = RecordKind.DATA,
    ) -> None:
        if self._sealed:
            raise ConfigurationError("MTR already sealed")
        self.changes.append(
            BlockChange(block=block, pg_index=pg_index, payload=payload, kind=kind)
        )

    def seal(
        self, allocator: LSNAllocator, chains: ChainState
    ) -> list[LogRecord]:
        """Allocate contiguous LSNs and emit the record batch.

        The final record carries ``mtr_end=True``; all earlier records carry
        ``mtr_end=False`` so the VDL can never land mid-MTR.
        """
        if self._sealed:
            raise ConfigurationError("MTR already sealed")
        if not self.changes:
            raise ConfigurationError("cannot seal an empty MTR")
        self._sealed = True
        lsns = allocator.allocate(len(self.changes))
        records: list[LogRecord] = []
        for offset, (lsn, change) in enumerate(zip(lsns, self.changes)):
            prev_volume, prev_pg, prev_block = chains.thread(
                lsn, change.pg_index, change.block
            )
            records.append(
                LogRecord(
                    lsn=lsn,
                    prev_volume_lsn=prev_volume,
                    prev_pg_lsn=prev_pg,
                    prev_block_lsn=prev_block,
                    block=change.block,
                    pg_index=change.pg_index,
                    kind=change.kind,
                    payload=change.payload,
                    txn_id=self.txn_id,
                    mtr_id=self.mtr_id,
                    mtr_end=(offset == len(self.changes) - 1),
                )
            )
        return records

    def __len__(self) -> int:
        return len(self.changes)
