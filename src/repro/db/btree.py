"""B-tree access method with MTR-atomic structural changes.

"Structural changes to the database, for example B-Tree splits and merges,
must be made visible ... atomically" (section 3.3).  Every operation here
funnels its block changes into a single :class:`~repro.db.mtr.MTRBuilder`,
so a split that touches a leaf, a new sibling, a parent, and the tree meta
block occupies one contiguous LSN batch with a single ``mtr_end`` -- the
atomicity unit replicas and the VDL respect.

Layout (all images are plain dicts, the storage block format):

- **meta block**: ``{"root": b, "height": h, "next_block": n}``.
- **internal node**: ``{"type": "internal", "keys": (...), "children": (...)}``
  with ``len(children) == len(keys) + 1``; child ``i`` covers keys strictly
  below ``keys[i]``.
- **leaf node**: ``{"type": "leaf", "next": b_or_None, ("k", key): versions}``
  -- one image entry per row, keyed by a ``("k", key)`` tuple, holding that
  row's MVCC version chain (oldest first).  Row updates therefore log a
  one-entry :class:`~repro.core.records.BlockPut` delta, not a page image.

Keys within one tree must be mutually comparable (all ints, or all strs).

All traversals are generator functions driven by the simulation's process
machinery: ``yield from`` a traversal inside an instance process, and block
reads transparently hit the buffer cache or go to storage.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Generator, Hashable, Iterable

from repro.core.records import BlockPut, BlockReplace, RedoPayload
from repro.db.mtr import MTRBuilder
from repro.db.mvcc import (
    ReadView,
    TransactionStatusRegistry,
    Version,
    prune_versions,
    visible_value,
)
from repro.errors import ConfigurationError


class BlockIO:
    """What the tree needs from its host instance.

    ``read_image`` is a generator producing the block's current image (MTR
    overlay first, then buffer cache, then storage).  ``stage_change``
    applies a payload to the overlay image and registers it in the MTR.
    ``allocate_block`` hands out a fresh block number, durably bumping the
    meta block's ``next_block`` inside the same MTR.
    """

    def read_image(
        self, block: int, mtr: MTRBuilder | None = None
    ) -> Generator[Any, Any, dict]:
        raise NotImplementedError

    def stage_change(
        self, mtr: MTRBuilder, block: int, payload: RedoPayload
    ) -> dict:
        raise NotImplementedError

    def allocate_block(self, mtr: MTRBuilder) -> Generator[Any, Any, int]:
        raise NotImplementedError


def row_key(key: Hashable) -> tuple[str, Hashable]:
    """Image key under which a row's version chain is stored in a leaf."""
    return ("k", key)


def leaf_rows(image: dict) -> list[tuple[Hashable, tuple[Version, ...]]]:
    """Sorted (key, versions) rows of a leaf image."""
    rows = [
        (image_key[1], versions)
        for image_key, versions in image.items()
        if isinstance(image_key, tuple) and image_key[0] == "k"
    ]
    rows.sort(key=lambda kv: kv[0])
    return rows


def empty_leaf(next_block: int | None = None) -> dict:
    return {"type": "leaf", "next": next_block}


class BTree:
    """A B-tree over versioned rows, hosted by a database instance."""

    def __init__(
        self,
        io: BlockIO,
        registry: TransactionStatusRegistry,
        meta_block: int,
        max_leaf_rows: int = 16,
        max_internal_keys: int = 16,
    ) -> None:
        if max_leaf_rows < 2 or max_internal_keys < 2:
            raise ConfigurationError("fanout parameters must be >= 2")
        self.io = io
        self.registry = registry
        self.meta_block = meta_block
        self.max_leaf_rows = max_leaf_rows
        self.max_internal_keys = max_internal_keys

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(
        self, mtr: MTRBuilder, root_block: int, first_free_block: int
    ) -> None:
        """Create an empty tree (meta + root leaf) inside ``mtr``."""
        self.io.stage_change(
            mtr,
            self.meta_block,
            BlockReplace.of(
                {
                    "root": root_block,
                    "height": 0,
                    "next_block": first_free_block,
                }
            ),
        )
        self.io.stage_change(
            mtr, root_block, BlockReplace.of(empty_leaf())
        )

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Hashable, mtr: MTRBuilder | None = None):
        """Descend to the leaf covering ``key``.

        Returns ``(meta_image, path, leaf_block, leaf_image)`` where
        ``path`` is a list of ``(block, image, child_index)`` internal
        steps from the root down.  When ``mtr`` is given, reads see that
        MTR's staged-but-unsealed images (and nobody else's).
        """
        meta = yield from self.io.read_image(self.meta_block, mtr)
        if "root" not in meta:
            raise ConfigurationError("B-tree is not bootstrapped")
        node = meta["root"]
        path: list[tuple[int, dict, int]] = []
        for _level in range(meta["height"]):
            image = yield from self.io.read_image(node, mtr)
            keys = image["keys"]
            child_index = bisect_right(keys, key)
            path.append((node, image, child_index))
            node = image["children"][child_index]
        leaf_image = yield from self.io.read_image(node, mtr)
        return meta, path, node, leaf_image

    # ------------------------------------------------------------------
    # Point reads
    # ------------------------------------------------------------------
    def get(self, view: ReadView, key: Hashable):
        """Visible value of ``key`` under ``view`` -- ``(found, value)``."""
        _meta, _path, _leaf, image = yield from self._find_leaf(key)
        versions = image.get(row_key(key), ())
        return visible_value(versions, view, self.registry)

    def versions_of(self, key: Hashable):
        """Raw version chain of ``key`` (diagnostics and undo)."""
        _meta, _path, _leaf, image = yield from self._find_leaf(key)
        return image.get(row_key(key), ())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(
        self, mtr: MTRBuilder, txn_id: int, key: Hashable, value: Any
    ):
        """Append a version of ``key``; returns the prior version chain.

        Splits the leaf (and ancestors, and possibly the root) inside the
        same MTR when the row count exceeds the fanout.
        """
        meta, path, leaf, image = yield from self._find_leaf(key, mtr)
        prior = image.get(row_key(key), ())
        new_versions = prior + ((txn_id, value),)
        new_image = self.io.stage_change(
            mtr, leaf, BlockPut(entries=((row_key(key), new_versions),))
        )
        if len(leaf_rows(new_image)) > self.max_leaf_rows:
            yield from self._split_leaf(mtr, meta, path, leaf, new_image)
        return prior

    def replace_versions(
        self,
        mtr: MTRBuilder,
        key: Hashable,
        versions: tuple[Version, ...],
    ):
        """Overwrite ``key``'s version chain (rollback / purge paths)."""
        _meta, _path, leaf, _image = yield from self._find_leaf(key, mtr)
        self.io.stage_change(
            mtr, leaf, BlockPut(entries=((row_key(key), versions),))
        )

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def scan(self, view: ReadView, low: Hashable, high: Hashable):
        """Visible (key, value) pairs with ``low <= key <= high``, in order."""
        _meta, _path, leaf, image = yield from self._find_leaf(low)
        results: list[tuple[Hashable, Any]] = []
        while True:
            for key, versions in leaf_rows(image):
                if key < low:
                    continue
                if key > high:
                    return results
                found, value = visible_value(versions, view, self.registry)
                if found:
                    results.append((key, value))
            next_block = image.get("next")
            if next_block is None:
                return results
            leaf = next_block
            image = yield from self.io.read_image(leaf)

    def iterate_leaves(self):
        """Yield every ``(leaf_block, image)`` left to right (maintenance)."""
        meta = yield from self.io.read_image(self.meta_block)
        node = meta["root"]
        for _level in range(meta["height"]):
            image = yield from self.io.read_image(node)
            node = image["children"][0]
        leaves: list[tuple[int, dict]] = []
        while node is not None:
            image = yield from self.io.read_image(node)
            leaves.append((node, image))
            node = image.get("next")
        return leaves

    # ------------------------------------------------------------------
    # Maintenance: version purge (undo application / MVCC GC)
    # ------------------------------------------------------------------
    def prune_leaf(
        self,
        mtr: MTRBuilder,
        leaf_block: int,
        image: dict,
        purge_point: int,
        doomed_txns: frozenset[int],
    ) -> int:
        """Prune one leaf's version chains; returns rows changed."""
        changed = 0
        for key, versions in leaf_rows(image):
            pruned = prune_versions(
                versions, purge_point, self.registry, doomed_txns
            )
            if pruned != versions:
                self.io.stage_change(
                    mtr,
                    leaf_block,
                    BlockPut(entries=((row_key(key), pruned),)),
                )
                changed += 1
        return changed

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def _split_leaf(self, mtr, meta, path, leaf_block, image):
        rows = leaf_rows(image)
        mid = len(rows) // 2
        left_rows, right_rows = rows[:mid], rows[mid:]
        separator = right_rows[0][0]
        right_block = yield from self.io.allocate_block(mtr)
        right_image = empty_leaf(next_block=image.get("next"))
        for key, versions in right_rows:
            right_image[row_key(key)] = versions
        left_image = empty_leaf(next_block=right_block)
        for key, versions in left_rows:
            left_image[row_key(key)] = versions
        self.io.stage_change(mtr, right_block, BlockReplace.of(right_image))
        self.io.stage_change(mtr, leaf_block, BlockReplace.of(left_image))
        yield from self._insert_into_parent(
            mtr, meta, path, leaf_block, separator, right_block
        )

    def _insert_into_parent(
        self, mtr, meta, path, left_block, separator, right_block
    ):
        if not path:
            yield from self._grow_root(
                mtr, meta, left_block, separator, right_block
            )
            return
        node, image, child_index = path[-1]
        keys = list(image["keys"])
        children = list(image["children"])
        keys.insert(child_index, separator)
        children.insert(child_index + 1, right_block)
        if len(keys) <= self.max_internal_keys:
            self.io.stage_change(
                mtr,
                node,
                BlockReplace.of(
                    {
                        "type": "internal",
                        "keys": tuple(keys),
                        "children": tuple(children),
                    }
                ),
            )
            return
        # Split this internal node; the middle key moves up.
        mid = len(keys) // 2
        promoted = keys[mid]
        right_node = yield from self.io.allocate_block(mtr)
        self.io.stage_change(
            mtr,
            node,
            BlockReplace.of(
                {
                    "type": "internal",
                    "keys": tuple(keys[:mid]),
                    "children": tuple(children[: mid + 1]),
                }
            ),
        )
        self.io.stage_change(
            mtr,
            right_node,
            BlockReplace.of(
                {
                    "type": "internal",
                    "keys": tuple(keys[mid + 1:]),
                    "children": tuple(children[mid + 1:]),
                }
            ),
        )
        yield from self._insert_into_parent(
            mtr, meta, path[:-1], node, promoted, right_node
        )

    def _grow_root(self, mtr, meta, left_block, separator, right_block):
        new_root = yield from self.io.allocate_block(mtr)
        self.io.stage_change(
            mtr,
            new_root,
            BlockReplace.of(
                {
                    "type": "internal",
                    "keys": (separator,),
                    "children": (left_block, right_block),
                }
            ),
        )
        self.io.stage_change(
            mtr,
            self.meta_block,
            BlockPut(
                entries=(
                    ("root", new_root),
                    ("height", meta["height"] + 1),
                )
            ),
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_structure(self):
        """Verify ordering and fanout invariants; returns leaf count.

        Used by integration tests and the failure-injection suites to
        assert the tree survived splits, crashes, and recovery intact.
        """
        meta = yield from self.io.read_image(self.meta_block)
        leaves = yield from self.iterate_leaves()
        previous_key = None
        for _block, image in leaves:
            rows = leaf_rows(image)
            if len(rows) > self.max_leaf_rows:
                raise ConfigurationError(
                    f"leaf overflow: {len(rows)} rows"
                )
            for key, _versions in rows:
                if previous_key is not None and key <= previous_key:
                    raise ConfigurationError(
                        f"key order violated: {key!r} after {previous_key!r}"
                    )
                previous_key = key
        del meta
        return len(leaves)


def visible_rows(
    rows: Iterable[tuple[Hashable, tuple[Version, ...]]],
    view: ReadView,
    registry: TransactionStatusRegistry,
) -> list[tuple[Hashable, Any]]:
    """Filter raw leaf rows down to what a view can see (helper)."""
    visible = []
    for key, versions in rows:
        found, value = visible_value(versions, view, registry)
        if found:
            visible.append((key, value))
    return visible


# Re-export for convenience so callers can use insort-based key batching
# without importing bisect themselves.
__all__ = [
    "BTree",
    "BlockIO",
    "empty_leaf",
    "insort",
    "leaf_rows",
    "row_key",
    "visible_rows",
]
