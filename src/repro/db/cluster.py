"""One-call construction and administration of a simulated Aurora cluster.

:class:`AuroraCluster` wires together everything the paper describes:

- a deterministic event loop, network, and failure injector,
- three Availability Zones hosting six storage nodes per protection group
  (two per AZ), optionally in the section-4.2 full/tail mix,
- the storage metadata service, the simulated S3 archive,
- a single writer instance and any number of read replicas,

and exposes the administrative flows of section 4 as methods: segment
replacement with quorum sets and membership epochs (Figure 5), volume
growth with geometry epochs, writer crash/recovery, and replica promotion.

This is the public entry point most users want::

    from repro import AuroraCluster

    cluster = AuroraCluster.build(seed=7)
    db = cluster.session()
    txn = db.begin()
    db.put(txn, "k", "v")
    db.commit(txn)                      # waits for 4/6 quorum durability
    assert db.get("k") == "v"
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.membership import MembershipState, verify_transition_safety
from repro.core.quorum import (
    QuorumConfig,
    QuorumLeaf,
    full_tail_config,
    transition_config,
)
from repro.db.instance import InstanceConfig, WriterInstance
from repro.db.replica import ReplicaConfig, ReplicaInstance
from repro.db.session import ClusterSession, Session
from repro.errors import (
    ConfigurationError,
    FailoverInProgressError,
    MembershipError,
)
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Network
from repro.sim.process import Process
from repro.storage.backend import resolve_backend
from repro.storage.backup import SimulatedS3
from repro.storage.messages import BaselineRequest, BaselineResponse, EpochWrite
from repro.storage.metadata import SegmentPlacement, StorageMetadataService
from repro.storage.node import StorageNode, StorageNodeConfig
from repro.storage.segment import Segment, SegmentKind
from repro.storage.volume import VolumeGeometry

#: Slot -> AZ assignment: two segments per AZ, one full per AZ when the
#: full/tail mix is enabled (full slots are 0, 2, 4).
AZS = ("az1", "az2", "az3")
FULL_SLOTS = (0, 2, 4)


@dataclass
class ClusterConfig:
    """Shape of the simulated deployment."""

    seed: int = 42
    pg_count: int = 1
    blocks_per_pg: int = 4096
    #: Use the section-4.2 cost-reducing mix: 3 full + 3 tail segments.
    full_tail: bool = False
    #: Storage backend: ``"aurora"`` (default), ``"taurus"``, or a
    #: :class:`repro.storage.backend.StorageBackend` instance.
    backend: object = "aurora"
    instance: InstanceConfig = field(default_factory=InstanceConfig)
    replica: ReplicaConfig = field(default_factory=ReplicaConfig)
    node: StorageNodeConfig = field(default_factory=StorageNodeConfig)
    #: Optional network latency model overrides (defaults: see repro.sim).
    intra_az_latency: object = None
    cross_az_latency: object = None
    #: Prefix for segment/writer names (lets several volumes share one
    #: simulated network, e.g. the multi-writer extension).
    name_prefix: str = ""


    def __post_init__(self) -> None:
        if self.pg_count < 1:
            raise ConfigurationError("pg_count must be >= 1")


class _FullTailMetadataService(StorageMetadataService):
    """Metadata service aware of the full/tail quorum set (section 4.2).

    For a stable membership the quorum config is the full/tail quorum set;
    during a membership transition it falls back to the uniform 4/6-based
    transition config (reads still route to full segments only, via the
    placement kinds).
    """

    def quorum_config(self, pg_index: int) -> QuorumConfig:
        if self.has_quorum_override(pg_index):
            return super().quorum_config(pg_index)
        state = self.membership(pg_index)
        if not state.is_stable:
            return transition_config(state.member_groups())
        members = sorted(state.members)
        fulls = [
            m
            for m in members
            if self.placement(m).kind is SegmentKind.FULL
        ]
        tails = [
            m
            for m in members
            if self.placement(m).kind is SegmentKind.TAIL
        ]
        if len(fulls) == 3 and len(tails) == 3:
            return full_tail_config(fulls, tails)
        return transition_config(state.member_groups())


class AuroraCluster:
    """A fully wired simulated Aurora deployment."""

    def __init__(
        self,
        config: ClusterConfig,
        loop: EventLoop,
        rng: random.Random,
        network: Network,
        failures: FailureInjector,
        metadata: StorageMetadataService,
        s3: SimulatedS3,
    ) -> None:
        self.config = config
        self.loop = loop
        self.rng = rng
        self.network = network
        self.failures = failures
        self.metadata = metadata
        self.backend = metadata.backend
        self.s3 = s3
        self.nodes: dict[str, StorageNode] = {}
        self.writer: WriterInstance | None = None
        self.replicas: dict[str, ReplicaInstance] = {}
        self._writer_counter = 0
        self._candidate_counter = 0
        #: Optional :class:`repro.audit.Auditor`; see :meth:`arm_auditor`.
        self.auditor = None
        #: Optional self-healing control plane; see :meth:`arm_healer`.
        self.health = None
        self.healer = None
        #: Optional database-tier failover plane; see :meth:`arm_failover`.
        self.db_health = None
        self.failover = None
        #: True while a :class:`repro.repair.FailoverCoordinator` is mid
        #: promotion; gates new sessions and suppresses monitor wiring for
        #: the successor until it is actually open.
        self.failover_in_progress = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def segment_name(self, pg_index: int, slot: int, generation: int = 0) -> str:
        base = (
            f"{self.config.name_prefix}pg{pg_index}-"
            f"{chr(ord('a') + slot)}"
        )
        return base if generation == 0 else f"{base}.{generation}"

    @classmethod
    def build(
        cls,
        config: ClusterConfig | None = None,
        seed: int | None = None,
        bootstrap: bool = True,
        shared: tuple | None = None,
    ) -> "AuroraCluster":
        """Create a cluster: storage fleet + writer, ready for traffic.

        Pass ``shared=(loop, network, failures, rng)`` to place this
        volume on existing simulated infrastructure (used by the
        multi-writer extension to co-locate several volumes); use a
        distinct ``config.name_prefix`` per volume in that case.
        """
        config = config if config is not None else ClusterConfig()
        if seed is not None:
            config.seed = seed
        if shared is not None:
            loop, network, failures, rng = shared
        else:
            rng = random.Random(config.seed)
            loop = EventLoop()
            network = Network(
                loop,
                rng,
                intra_az=config.intra_az_latency,
                cross_az=config.cross_az_latency,
            )
            failures = FailureInjector(loop, network, rng)
        backend = resolve_backend(config.backend, full_tail=config.full_tail)
        geometry = VolumeGeometry(
            blocks_per_pg=config.blocks_per_pg,
            pg_count=config.pg_count,
            copies_per_pg=backend.slot_count,
        )
        metadata_cls = (
            _FullTailMetadataService if config.full_tail
            else StorageMetadataService
        )
        metadata = metadata_cls(geometry, backend=backend)
        s3 = SimulatedS3()
        cluster = cls(config, loop, rng, network, failures, metadata, s3)
        for pg_index in range(config.pg_count):
            cluster._create_protection_group(pg_index)
        cluster._start_nodes()
        cluster._create_writer(bootstrap=bootstrap)
        return cluster

    def _create_protection_group(self, pg_index: int) -> None:
        layout = self.backend.segment_layout()
        members = []
        for slot, spec in enumerate(layout):
            segment_id = self.segment_name(pg_index, slot)
            members.append(segment_id)
            self._create_storage_node(segment_id, pg_index, spec.az, spec.kind)
        self.metadata.set_membership(
            pg_index,
            MembershipState.initial(members, slot_count=len(layout)),
        )

    def _create_storage_node(
        self, segment_id: str, pg_index: int, az: str, kind: SegmentKind
    ) -> StorageNode:
        segment = Segment(segment_id, pg_index, kind)
        node = StorageNode(
            segment=segment,
            metadata=self.metadata,
            s3=self.s3,
            rng=self.rng,
            config=self.config.node,
        )
        self.network.attach(node, az=az)
        self.failures.register_az(az, {segment_id})
        self.nodes[segment_id] = node
        self.metadata.place_segment(
            SegmentPlacement(
                segment_id=segment_id,
                pg_index=pg_index,
                node=segment_id,
                az=az,
                kind=kind,
            )
        )
        if self.auditor is not None:
            node.attach_audit_probe(self.auditor)
        if self.health is not None:
            node.health_probe = self.health
        if self.db_health is not None:
            node.db_health_probe = self.db_health
        return node

    def _start_nodes(self) -> None:
        for node in self.nodes.values():
            node.start()

    def _create_writer(self, bootstrap: bool) -> WriterInstance:
        self._writer_counter += 1
        writer = WriterInstance(
            name=f"{self.config.name_prefix}writer-{self._writer_counter}",
            metadata=self.metadata,
            rng=self.rng,
            config=self.config.instance,
        )
        self.network.attach(writer, az=AZS[0])
        writer.start()
        if self.auditor is not None:
            writer.driver.attach_audit_probe(self.auditor)
        if self.health is not None:
            writer.driver.health_probe = self.health
        if self.db_health is not None and not self.failover_in_progress:
            # During a coordinated failover the successor is registered by
            # the coordinator once promotion succeeds -- registering it
            # here, mid-recovery, would let its (legitimate) silence be
            # judged as a death.
            from repro.repair import WRITER

            self.db_health.register_instance(writer.name, WRITER)
        if bootstrap:
            writer.bootstrap()
            # The volume is only usable once the bootstrap MTR is durable
            # (otherwise an instant crash would recover an empty volume).
            for _ in range(200):
                if writer.vcl >= writer.allocator.highest_allocated:
                    break
                self.loop.run(until=self.loop.now + 1.0)
        self.writer = writer
        return writer

    # ------------------------------------------------------------------
    # Invariant auditing
    # ------------------------------------------------------------------
    def arm_auditor(self, auditor) -> None:
        """Attach a :class:`repro.audit.Auditor` to every protocol
        component: current writer, storage nodes, replicas, and geometry.
        Components created later (candidates, promoted writers, new
        replicas) are armed automatically.
        """
        self.auditor = auditor
        auditor.bind_loop(self.loop)
        self.metadata.geometry.audit_probe = auditor
        if self.writer is not None:
            self.writer.driver.attach_audit_probe(auditor)
        for node in self.nodes.values():
            node.attach_audit_probe(auditor)
        for replica in self.replicas.values():
            replica.audit_probe = auditor
            replica.driver.attach_audit_probe(auditor)

    # ------------------------------------------------------------------
    # Self-healing (failure detection + autonomous Figure 5 repairs)
    # ------------------------------------------------------------------
    def arm_healer(
        self, health_config=None, repair_config=None
    ) -> tuple:
        """Attach the self-healing control plane.

        Wires a :class:`repro.repair.HealthMonitor` as the health probe of
        the writer's driver and every storage node (components created
        later -- candidates, promoted writers -- are wired automatically),
        starts its sweep, and subscribes a
        :class:`repro.repair.RepairPlanner` that drives Figure 5 for every
        confirmed-dead segment.  Returns ``(monitor, planner)``.
        """
        from repro.repair import HealthMonitor, RepairPlanner

        monitor = HealthMonitor(self.loop, self.metadata, health_config)
        self.health = monitor
        if self.writer is not None:
            self.writer.driver.health_probe = monitor
        for node in self.nodes.values():
            node.health_probe = monitor
        monitor.start()
        self.healer = RepairPlanner(self, monitor, repair_config)
        return monitor, self.healer

    # ------------------------------------------------------------------
    # Database-tier failover (autonomous writer promotion)
    # ------------------------------------------------------------------
    def arm_failover(
        self, db_health_config=None, failover_config=None
    ) -> tuple:
        """Attach the database-tier failover plane.

        Wires a :class:`repro.repair.DbHealthMonitor` as the db-health
        probe of every storage node and replica (so the passive signals
        they already receive -- write batches, GC-floor heartbeats, the
        redo stream -- double as liveness evidence), registers the current
        writer and replicas, and subscribes a
        :class:`repro.repair.FailoverCoordinator` that answers a confirmed
        writer death with a fenced replica promotion.  Returns
        ``(monitor, coordinator)``.
        """
        from repro.repair import (
            REPLICA,
            WRITER,
            DbHealthMonitor,
            FailoverCoordinator,
        )

        reference = (
            self.health.freshest_signal if self.health is not None else None
        )
        monitor = DbHealthMonitor(
            self.loop, db_health_config, reference_frontier=reference
        )
        self.db_health = monitor
        for node in self.nodes.values():
            node.db_health_probe = monitor
        for name, replica in self.replicas.items():
            replica.db_health_probe = monitor
            monitor.register_instance(name, REPLICA)
        if self.writer is not None:
            monitor.register_instance(self.writer.name, WRITER)
        monitor.start()
        self.failover = FailoverCoordinator(self, monitor, failover_config)
        return monitor, self.failover

    # ------------------------------------------------------------------
    # Client access
    # ------------------------------------------------------------------
    def session(self) -> Session:
        """A client session against the writer."""
        if self.writer is None or self.failover_in_progress:
            raise FailoverInProgressError(
                "writer endpoint unresolved: a failover is in progress; "
                "retry once promotion completes"
            )
        return Session(self.writer)

    def cluster_session(self) -> "ClusterSession":
        """A failover-aware session: tracks the current writer across
        promotions and retries idempotent operations transparently."""
        return ClusterSession(self)

    def replica_session(self, name: str) -> Session:
        if name not in self.replicas:
            if self.failover_in_progress:
                # The replica may be mid-promotion: not gone, just not a
                # replica any more.  Typed + retryable, per the driver
                # contract.
                raise FailoverInProgressError(
                    f"replica {name!r} unavailable: a failover is in "
                    "progress; retry once promotion completes"
                )
            raise ConfigurationError(f"no replica named {name!r}")
        return Session(self.replicas[name])

    def run_for(self, duration_ms: float) -> None:
        """Advance simulated time (lets background activity run)."""
        self.loop.run(until=self.loop.now + duration_ms)

    def settle(self) -> None:
        """Drain every scheduled event except self-rescheduling ticks.

        Background ticks reschedule forever, so we advance in bounded
        slices until the volume is fully durable (VCL caught up).
        """
        for _ in range(200):
            if self.writer.driver.volume.lag == 0:
                return
            self.run_for(5.0)

    # ------------------------------------------------------------------
    # Replicas (section 3.2)
    # ------------------------------------------------------------------
    def add_replica(self, name: str | None = None) -> ReplicaInstance:
        name = name or f"replica-{len(self.replicas) + 1}"
        replica = ReplicaInstance(
            name=name,
            metadata=self.metadata,
            rng=self.rng,
            config=self.config.replica,
        )
        az = AZS[(1 + len(self.replicas)) % 3]
        self.network.attach(replica, az=az)
        replica.start()
        if self.auditor is not None:
            replica.audit_probe = self.auditor
            replica.driver.attach_audit_probe(self.auditor)
        if self.db_health is not None:
            from repro.repair import REPLICA

            replica.db_health_probe = self.db_health
            self.db_health.register_instance(name, REPLICA)
        writer = self.writer
        replica.attach(
            next_expected_lsn=writer.allocator.next_lsn,
            vdl=writer.vdl,
            pg_frontiers=writer.frontiers.frontier_at(writer.vdl),
            commit_history=writer.registry.known_commits(),
        )
        writer.publisher.attach_replica(name)
        self.replicas[name] = replica
        return replica

    def remove_replica(self, name: str) -> None:
        replica = self.replicas.pop(name)
        replica.detach()
        if self.writer is not None:
            self.writer.publisher.detach_replica(name)
        if self.db_health is not None:
            self.db_health.deregister_instance(name)

    # ------------------------------------------------------------------
    # Writer crash / recovery / promotion
    # ------------------------------------------------------------------
    def crash_writer(self) -> None:
        """Kill the writer process: ephemeral state is gone."""
        self.writer.crash()
        self.network.fail_node(self.writer.name)

    def recover_writer(self) -> Process:
        """Restart the crashed writer and run crash recovery."""
        self.network.restore_node(self.writer.name)
        process = self.writer.recover()
        return process

    def promote_replica(self, name: str) -> tuple[WriterInstance, Process]:
        """Fail over to a replica (section 3.2).

        The promoted identity gets a fresh writer instance which "only
        needs to run a local crash recovery to align its in-memory state"
        against the shared volume.  Returns (new_writer, recovery_process).
        """
        old_writer = self.writer
        self.remove_replica(name)
        writer = self._create_writer(bootstrap=False)
        if old_writer is not None:
            self._retire_writer(old_writer)
        process = writer.recover()
        return writer, process

    def _retire_writer(self, old_writer: WriterInstance) -> None:
        """Condemn a superseded writer so it can never serve again.

        A reachable incumbent is closed in place.  An unreachable one
        cannot be told anything -- it stays a potential zombie, which is
        exactly what the successor's volume-epoch fence exists for -- but
        we condemn its node (so a later chaos *restore* cannot resurrect
        it into the scheduler) and make every storage node forget it (so
        gossip-driven re-acks never reach it again).
        """
        if self.network.is_up(old_writer.name):
            old_writer.close(reason="superseded by promotion")
        self.failures.condemn_node(old_writer.name)
        for node in self.nodes.values():
            node.forget_instance(old_writer.name)
        if self.db_health is not None:
            self.db_health.deregister_instance(old_writer.name)

    def reattach_replicas(self) -> None:
        """Re-subscribe surviving replicas to the (new) writer's stream."""
        writer = self.writer
        for name, replica in self.replicas.items():
            replica.detach()
            replica.cache.drop_all()
            replica.views.clear()
            replica.attach(
                next_expected_lsn=writer.allocator.next_lsn,
                vdl=writer.vdl,
                pg_frontiers=writer.frontiers.frontier_at(writer.vdl),
                commit_history=writer.registry.known_commits(),
            )
            writer.publisher.attach_replica(name)

    # ------------------------------------------------------------------
    # Membership changes (section 4, Figure 5)
    # ------------------------------------------------------------------
    def begin_segment_replacement(
        self, pg_index: int, failed_segment: str
    ) -> str:
        """Step 1 of Figure 5: add a candidate alongside the suspect member.

        Creates the candidate node, installs the dual-quorum membership
        (epoch += 1), and returns the candidate's segment id.  I/Os continue
        throughout; the change is reversible until finalized.
        """
        state = self.metadata.membership(pg_index)
        placement = self.metadata.placement(failed_segment)
        self._candidate_counter += 1
        slot = self._slot_of(state, failed_segment)
        candidate_id = self.segment_name(
            pg_index, slot, generation=self._candidate_counter
        )
        self._create_storage_node(
            candidate_id, pg_index, placement.az, placement.kind
        )
        self.nodes[candidate_id].start()
        new_state = state.begin_replacement(failed_segment, candidate_id)
        self._verify_transition(pg_index, state, new_state)
        self._install_membership(pg_index, new_state)
        return candidate_id

    def finalize_segment_replacement(
        self, pg_index: int, failed_segment: str
    ) -> None:
        """Step 2 of Figure 5: the candidate is hydrated; drop the suspect."""
        state = self.metadata.membership(pg_index)
        slot = self._slot_of(state, failed_segment)
        if len(state.slots[slot]) != 2:
            raise MembershipError(
                f"no replacement in flight for {failed_segment}"
            )
        new_state = state.commit_replacement(slot)
        self._verify_transition(pg_index, state, new_state)
        self._install_membership(pg_index, new_state)

    def rollback_segment_replacement(
        self, pg_index: int, failed_segment: str
    ) -> None:
        """Reverse path: the suspect came back; drop the candidate."""
        state = self.metadata.membership(pg_index)
        slot = self._slot_of(state, failed_segment)
        new_state = state.rollback_replacement(slot)
        self._verify_transition(pg_index, state, new_state)
        self._install_membership(pg_index, new_state)

    def _verify_transition(
        self, pg_index: int, state: MembershipState, new_state: MembershipState
    ) -> None:
        """Prove the transition against the backend's *installed* quorum
        policy (for Aurora this is exactly the membership-derived config)."""
        verify_transition_safety(
            state,
            new_state,
            audit_probe=self.auditor,
            config_of=lambda s: self.metadata.membership_config_of(
                pg_index, s
            ),
        )

    @staticmethod
    def _slot_of(state: MembershipState, segment_id: str) -> int:
        for slot, alternatives in enumerate(state.slots):
            if segment_id in alternatives:
                return slot
        raise MembershipError(f"{segment_id!r} is not a member")

    def _install_membership(
        self, pg_index: int, new_state: MembershipState
    ) -> None:
        self.metadata.set_membership(pg_index, new_state)
        driver = self.writer.driver
        new_epochs = driver.epochs.bump_membership()
        driver.configure_pg(pg_index)
        # The epoch increment is itself a quorum write under the *new*
        # membership; the returned future is intentionally fire-and-forget
        # here -- I/Os never stall on a membership change.
        driver.quorum_rpc(
            pg_index,
            lambda _m: EpochWrite(
                pg_index=pg_index,
                epochs=driver.epochs,
                new_epochs=new_epochs,
            ),
            quorum="write",
        )
        driver.adopt_epochs(new_epochs)

    def hydrate_segment(self, pg_index: int, candidate_id: str) -> Process:
        """Run hydration for a replacement segment (section 4.2).

        Tail repair "simply requires reading from the other members";
        full repair copies a materialized baseline from a healthy full
        peer first, then both catch up via the hot log and gossip.
        """
        return Process(self.loop, self._hydrate(pg_index, candidate_id))

    def _hydrate(self, pg_index: int, candidate_id: str):
        candidate = self.nodes[candidate_id]
        sources = [
            p
            for p in self.metadata.baseline_sources_of_pg(pg_index)
            if p.segment_id != candidate_id
            and self.network.is_up(p.segment_id)
        ]
        if sources:
            source = sources[0]
            reply = yield self.network.rpc(
                candidate_id,
                source.segment_id,
                BaselineRequest(
                    from_segment=candidate_id,
                    pg_index=pg_index,
                    epochs=candidate.epochs.current,
                ),
            )
            if isinstance(reply, BaselineResponse):
                candidate.apply_baseline(reply)
        # Wait until gossip closes the remaining gap to the PG's durable
        # point, checking every few milliseconds.  The tracker is re-read
        # each round: a writer crash mid-hydration replaces the driver's
        # in-memory trackers.
        for _ in range(10_000):
            tracker = self.writer.driver.pg_trackers.get(pg_index)
            target = tracker.pgcl if tracker is not None else 0
            if candidate.segment.scl >= target:
                return candidate.segment.scl
            yield 5.0
        raise MembershipError(
            f"hydration of {candidate_id} did not converge"
        )

    def replace_segment(self, pg_index: int, failed_segment: str) -> Process:
        """The full Figure 5 flow: add candidate, hydrate, finalize."""
        return Process(
            self.loop, self._replace(pg_index, failed_segment)
        )

    def _replace(self, pg_index: int, failed_segment: str):
        candidate_id = self.begin_segment_replacement(
            pg_index, failed_segment
        )
        yield self.hydrate_segment(pg_index, candidate_id).completion
        self.finalize_segment_replacement(pg_index, failed_segment)
        return candidate_id

    # ------------------------------------------------------------------
    # Heat management / planned migration (sections 1 and 4)
    # ------------------------------------------------------------------
    def migrate_segment(self, pg_index: int, segment_id: str) -> Process:
        """Move a HEALTHY segment to a fresh node (heat management,
        planned software upgrades).

        Exactly the Figure 5 flow -- the paper uses the same membership
        machinery for "unexpected failures, heat management, as well as
        planned software upgrades" -- except the incumbent keeps serving
        throughout and is only decommissioned after the change finalizes.
        """
        return Process(self.loop, self._migrate(pg_index, segment_id))

    def _migrate(self, pg_index: int, segment_id: str):
        candidate = self.begin_segment_replacement(pg_index, segment_id)
        yield self.hydrate_segment(pg_index, candidate).completion
        self.finalize_segment_replacement(pg_index, segment_id)
        # Decommission the old node only now: durable state was never
        # discarded before the quorum was fully repaired.
        self.network.fail_node(segment_id)
        return candidate

    # ------------------------------------------------------------------
    # Quorum-model change (section 4.1: 4/6 -> 3/4 under extended AZ loss)
    # ------------------------------------------------------------------
    def adopt_degraded_quorum(self, pg_index: int, lost_az: str) -> QuorumConfig:
        """Switch a PG to a 3/4 write / 2/4 read quorum over the four
        segments outside ``lost_az``.

        "This can also be used to change the quorum model itself, for
        example, when moving from a 4/6 write quorum to 3/4 to handle the
        extended loss of an AZ."  The change rides the geometry epoch and
        restores one-extra-failure write tolerance while the AZ is gone.
        """
        survivors = [
            p.segment_id
            for p in self.metadata.segments_of_pg(pg_index)
            if p.az != lost_az
        ]
        if len(survivors) != 4:
            raise ConfigurationError(
                f"expected 4 surviving segments outside {lost_az}, got "
                f"{len(survivors)}"
            )
        config = QuorumConfig(
            write_expr=QuorumLeaf.of(survivors, 3),
            read_expr=QuorumLeaf.of(survivors, 2),
        ).prove()
        self.metadata.set_quorum_override(pg_index, config)
        self._bump_geometry_epoch(pg_index)
        return config

    def restore_standard_quorum(self, pg_index: int) -> None:
        """The AZ came back: return to the 4/6 model (epoch bump)."""
        self.metadata.clear_quorum_override(pg_index)
        self._bump_geometry_epoch(pg_index)

    def _bump_geometry_epoch(self, pg_index: int) -> None:
        driver = self.writer.driver
        new_epochs = driver.epochs.bump_geometry()
        driver.configure_pg(pg_index)
        driver.quorum_rpc(
            pg_index,
            lambda _m: EpochWrite(
                pg_index=pg_index,
                epochs=driver.epochs,
                new_epochs=new_epochs,
            ),
            quorum="write",
        )
        driver.adopt_epochs(new_epochs)

    # ------------------------------------------------------------------
    # Point-in-time restore from the S3 archive (section 2.1's offloaded
    # backup/restore)
    # ------------------------------------------------------------------
    @classmethod
    def restore_from_backup(
        cls,
        source: "AuroraCluster",
        as_of_ms: float | None = None,
        seed: int | None = None,
    ) -> "AuroraCluster":
        """Build a brand-new cluster from the source's S3 snapshots.

        Each fresh segment restores the newest snapshot taken at or before
        ``as_of_ms`` (source simulation time; default: everything).  The
        new writer then runs ordinary crash recovery against the restored
        fleet -- restore IS recovery against archived state -- after which
        gossip/hydration level out any per-segment skew.
        """
        config = ClusterConfig(
            seed=seed if seed is not None else source.config.seed + 1,
            pg_count=source.config.pg_count,
            blocks_per_pg=source.config.blocks_per_pg,
            full_tail=source.config.full_tail,
            backend=source.config.backend,
        )
        cluster = cls.build(config, bootstrap=False)
        for segment_id, node in cluster.nodes.items():
            best = None
            for obj in source.s3.objects.values():
                if obj.segment_id != segment_id:
                    continue
                if as_of_ms is not None and obj.taken_at > as_of_ms:
                    continue
                if best is None or obj.scl > best.scl:
                    best = obj
            if best is not None:
                node.segment.restore_from_snapshot(best.payload)
        process = cluster.writer.recover()
        Session(cluster.writer).drive(process)
        return cluster

    # ------------------------------------------------------------------
    # Volume growth (section 4.1's geometry epoch)
    # ------------------------------------------------------------------
    def grow_volume(self, additional_pgs: int = 1) -> None:
        """Append protection groups and bump the geometry epoch."""
        first_new = self.metadata.geometry.pg_count
        self.metadata.geometry.grow(additional_pgs)
        for pg_index in range(first_new, first_new + additional_pgs):
            self._create_protection_group(pg_index)
            for placement in self.metadata.segments_of_pg(pg_index):
                self.nodes[placement.segment_id].start()
        driver = self.writer.driver
        new_epochs = driver.epochs.bump_geometry()
        driver.configure_all_pgs()
        for pg_index in range(first_new, first_new + additional_pgs):
            driver.quorum_rpc(
                pg_index,
                lambda _m, pg_index=pg_index: EpochWrite(
                    pg_index=pg_index,
                    epochs=driver.epochs,
                    new_epochs=new_epochs,
                ),
                quorum="write",
            )
        driver.adopt_epochs(new_epochs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes_of_pg(self, pg_index: int) -> list[StorageNode]:
        return [
            self.nodes[p.segment_id]
            for p in self.metadata.segments_of_pg(pg_index)
        ]

    def segment_scls(self, pg_index: int) -> dict[str, int]:
        return {
            node.name: node.segment.scl for node in self.nodes_of_pg(pg_index)
        }

    def message_stats(self) -> dict[str, int]:
        return dict(self.network.stats.by_type)
