"""The single-writer Aurora database instance.

This actor ties everything together:

- it allocates the volume-wide LSN space (section 2.1's key invariant),
- builds MTRs over the B-tree and buffer cache, threading the three
  back-chains into every record,
- streams records through the storage driver and advances SCL -> PGCL ->
  VCL/VDL purely from acknowledgement bookkeeping,
- acknowledges commits when their SCN passes the VCL (section 2.3) with no
  flush, no consensus, and no group-commit stall,
- serves reads from its own durability bookkeeping (no quorum reads),
- publishes the physical replication stream, and
- re-establishes every consistency point from segment state at crash
  recovery (section 2.4), bumping the volume epoch to box out its past
  self.

All public operations that may touch storage are **generator functions**;
run them with :class:`repro.sim.Process` (or through
:class:`repro.db.session.Session`, which does it for you).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.consistency import MinReadPointTracker, PGFrontierHistory
from repro.core.epochs import EpochStamp
from repro.core.lsn import NULL_LSN, LSNAllocator, TruncationRange
from repro.core.records import CommitPayload, LogRecord, RecordKind
from repro.core.recovery import SegmentRecoveryResponse, recover_volume_state
from repro.db.btree import BlockIO, BTree, leaf_rows
from repro.db.buffer_cache import BufferCache
from repro.db.driver import BoxcarMode, DriverConfig, StorageDriver
from repro.db.locks import LockManager, lock_keys_for
from repro.db.logical_replication import ChangeKind, LogicalPublisher, RowChange
from repro.db.mtr import ChainState, MTRBuilder
from repro.db.mvcc import (
    TOMBSTONE,
    ReadView,
    ReadViewManager,
    TransactionStatusRegistry,
)
from repro.db.replication import ReplicationPublisher
from repro.db.txn import Transaction, TransactionManager
from repro.errors import CommitUncertainError, InstanceStateError
from repro.sim.events import Future
from repro.sim.network import Actor, Message
from repro.sim.process import Mutex, Process
from repro.storage.messages import (
    GCFloorUpdate,
    RecoveryScanResponse,
    RequestRejected,
    TruncateAck,
    WriteAck,
)
from repro.storage.metadata import StorageMetadataService
from repro.storage.volume import VolumeGeometry


class InstanceState(enum.Enum):
    NEW = "new"
    OPEN = "open"
    CRASHED = "crashed"
    RECOVERING = "recovering"
    CLOSED = "closed"


@dataclass
class InstanceConfig:
    """Tunable behaviour of a database instance."""

    cache_capacity: int = 100_000
    txn_table_blocks: int = 4
    max_leaf_rows: int = 16
    max_internal_keys: int = 16
    driver: DriverConfig = field(default_factory=DriverConfig)
    #: Period between GC-floor (PGMRPL) advertisements to storage (ms).
    gc_floor_interval: float = 50.0
    #: LSN headroom added above the highest observed LSN when computing a
    #: recovery truncation ceiling; must exceed any in-flight allocation.
    recovery_margin: int = 1_000_000


@dataclass
class InstanceStats:
    commits_requested: int = 0
    commits_acknowledged: int = 0
    commit_latencies: list[float] = field(default_factory=list)
    rollbacks: int = 0
    reads: int = 0
    writes: int = 0
    recoveries: int = 0
    recovery_durations: list[float] = field(default_factory=list)
    orphan_versions_purged: int = 0
    #: Simulated time of the most recent commit acknowledgement, or None.
    #: The geo auditor compares this against the secondary's promotion
    #: time to prove a fenced stale primary never acked afterwards.
    last_commit_ack_at: float | None = None


class WriterInstance(Actor, BlockIO):
    """The writer: SQL endpoint, transaction engine, and storage client."""

    #: Block 0 holds the B-tree meta; blocks 1..txn_table_blocks hold the
    #: transaction table; the root leaf and data blocks follow.
    META_BLOCK = 0

    def __init__(
        self,
        name: str,
        metadata: StorageMetadataService,
        rng: random.Random,
        config: InstanceConfig | None = None,
    ) -> None:
        Actor.__init__(self, name=name)
        self.metadata = metadata
        self.rng = rng
        self.config = config if config is not None else InstanceConfig()
        self.state = InstanceState.NEW
        self.stats = InstanceStats()
        # Protocol state (all ephemeral; rebuilt by recovery).
        self.allocator = LSNAllocator()
        self.chains = ChainState()
        self.cache = BufferCache(self.config.cache_capacity)
        self.locks = LockManager()
        self.registry = TransactionStatusRegistry()
        self.txns = TransactionManager()
        self.views = ReadViewManager()
        self.min_read = MinReadPointTracker()
        self.frontiers = PGFrontierHistory()
        self.driver: StorageDriver | None = None
        self.publisher: ReplicationPublisher | None = None
        #: Logical (row-level) change stream for non-Aurora subscribers.
        self.logical = LogicalPublisher()
        self.btree: BTree | None = None
        self._write_mutex: Mutex | None = None
        self._gc_floor_tick_scheduled = False
        #: Commit futures not yet resolved, by txn id.  On crash, fence, or
        #: close these resolve with :class:`CommitUncertainError` -- the
        #: outcome is unknown, never falsely acknowledged.
        self._pending_commits: dict[int, Future] = {}
        #: Optional extra commit-acknowledgement gate.  When set, a commit
        #: that has reached local durability (VCL passed its SCN) is handed
        #: to ``commit_gate(scn, release, fail)`` instead of acking
        #: immediately; the gate calls ``release()`` when its condition
        #: holds (the geo tier uses this for sync cross-region acks) or
        #: ``fail(exc)`` to resolve the future with ``exc`` -- the commit
        #: is still locally durable, so the transaction itself completes;
        #: only the acknowledgement is withheld.  Gated commits stay in
        #: ``_pending_commits``, so a crash or fence while gated still
        #: resolves them uncertain.
        self.commit_gate: (
            Callable[
                [
                    int,
                    Callable[[], None],
                    Callable[[BaseException], None],
                ],
                None,
            ]
            | None
        ) = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def geometry(self) -> VolumeGeometry:
        return self.metadata.geometry

    def pg_of_block(self, block: int) -> int:
        return self.geometry.pg_of_block(block)

    def txn_table_block(self, txn_id: int) -> int:
        return 1 + (txn_id % self.config.txn_table_blocks)

    @property
    def root_leaf_block(self) -> int:
        return 1 + self.config.txn_table_blocks

    def start(self) -> None:
        """Wire the driver and background ticks (after network attach)."""
        self.driver = StorageDriver(
            instance_id=self.name,
            loop=self.loop,
            send=lambda dst, payload: self.network.send(self.name, dst, payload),
            rpc=lambda dst, payload: self.network.rpc(self.name, dst, payload),
            metadata=self.metadata,
            rng=self.rng,
            config=self.config.driver,
        )
        self.driver.configure_all_pgs()
        self.driver.pgmrpl_provider = self.current_pgmrpl
        self.driver.on_vdl_advance.append(self._on_vdl_advance)
        self.publisher = ReplicationPublisher(
            writer_id=self.name,
            send=lambda dst, payload: self.network.send(self.name, dst, payload),
            # IMMEDIATE disables boxcar batching everywhere, including the
            # replication stream (a loop-less publisher sends unframed).
            loop=(
                None
                if self.config.driver.boxcar_mode is BoxcarMode.IMMEDIATE
                else self.loop
            ),
            frame_window=self.config.driver.submit_delay,
        )
        self.btree = BTree(
            io=self,
            registry=self.registry,
            meta_block=self.META_BLOCK,
            max_leaf_rows=self.config.max_leaf_rows,
            max_internal_keys=self.config.max_internal_keys,
        )
        self._write_mutex = Mutex(self.loop)
        self.driver.on_fenced.append(self._on_fenced)
        self._schedule_gc_floor_tick()

    def bootstrap(self) -> None:
        """Create an empty database (fresh volume only)."""
        self._require(InstanceState.NEW)
        mtr = MTRBuilder(txn_id=0)
        self.btree.bootstrap(
            mtr,
            root_block=self.root_leaf_block,
            first_free_block=self.root_leaf_block + 1,
        )
        self._apply_mtr(mtr)
        self.state = InstanceState.OPEN
        self._notify_writer_open()

    def _require(self, *states: InstanceState) -> None:
        if self.state not in states:
            raise InstanceStateError(
                f"instance {self.name} is {self.state.value}; "
                f"operation requires {[s.value for s in states]}"
            )

    # ------------------------------------------------------------------
    # Consistency-point accessors
    # ------------------------------------------------------------------
    @property
    def vcl(self) -> int:
        return self.driver.vcl

    @property
    def vdl(self) -> int:
        return self.driver.vdl

    def current_pgmrpl(self) -> int:
        return self.min_read.current()

    def _on_vdl_advance(self, vdl: int) -> None:
        self.frontiers.advance_vdl(vdl)
        self.min_read.advance_floor(vdl)
        self.frontiers.prune_below(self.current_pgmrpl())
        self.cache.shrink(vdl)
        if self.publisher is not None:
            self.publisher.publish_vdl(vdl)

    # ------------------------------------------------------------------
    # BlockIO: reads, staged changes, block allocation
    # ------------------------------------------------------------------
    def read_image(self, block: int, mtr: MTRBuilder | None = None):
        """Current image of a block: MTR overlay, cache, or storage."""
        if mtr is not None and block in mtr.staged_images:
            return dict(mtr.staged_images[block])
        cached = self.cache.lookup(block)
        if cached is not None:
            return dict(cached.image)
        # Cache miss: the WAL invariant guarantees every evicted block is
        # fully durable, so the latest durable version *is* the latest.
        read_point = self.vdl
        pg_index = self.pg_of_block(block)
        pg_point = self.frontiers.pg_read_point(pg_index, read_point)
        if pg_point == NULL_LSN:
            return {}  # no durable writes to this PG yet
        image, version_lsn = yield self.driver.read_block(
            block, pg_index, pg_point
        )
        self.cache.install(block, dict(image), version_lsn, self.vdl)
        return dict(image)

    def stage_change(self, mtr: MTRBuilder, block: int, payload) -> dict:
        base = mtr.staged_images.get(block)
        if base is None:
            cached = self.cache.peek(block)
            base = dict(cached.image) if cached is not None else {}
        new_image = payload.apply(base)
        mtr.staged_images[block] = new_image
        mtr.change(block, self.pg_of_block(block), payload)
        return dict(new_image)

    def allocate_block(self, mtr: MTRBuilder):
        from repro.core.records import BlockPut

        meta = yield from self.read_image(self.META_BLOCK, mtr)
        new_block = meta["next_block"]
        # Growing past the current geometry requires adding protection
        # groups (storage nodes and a geometry-epoch bump) -- an operation
        # the cluster performs (see AuroraCluster.grow_volume); the
        # instance itself refuses to address beyond the volume.
        self.geometry.pg_of_block(new_block)  # raises if out of range
        self.stage_change(
            mtr,
            self.META_BLOCK,
            BlockPut(entries=(("next_block", new_block + 1),)),
        )
        mtr.staged_images.setdefault(new_block, {})
        return new_block

    def _apply_mtr(self, mtr: MTRBuilder) -> list[LogRecord]:
        """Seal an MTR: allocate LSNs, absorb into cache, ship to storage."""
        records = mtr.seal(self.allocator, self.chains)
        for record in records:
            self._absorb_record(record)
        self.driver.submit(records)
        if self.publisher is not None:
            self.publisher.publish_mtr(records)
        return records

    def _absorb_record(self, record: LogRecord) -> None:
        self.frontiers.record(record.lsn, record.pg_index)
        if record.block < 0:
            return
        cached = self.cache.peek(record.block)
        if cached is None:
            self.cache.install(record.block, {}, NULL_LSN, self.vdl)
            cached = self.cache.peek(record.block)
        new_image = record.payload.apply(cached.image)
        self.cache.apply_change(record.block, new_image, record.lsn)

    # ------------------------------------------------------------------
    # Read views
    # ------------------------------------------------------------------
    def open_view(self, txn_id: int = 0) -> ReadView:
        """Anchor a snapshot at the current VDL (section 3.1)."""
        view = self.views.open(read_point=self.vdl, txn_id=txn_id)
        self.min_read.register(view.read_point)
        return view

    def close_view(self, view: ReadView) -> None:
        self.views.close(view)
        self.min_read.release(view.read_point)

    def _view_for(self, txn: Transaction | None):
        """(view, owned) -- reuse a transaction's view or open a statement
        view the caller must close."""
        if txn is None:
            return self.open_view(), True
        if txn.read_view is None:
            txn.read_view = self.open_view(txn_id=txn.txn_id)
        return txn.read_view, False

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        self._require(InstanceState.OPEN)
        return self.txns.begin(now=self.loop.now)

    def get(self, key, txn: Transaction | None = None):
        """Generator: visible value of ``key`` (None if absent)."""
        self._require(InstanceState.OPEN)
        self.stats.reads += 1
        view, owned = self._view_for(txn)
        try:
            found, value = yield from self.btree.get(view, key)
        finally:
            if owned:
                self.close_view(view)
        return value if found else None

    def scan(self, low, high, txn: Transaction | None = None):
        """Generator: visible (key, value) pairs in [low, high]."""
        self._require(InstanceState.OPEN)
        self.stats.reads += 1
        view, owned = self._view_for(txn)
        try:
            results = yield from self.btree.scan(view, low, high)
        finally:
            if owned:
                self.close_view(view)
        return results

    def put(self, txn: Transaction, key, value):
        """Generator: write ``key`` within ``txn``."""
        yield from self._write(txn, key, value)

    def delete(self, txn: Transaction, key):
        """Generator: delete ``key`` within ``txn`` (tombstone version)."""
        yield from self._write(txn, key, TOMBSTONE)

    def _write(self, txn: Transaction, key, value):
        self._require(InstanceState.OPEN)
        txn.require_active()
        self.locks.acquire(txn.txn_id, key)
        yield self._write_mutex.acquire()
        try:
            txn.require_active()
            self.stats.writes += 1
            mtr = MTRBuilder(txn_id=txn.txn_id)
            prior = yield from self.btree.put(mtr, txn.txn_id, key, value)
            txn.record_undo(
                block=-1, key=key, prior_versions=tuple(prior)
            )
            self._apply_mtr(mtr)
            if value == TOMBSTONE:
                self.logical.stage(
                    txn.txn_id, RowChange(ChangeKind.DELETE, key)
                )
            else:
                self.logical.stage(
                    txn.txn_id, RowChange(ChangeKind.UPSERT, key, value)
                )
        finally:
            self._write_mutex.release()

    def put_many(self, txn: Transaction, items: list[tuple]):
        """Generator: write several keys in deterministic lock order."""
        for key in lock_keys_for([k for k, _v in items]):
            self.locks.acquire(txn.txn_id, key)
        by_key = dict(items)
        for key in lock_keys_for(list(by_key)):
            yield from self._write(txn, key, by_key[key])

    def commit(self, txn: Transaction) -> Future:
        """Asynchronous commit (section 2.3).

        Writes the commit record, enqueues the transaction keyed by its
        SCN, and returns immediately; the future resolves with the SCN when
        the VCL passes it.  The calling worker never stalls.
        """
        self._require(InstanceState.OPEN)
        txn.require_active()
        self.stats.commits_requested += 1
        future = Future(self.loop)
        if txn.is_read_only:
            self.txns.mark_committing(txn, scn=self.vdl)
            self._finish_commit(txn, future, started=self.loop.now)
            return future
        scn = self.allocator.allocate_one()
        block = self.txn_table_block(txn.txn_id)
        pg_index = self.pg_of_block(block)
        prev_volume, prev_pg, prev_block = self.chains.thread(
            scn, pg_index, block
        )
        record = LogRecord(
            lsn=scn,
            prev_volume_lsn=prev_volume,
            prev_pg_lsn=prev_pg,
            prev_block_lsn=prev_block,
            block=block,
            pg_index=pg_index,
            kind=RecordKind.COMMIT,
            payload=CommitPayload(txn_id=txn.txn_id, scn=scn),
            txn_id=txn.txn_id,
            mtr_end=True,
        )
        self._absorb_record(record)
        self.registry.record_commit(txn.txn_id, scn)
        self.txns.mark_committing(txn, scn)
        self.driver.submit([record])
        if self.publisher is not None:
            self.publisher.publish_mtr([record])
        started = self.loop.now
        self._pending_commits[txn.txn_id] = future
        self.driver.commit_queue.enqueue(
            scn,
            ack=lambda: self._locally_durable_commit(txn, future, started),
            now=started,
            tag=txn.txn_id,
        )
        return future

    def _locally_durable_commit(
        self, txn: Transaction, future: Future, started: float
    ) -> None:
        """VCL passed the commit SCN; ack now or hand to the gate."""
        if self.commit_gate is None or self.state is not InstanceState.OPEN:
            self._finish_commit(txn, future, started)
            return
        assert txn.scn is not None
        self.commit_gate(
            txn.scn,
            lambda: self._finish_commit(txn, future, started),
            lambda exc: self._finish_commit(txn, future, started, error=exc),
        )

    def _finish_commit(
        self,
        txn: Transaction,
        future: Future,
        started: float,
        error: BaseException | None = None,
    ) -> None:
        """Complete the commit: ack it, or (``error``) report it unacked.

        The error path still finishes the transaction -- its records ARE
        locally durable and visible, only the cross-region guarantee the
        gate stood for failed -- but skips the acknowledgement statistics
        and resolves the client future with ``error`` instead of the SCN.
        """
        self._pending_commits.pop(txn.txn_id, None)
        if self.state is not InstanceState.OPEN:
            return  # crashed before the ack could fire; commit is lost
        self.txns.finish_commit(txn)
        self.locks.release_all(txn.txn_id)
        if txn.read_view is not None:
            self.close_view(txn.read_view)
            txn.read_view = None
        if error is None:
            self.stats.commits_acknowledged += 1
            self.stats.commit_latencies.append(self.loop.now - started)
            self.stats.last_commit_ack_at = self.loop.now
        if (
            self.publisher is not None
            and txn.scn is not None
            and txn.undo_log
        ):
            self.publisher.publish_commit(txn.txn_id, txn.scn)
        if txn.scn is not None and txn.undo_log:
            self.logical.publish_commit(txn.txn_id, txn.scn)
        if future.done:
            return
        if error is None:
            future.set_result(txn.scn)
        else:
            future.set_exception(error)

    def rollback(self, txn: Transaction):
        """Generator: undo every write of ``txn`` with compensating MTRs."""
        self._require(InstanceState.OPEN)
        txn.require_active()
        self.stats.rollbacks += 1
        if txn.undo_log:
            yield self._write_mutex.acquire()
            try:
                mtr = MTRBuilder(txn_id=txn.txn_id)
                for undo in reversed(txn.undo_log):
                    yield from self.btree.replace_versions(
                        mtr, undo.key, undo.prior_versions
                    )
                self._apply_mtr(mtr)
            finally:
                self._write_mutex.release()
        self.registry.record_abort(txn.txn_id)
        self.logical.discard(txn.txn_id)
        if txn.read_view is not None:
            self.close_view(txn.read_view)
            txn.read_view = None
        self.locks.release_all(txn.txn_id)
        self.txns.finish_abort(txn)

    # ------------------------------------------------------------------
    # Network message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if self.state in (InstanceState.CRASHED, InstanceState.CLOSED):
            return
        payload = message.payload
        if isinstance(payload, WriteAck):
            self.driver.on_write_ack(payload)
        elif isinstance(payload, RequestRejected):
            self.driver.on_rejection(payload)

    # ------------------------------------------------------------------
    # Background: GC-floor advertisement
    # ------------------------------------------------------------------
    def _schedule_gc_floor_tick(self) -> None:
        if self._gc_floor_tick_scheduled:
            return
        self._gc_floor_tick_scheduled = True

        def _tick() -> None:
            self._gc_floor_tick_scheduled = False
            if self.state in (InstanceState.CRASHED, InstanceState.CLOSED):
                # A dead instance must fall silent: its heartbeat would
                # otherwise keep the health monitor fooled, and a retired
                # writer must never speak again.  Recovery restarts the
                # tick explicitly.
                return
            if self.state is InstanceState.OPEN:
                self._advertise_gc_floor()
            self._schedule_gc_floor_tick()

        self.loop.schedule(self.config.gc_floor_interval, _tick)

    def _advertise_gc_floor(self) -> None:
        pgmrpl = self.current_pgmrpl()
        if pgmrpl == NULL_LSN:
            return
        frontier = self.frontiers.frontier_at(pgmrpl)
        for pg_index in self.metadata.pg_indexes():
            pg_floor = frontier.get(pg_index, NULL_LSN)
            if pg_floor == NULL_LSN:
                continue
            update = GCFloorUpdate(
                instance_id=self.name,
                pg_index=pg_index,
                pgmrpl=pg_floor,
                epochs=self.driver.epochs,
            )
            for member in self.driver.members_of(pg_index):
                self.network.send(self.name, member, update)

    # ------------------------------------------------------------------
    # Crash and recovery (section 2.4)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all ephemeral state, exactly as a process kill would."""
        was_open = self.state is InstanceState.OPEN
        self.state = InstanceState.CRASHED
        self._fail_pending_commits("writer crashed before the commit ack")
        if was_open:
            self._notify_writer_close()
        self.cache.drop_all()
        self.locks.clear()
        self.txns.clear()
        self.views.clear()
        self.registry.clear()
        self.driver.drop_transient_state()
        self.logical.drop_transient_state()
        self.min_read = MinReadPointTracker()
        self.frontiers = PGFrontierHistory()
        self.allocator = LSNAllocator()
        self.chains = ChainState()

    def close(self, reason: str = "retired") -> None:
        """Retire the instance permanently (fenced or administratively).

        Unlike :meth:`crash` there is no way back: a closed writer ignores
        all storage traffic and never recovers.  In-flight commit futures
        resolve as uncertain -- the records may well be durable, but this
        instance can no longer observe the VCL pass them.
        """
        if self.state is InstanceState.CLOSED:
            return
        was_open = self.state is InstanceState.OPEN
        self.state = InstanceState.CLOSED
        self._fail_pending_commits(f"writer closed ({reason})")
        if was_open:
            self._notify_writer_close()

    def _on_fenced(self) -> None:
        """Driver observed a foreign volume-epoch bump: a successor ran
        recovery and changed the locks.  Step down immediately."""
        if self.state is not InstanceState.OPEN:
            return
        self.close(reason="fenced by a successor's volume epoch")

    def _fail_pending_commits(self, reason: str) -> None:
        pending = list(self._pending_commits.values())
        self._pending_commits.clear()
        for future in pending:
            if not future.done:
                future.set_exception(
                    CommitUncertainError(
                        f"commit outcome unknown: {reason}; the transaction "
                        "is either durably committed or entirely absent"
                    )
                )

    def _notify_writer_open(self) -> None:
        probe = self.driver.audit_probe if self.driver is not None else None
        if probe is not None:
            probe.on_writer_open(self.name, self.driver.epochs.volume)

    def _notify_writer_close(self) -> None:
        probe = self.driver.audit_probe if self.driver is not None else None
        if probe is not None:
            probe.on_writer_close(self.name)

    def recover(self) -> Process:
        """Run crash recovery; returns the driving :class:`Process`."""
        return Process(self.loop, self._recover())

    def _recover(self):
        self._require(InstanceState.CRASHED, InstanceState.NEW)
        self.state = InstanceState.RECOVERING
        started = self.loop.now
        self.stats.recoveries += 1
        self.driver.refresh_epochs()
        self.driver.configure_all_pgs()
        pg_indexes = self.metadata.pg_indexes()

        # 0. Fence FIRST: bump the volume epoch and establish it on a write
        #    quorum of every PG before reading anything ("changes the locks
        #    on the door").  Any batch a zombie predecessor gets accepted
        #    after this point can reach at most a minority at the old
        #    epoch, so it can never be acknowledged; anything it *did*
        #    quorum-ack before the fence is, by quorum intersection,
        #    visible to the scan below and therefore preserved.
        new_epochs = self.driver.epochs.bump_volume()
        self.driver.adopt_epochs(new_epochs)
        for pg_index in pg_indexes:
            yield self.driver.fence_pg(pg_index, new_epochs)

        # 1. Reach a read quorum (and every reachable segment) per PG.
        responses_by_pg: dict[int, list[SegmentRecoveryResponse]] = {}
        pg_configs = {}
        for pg_index in pg_indexes:
            replies: dict[str, RecoveryScanResponse] = (
                yield self.driver.scan_pg(pg_index)
            )
            responses_by_pg[pg_index] = [
                SegmentRecoveryResponse(
                    segment_id=reply.segment_id,
                    pg_index=reply.pg_index,
                    scl=reply.scl,
                    digests=reply.digests,
                    gc_horizon=reply.gc_horizon,
                )
                for reply in replies.values()
            ]
            pg_configs[pg_index] = self.metadata.quorum_config(pg_index)

        # 2. Locally re-compute PGCLs, VCL, VDL, and the truncation range.
        highest_seen = max(
            (
                digest.lsn
                for responses in responses_by_pg.values()
                for response in responses
                for digest in response.digests
            ),
            default=NULL_LSN,
        )
        result = recover_volume_state(
            pg_configs=pg_configs,
            responses_by_pg=responses_by_pg,
            highest_possible_lsn=highest_seen + self.config.recovery_margin,
        )

        # 3. Snip the ragged edge under the already-established epoch.
        truncation = result.truncation
        if truncation is None:
            truncation = TruncationRange(
                first=result.vcl + 1,
                last=result.vcl + self.config.recovery_margin,
            )
        for pg_index in pg_indexes:
            acks: dict[str, TruncateAck] = yield self.driver.truncate_pg(
                pg_index,
                result.pg_truncation_points[pg_index],
                truncation,
                new_epochs,
            )
            for segment_id, ack in acks.items():
                self.driver.seed_member_scl(pg_index, segment_id, ack.scl)

        # 4. Re-anchor all local bookkeeping above the truncation range.
        self.allocator = LSNAllocator()
        self.allocator.apply_truncation(truncation)
        self.chains.reset_to(result.vcl, result.pg_truncation_points)
        self.driver.volume.reset(result.vcl, result.vdl)
        self.frontiers.reset(result.vdl, result.pg_vdl_frontiers)
        self.min_read.advance_floor(result.vdl)
        # Seed the recovered durable points so reads can route immediately.
        for pg_index in pg_indexes:
            tracker = self.driver.pg_trackers[pg_index]
            self.driver.volume.on_pgcl(pg_index, tracker.pgcl)

        # 5. Reload durable transaction statuses from the txn-table blocks.
        self.state = InstanceState.OPEN
        self._notify_writer_open()
        self._schedule_gc_floor_tick()
        for block in range(1, self.config.txn_table_blocks + 1):
            image = yield from self.read_image(block)
            self.registry.load_txn_table_image(image)
        max_txn = max(self.registry.known_commits(), default=0)
        self.txns.seed_above(max_txn)

        # If the crash predated bootstrap durability the recovered volume
        # is empty; re-create the (empty) tree so the instance is usable.
        meta = yield from self.read_image(self.META_BLOCK)
        if "root" not in meta:
            mtr = MTRBuilder(txn_id=0)
            self.btree.bootstrap(
                mtr,
                root_block=self.root_leaf_block,
                first_free_block=self.root_leaf_block + 1,
            )
            self._apply_mtr(mtr)

        # 6. "No redo replay is required ...  Undo of previously active
        #    transactions ... can occur after the database has been opened":
        #    purge versions of transactions that never committed.
        purged = yield from self._purge_orphan_versions()
        self.stats.orphan_versions_purged += purged
        self.stats.recovery_durations.append(self.loop.now - started)
        return result

    def _purge_orphan_versions(self):
        """Remove versions written by transactions with no durable commit."""
        yield self._write_mutex.acquire()
        try:
            leaves = yield from self.btree.iterate_leaves()
            purged = 0
            for leaf_block, image in leaves:
                doomed: set[int] = set()
                for _key, versions in leaf_rows(image):
                    for txn_id, _value in versions:
                        if (
                            self.registry.commit_scn(txn_id) is None
                            and txn_id != 0
                        ):
                            doomed.add(txn_id)
                if not doomed:
                    continue
                mtr = MTRBuilder(txn_id=0)
                changed = self.btree.prune_leaf(
                    mtr,
                    leaf_block,
                    image,
                    purge_point=NULL_LSN,
                    doomed_txns=frozenset(doomed),
                )
                if changed:
                    self._apply_mtr(mtr)
                    purged += changed
            return purged
        finally:
            self._write_mutex.release()

    # ------------------------------------------------------------------
    # Maintenance: MVCC version purge (the undo-purge analogue)
    # ------------------------------------------------------------------
    def purge_old_versions(self):
        """Generator: drop versions below the minimum active read point.

        The storage-side analogue (block-version GC below PGMRPL) happens
        on the nodes; this prunes the in-row version chains.
        """
        self._require(InstanceState.OPEN)
        purge_point = self.current_pgmrpl()
        yield self._write_mutex.acquire()
        try:
            leaves = yield from self.btree.iterate_leaves()
            pruned = 0
            for leaf_block, image in leaves:
                mtr = MTRBuilder(txn_id=0)
                changed = self.btree.prune_leaf(
                    mtr, leaf_block, image, purge_point, frozenset()
                )
                if changed:
                    self._apply_mtr(mtr)
                    pruned += changed
            return pruned
        finally:
            self._write_mutex.release()
