"""The buffer cache and its write-ahead-logging eviction invariant.

"Even though Aurora does not write blocks to storage from the database
instance, it must support write-ahead logging by ensuring redo log records
for dirty blocks have been made durable before discarding the block from
cache.  This ensures that the latest version of a data block can always be
found either in cache or ... by finding the latest durable version of the
block in one of the segments" (section 3.1).

Because the instance never writes blocks back, "dirty" here means *ahead of
the durable point*: a cached block whose newest redo LSN exceeds the current
VDL may not be evicted.  Once VDL catches up the block is clean by
definition -- storage can regenerate it -- so eviction is a pure discard.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.core.lsn import NULL_LSN
from repro.errors import ConfigurationError


@dataclass
class CachedBlock:
    """A block image held in the buffer pool."""

    block: int
    image: dict[Any, Any]
    #: LSN of the newest redo applied to this cached image.
    latest_lsn: int = NULL_LSN
    pinned: int = 0

    def is_evictable(self, vdl: int) -> bool:
        return self.pinned == 0 and self.latest_lsn <= vdl


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    eviction_blocked: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferCache:
    """LRU buffer pool enforcing the WAL eviction invariant."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._blocks: OrderedDict[int, CachedBlock] = OrderedDict()
        self.stats = CacheStats()

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def lookup(self, block: int) -> CachedBlock | None:
        """Fetch from cache (counts hit/miss, refreshes LRU position)."""
        cached = self._blocks.get(block)
        if cached is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._blocks.move_to_end(block)
        return cached

    def peek(self, block: int) -> CachedBlock | None:
        """Fetch without touching stats or LRU order."""
        return self._blocks.get(block)

    def install(
        self, block: int, image: dict[Any, Any], latest_lsn: int, vdl: int
    ) -> CachedBlock:
        """Insert (or refresh) a block image, evicting as needed.

        ``vdl`` is the current Volume Durable LSN, consulted for the WAL
        invariant when making room.  Over-capacity with nothing evictable is
        tolerated (the pool temporarily over-fills rather than ever
        discarding a non-durable block).
        """
        cached = self._blocks.get(block)
        if cached is not None:
            if latest_lsn >= cached.latest_lsn:
                cached.image = image
                cached.latest_lsn = latest_lsn
            self._blocks.move_to_end(block)
            return cached
        self._make_room(vdl)
        cached = CachedBlock(block=block, image=image, latest_lsn=latest_lsn)
        self._blocks[block] = cached
        return cached

    def apply_change(
        self, block: int, image: dict[Any, Any], lsn: int
    ) -> CachedBlock:
        """Update a cached block in place with a new redo application."""
        cached = self._blocks.get(block)
        if cached is None:
            raise ConfigurationError(
                f"block {block} must be cached before modification"
            )
        if lsn <= cached.latest_lsn:
            raise ConfigurationError(
                f"redo must move the block forward: {lsn} <= "
                f"{cached.latest_lsn}"
            )
        cached.image = image
        cached.latest_lsn = lsn
        self._blocks.move_to_end(block)
        return cached

    def pin(self, block: int) -> None:
        cached = self._blocks.get(block)
        if cached is None:
            raise ConfigurationError(f"cannot pin uncached block {block}")
        cached.pinned += 1

    def unpin(self, block: int) -> None:
        cached = self._blocks.get(block)
        if cached is None or cached.pinned == 0:
            raise ConfigurationError(f"unbalanced unpin of block {block}")
        cached.pinned -= 1

    def _make_room(self, vdl: int) -> None:
        while len(self._blocks) >= self.capacity:
            victim = None
            for block, cached in self._blocks.items():
                if cached.is_evictable(vdl):
                    victim = block
                    break
            if victim is None:
                # Nothing evictable: every block is pinned or ahead of the
                # VDL.  Over-fill rather than violate the WAL invariant.
                self.stats.eviction_blocked += 1
                return
            del self._blocks[victim]
            self.stats.evictions += 1

    def shrink(self, vdl: int) -> int:
        """Re-enforce capacity after a WAL-blocked over-fill.

        Called when the VDL advances: blocks that were un-evictable while
        their redo was in flight become plain discards.  Returns the number
        evicted.
        """
        evicted = 0
        while len(self._blocks) > self.capacity:
            victim = None
            for block, cached in self._blocks.items():
                if cached.is_evictable(vdl):
                    victim = block
                    break
            if victim is None:
                return evicted
            del self._blocks[victim]
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def evict(self, block: int, vdl: int) -> bool:
        """Explicitly evict one block if the invariant allows it."""
        cached = self._blocks.get(block)
        if cached is None:
            return False
        if not cached.is_evictable(vdl):
            self.stats.eviction_blocked += 1
            return False
        del self._blocks[block]
        self.stats.evictions += 1
        return True

    def drop_all(self) -> None:
        """Crash: instance memory is ephemeral."""
        self._blocks.clear()

    def dirty_blocks(self, vdl: int) -> list[int]:
        """Blocks whose newest redo is not yet durable."""
        return [
            block
            for block, cached in self._blocks.items()
            if cached.latest_lsn > vdl
        ]

    def blocks(self) -> list[int]:
        return list(self._blocks)
