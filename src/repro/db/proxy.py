"""Connection-multiplexing serving tier: the RDS-Proxy analogue.

The paper's availability story ends at the storage tier, but the
production envelope is defined at the *client* edge: up to 15 read
replicas, sub-10 ms replica lag, and proxy-mediated sub-5-second
application recovery through failover.  This module supplies that front
tier for the simulator:

- :class:`ConnectionProxy` multiplexes very many *logical* client
  sessions (:class:`LogicalSession`) over a bounded pool of backend
  slots, applying backpressure (FIFO slot queueing) when fan-in exceeds
  the pool instead of melting the writer;
- writes always go to the cluster's current writer; reads are routed by
  :class:`ReplicaLagBalancer`, which picks the least-loaded,
  least-lagged online replica **subject to the session's read-your-writes
  floor** -- a session's reads never land on a replica whose applied VDL
  trails that session's last commit SCN (LARK's read-point discipline:
  commit SCNs are LSNs, so the floor is a direct frontier comparison);
- every operation runs a ClusterSession-equivalent retry loop (same
  :attr:`~repro.db.session.ClusterSession.RETRYABLE` taxonomy, same
  jittered :class:`~repro.core.retry.Backoff`), so sessions ride through
  writer failover (PR 4) and region failover (PR 7) transparently; the
  proxy measures each session's outage window and reports the recovery
  distribution against the 5 s budget;
- :class:`LagTracker` converts the replicas' LSN-denominated lag into
  *time* lag (how far behind the writer's redo frontier a replica's
  applied VDL is, in milliseconds) for the sub-10 ms SLO gate.

Everything here is generator-native: proxy operations are driven as
:class:`~repro.sim.process.Process` steps inside the event loop (they
never pump the loop themselves), which is what lets hundreds of
thousands of concurrent logical sessions coexist in one simulation.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.retry import Backoff, RetryPolicy
from repro.db.instance import InstanceState, WriterInstance
from repro.db.session import ClusterSession
from repro.errors import (
    ConfigurationError,
    LockConflictError,
    SimulationError,
)
from repro.sim.events import Future


@dataclass(frozen=True)
class ProxyConfig:
    """Shape of the serving tier.

    ``pool_size`` bounds concurrent backend operations (the multiplexing
    ratio is ``logical sessions / pool_size``); ``op_budget_ms`` bounds
    each operation's retry loop; ``recovery_budget_ms`` and
    ``lag_slo_ms`` are the published envelope the audit gates against.
    """

    pool_size: int = 256
    op_budget_ms: float = 30_000.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            base_ms=10.0, cap_ms=250.0, multiplier=2.0, jitter=0.5
        )
    )
    #: Replica time-lag SLO (the "sub-10ms replica lag" envelope).
    lag_slo_ms: float = 10.0
    #: Session recovery budget (the "sub-5s application recovery" envelope).
    recovery_budget_ms: float = 5_000.0
    #: Sampling cadence of the time-lag tracker.
    lag_sample_interval_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        if self.op_budget_ms <= 0 or self.lag_sample_interval_ms <= 0:
            raise ConfigurationError("proxy time bounds must be > 0")


@dataclass
class ProxyStats:
    """Counters and distributions the serving analysis consumes."""

    connects: int = 0
    reads: int = 0
    writes: int = 0
    #: Read routing mix.
    replica_reads: int = 0
    writer_reads: int = 0
    #: Times the RYW floor excluded at least one otherwise-eligible replica.
    floor_exclusions: int = 0
    #: Reads that fell back to the writer because no replica was eligible.
    writer_fallbacks: int = 0
    #: Backpressure: operations that had to queue for a pool slot.
    pool_waits: int = 0
    peak_in_flight: int = 0
    peak_queue_depth: int = 0
    #: Retryable faults absorbed inside the proxy's retry loop.
    retries: int = 0
    #: Per-session outage windows (first fault to next success), ms.
    recovery_samples: list = field(default_factory=list)
    read_latencies: list = field(default_factory=list)
    write_latencies: list = field(default_factory=list)


class LogicalSession:
    """One client's logical connection through the proxy.

    Carries the session's read-your-writes floor (`last_commit_scn`) and
    outage bookkeeping; holds no backend resources while idle -- that is
    the point of the multiplexing tier.
    """

    __slots__ = (
        "session_id",
        "last_commit_scn",
        "outage_started_at",
        "ops",
        "reads",
        "writes",
    )

    def __init__(self, session_id: int) -> None:
        self.session_id = session_id
        #: Highest commit SCN acknowledged to this session (an LSN).
        self.last_commit_scn = 0
        #: Sim time of the first retryable fault of the current outage,
        #: or ``None`` when the session is healthy.
        self.outage_started_at: float | None = None
        self.ops = 0
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogicalSession(id={self.session_id}, "
            f"floor={self.last_commit_scn})"
        )


class ReplicaLagBalancer:
    """Lag- and load-aware read routing with per-session RYW floors.

    Eligibility: the replica is attached, its host is reachable, and its
    applied VDL has caught up to the requesting session's floor.  Among
    eligible replicas the balancer picks the one with the fewest
    outstanding proxy reads, breaking ties by replication lag and then
    name -- deterministic for seeded replays.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._outstanding: dict[str, int] = {}

    def _candidates(self):
        replicas = getattr(self.cluster, "replicas", None) or {}
        network = getattr(self.cluster, "network", None)
        out = []
        for name in sorted(replicas):
            replica = replicas[name]
            if not replica.online:
                continue
            if network is not None and not network.is_up(name):
                continue
            out.append((name, replica))
        return out

    def pick(self, floor_scn: int, stats: ProxyStats | None = None):
        """The read target honouring ``floor_scn``; ``(None, None)`` if
        only the writer can serve this session's reads right now."""
        candidates = self._candidates()
        eligible = [
            (name, replica)
            for name, replica in candidates
            if replica.applied_vdl >= floor_scn
        ]
        if stats is not None and len(eligible) < len(candidates):
            stats.floor_exclusions += 1
        if not eligible:
            return None, None
        name, replica = min(
            eligible,
            key=lambda item: (
                self._outstanding.get(item[0], 0),
                item[1].replica_lag,
                item[0],
            ),
        )
        return name, replica

    def lease(self, name: str) -> None:
        self._outstanding[name] = self._outstanding.get(name, 0) + 1

    def release(self, name: str) -> None:
        count = self._outstanding.get(name, 0) - 1
        if count <= 0:
            self._outstanding.pop(name, None)
        else:
            self._outstanding[name] = count


class LagTracker:
    """Time-denominated replica lag, sampled on a fixed cadence.

    Replicas report lag in LSN units
    (:attr:`~repro.db.replica.ReplicaInstance.replica_lag`); the SLO is
    stated in *milliseconds*.  The tracker records the writer's durable
    frontier ``(vdl, time)`` each tick; a replica's time lag is ``now -
    t`` where ``t`` is the newest tick whose frontier it has fully
    applied -- i.e. how old the replica's view is.
    """

    def __init__(self, cluster, interval_ms: float = 5.0) -> None:
        self.cluster = cluster
        self.interval_ms = interval_ms
        #: Monotone (vdl, time) frontier history.
        self._frontier: deque = deque()
        #: Flat time-lag samples (ms) across replicas; the SLO input.
        self.samples: list = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.cluster.loop.schedule(self.interval_ms, self._tick)

    def _tick(self) -> None:
        loop = self.cluster.loop
        writer = getattr(self.cluster, "writer", None)
        now = loop.now
        if writer is not None and writer.state is InstanceState.OPEN:
            vdl = writer.vdl
            if not self._frontier or vdl >= self._frontier[-1][0]:
                self._frontier.append((vdl, now))
            replicas = getattr(self.cluster, "replicas", None) or {}
            floor = None
            for replica in replicas.values():
                if not replica.online:
                    continue
                applied = replica.applied_vdl
                self.samples.append(self._time_lag(applied, now))
                floor = applied if floor is None else min(floor, applied)
            if floor is not None:
                self._prune(floor)
        loop.schedule(self.interval_ms, self._tick)

    def _time_lag(self, applied_vdl: int, now: float) -> float:
        """Age of the newest fully-applied frontier tick, in ms."""
        caught_up_at = None
        for vdl, stamp in reversed(self._frontier):
            if vdl <= applied_vdl:
                caught_up_at = stamp
                break
        if caught_up_at is None:
            # Behind the whole recorded history: at least as old as it.
            caught_up_at = self._frontier[0][1] if self._frontier else now
        return max(0.0, now - caught_up_at)

    def _prune(self, floor_vdl: int) -> None:
        # Keep the newest entry at-or-below every replica's applied VDL;
        # everything older can never be a lag witness again.
        while len(self._frontier) > 1 and self._frontier[1][0] <= floor_vdl:
            self._frontier.popleft()


class ConnectionProxy:
    """The multiplexing front tier over one (geo-)cluster.

    Operations are generators meant to run inside simulator processes::

        proxy = ConnectionProxy(cluster)
        session = proxy.connect()

        def client():
            scn = yield from proxy.write(session, "k", "v")
            value = yield from proxy.read(session, "k")

        Process(cluster.loop, client())

    For tests and synchronous callers, :meth:`execute_read` /
    :meth:`execute_write` drive a single operation to completion.
    """

    RETRYABLE = ClusterSession.RETRYABLE

    def __init__(self, cluster, config: ProxyConfig | None = None) -> None:
        self.cluster = cluster
        self.config = config or ProxyConfig()
        self.stats = ProxyStats()
        self.balancer = ReplicaLagBalancer(cluster)
        self.lag = LagTracker(
            cluster, interval_ms=self.config.lag_sample_interval_ms
        )
        self._free = self.config.pool_size
        self._in_flight = 0
        self._waiters: deque = deque()
        self._session_seq = 0
        # Deterministic jitter stream, derived from the cluster seed (the
        # same discipline ClusterSession uses): parallel audit sweeps
        # must stay byte-identical to sequential ones.
        seed = getattr(getattr(cluster, "config", None), "seed", 0)
        self._rng = random.Random((seed * 2_654_435_761 + 97) & 0xFFFFFFFF)

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def connect(self) -> LogicalSession:
        """Open a logical session (no backend resources are held)."""
        session = LogicalSession(self._session_seq)
        self._session_seq += 1
        self.stats.connects += 1
        return session

    def start(self) -> None:
        """Arm the background lag tracker."""
        self.lag.start()

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    # ------------------------------------------------------------------
    # Bounded slot pool (the multiplexer)
    # ------------------------------------------------------------------
    def _acquire(self):
        if self._free > 0:
            self._free -= 1
        else:
            self.stats.pool_waits += 1
            waiter = Future(self.cluster.loop)
            self._waiters.append(waiter)
            self.stats.peak_queue_depth = max(
                self.stats.peak_queue_depth, len(self._waiters)
            )
            yield waiter
        self._in_flight += 1
        self.stats.peak_in_flight = max(
            self.stats.peak_in_flight, self._in_flight
        )

    def _release(self) -> None:
        self._in_flight -= 1
        if self._waiters:
            # Direct slot handoff: the oldest waiter inherits the slot
            # without it ever becoming free (FIFO fairness).  The wake-up
            # is deferred one event so a long drain of waiters unwinds
            # iteratively; resolving the future here would recurse
            # op -> release -> next op once per queued waiter.
            waiter = self._waiters.popleft()
            self.cluster.loop.call_soon(waiter.set_result, None)
        else:
            self._free += 1

    # ------------------------------------------------------------------
    # Retry-loop plumbing (ClusterSession semantics, generator-native)
    # ------------------------------------------------------------------
    def _await_writer(self, session: LogicalSession, deadline: float):
        """Yield until an open writer exists or the deadline passes.

        Waiting here *is* an outage from the session's point of view
        (the writer endpoint is unresolved), so the wait marks the
        session faulted even though no exception is raised.  Conversely,
        the wait ending *is* the session's recovery: the endpoint is
        re-established and its operation proceeds, so the outage window
        closes here rather than at operation completion.  If the window
        only closed on success, a parked operation that goes on to lose
        a post-promotion race (a lock conflict on a hot key, surfaced
        to the caller as an abort) would leave the window open across
        the session's idle think time until its *next* visit -- charging
        minutes of idleness to the failover recovery budget.  An outage
        stamped by a *fault* while the endpoint stayed up never passes
        through the waiting branch, so those windows still run until
        the next demonstrated service (success or conflict).
        """
        loop = self.cluster.loop
        waited = False
        while True:
            writer = getattr(self.cluster, "writer", None)
            if (
                writer is not None
                and not getattr(self.cluster, "failover_in_progress", False)
                and writer.state is InstanceState.OPEN
            ):
                if waited:
                    self._recovered(session)
                return writer
            waited = True
            if session.outage_started_at is None:
                session.outage_started_at = loop.now
            if loop.now > deadline:
                raise SimulationError(
                    "proxy: no open writer within the operation budget "
                    "(failover stalled or no coordinator armed?)"
                )
            yield min(5.0, max(0.1, deadline - loop.now))

    def _fault(self, session: LogicalSession) -> None:
        self.stats.retries += 1
        if session.outage_started_at is None:
            session.outage_started_at = self.cluster.loop.now

    def _recovered(self, session: LogicalSession) -> None:
        if session.outage_started_at is not None:
            self.stats.recovery_samples.append(
                self.cluster.loop.now - session.outage_started_at
            )
            session.outage_started_at = None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def read(self, session: LogicalSession, key):
        """Routed read honouring the session's read-your-writes floor."""
        yield from self._acquire()
        try:
            value = yield from self._read_op(session, key)
        finally:
            self._release()
        return value

    def write(self, session: LogicalSession, key, value):
        """Auto-commit write through the writer; returns the commit SCN
        and raises the session's RYW floor to it."""
        yield from self._acquire()
        try:
            scn = yield from self._write_op(session, key, value)
        finally:
            self._release()
        return scn

    def _read_op(self, session: LogicalSession, key):
        loop = self.cluster.loop
        started = loop.now
        deadline = started + self.config.op_budget_ms
        backoff = Backoff(self.config.retry, rng=self._rng)
        while True:
            name, replica = self.balancer.pick(
                session.last_commit_scn, self.stats
            )
            try:
                if replica is not None:
                    self.balancer.lease(name)
                    try:
                        value = yield from replica.get(key)
                    finally:
                        self.balancer.release(name)
                    self.stats.replica_reads += 1
                else:
                    writer = yield from self._await_writer(session, deadline)
                    value = yield from writer.get(key)
                    self.stats.writer_reads += 1
                    self.stats.writer_fallbacks += 1
            except self.RETRYABLE:
                self._fault(session)
                if loop.now > deadline:
                    raise
                yield max(0.1, backoff.next_delay())
                continue
            self._recovered(session)
            session.ops += 1
            session.reads += 1
            self.stats.reads += 1
            self.stats.read_latencies.append(loop.now - started)
            return value

    def _write_op(self, session: LogicalSession, key, value):
        loop = self.cluster.loop
        started = loop.now
        deadline = started + self.config.op_budget_ms
        backoff = Backoff(self.config.retry, rng=self._rng)
        while True:
            try:
                writer = yield from self._await_writer(session, deadline)
                txn = writer.begin()
                try:
                    yield from writer.put(txn, key, value)
                except LockConflictError:
                    # Not retryable here: the caller owns conflict
                    # resolution.  Release the txn before surfacing it.
                    # A conflict is proof of *service* -- the writer
                    # processed the request -- so any open outage window
                    # closes now; leaving it open would silently accrue
                    # the session's think time until its next visit and
                    # charge it to the failover recovery budget.
                    yield from writer.rollback(txn)
                    self._recovered(session)
                    raise
                scn = yield writer.commit(txn)
            except self.RETRYABLE:
                # Single-statement auto-commit: re-apply is a no-op by
                # construction, so the uncertain outcome is safely
                # retried -- the same contract as ClusterSession.write.
                self._fault(session)
                if loop.now > deadline:
                    raise
                yield max(0.1, backoff.next_delay())
                continue
            self._recovered(session)
            session.last_commit_scn = max(session.last_commit_scn, scn)
            session.ops += 1
            session.writes += 1
            self.stats.writes += 1
            self.stats.write_latencies.append(loop.now - started)
            return scn

    # ------------------------------------------------------------------
    # Synchronous conveniences (tests, notebooks)
    # ------------------------------------------------------------------
    def _drive(self, generator):
        from repro.sim.process import Process

        process = Process(self.cluster.loop, generator)
        future = process.completion
        loop = self.cluster.loop
        deadline = loop.now + 2 * self.config.op_budget_ms
        while not future.done:
            if not loop.step():
                raise SimulationError(
                    "event loop drained before the proxy op completed"
                )
            if loop.now > deadline:
                raise SimulationError(
                    "proxy operation exceeded twice its budget"
                )
        return future.result()

    def execute_read(self, session: LogicalSession, key):
        return self._drive(self.read(session, key))

    def execute_write(self, session: LogicalSession, key, value):
        return self._drive(self.write(session, key, value))
