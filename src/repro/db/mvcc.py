"""MVCC read views and version visibility (sections 3.1, 3.4).

"Aurora uses read views to support snapshot isolation ...  A read view
establishes a logical point in time before which a SQL statement must see
all changes and after which it may not see any changes other than its own."

This implementation anchors read views to **durable LSN points** (the VDL at
view creation), which makes visibility a pure LSN comparison:

    a version written by transaction T is visible to a view anchored at
    read-point P  iff  T committed with SCN <= P (or T is the viewer).

The active-transaction list Aurora MySQL tracks is implied here: any
transaction still active when the view was created will receive an SCN
greater than every LSN allocated so far, hence greater than P.  (Aurora
PostgreSQL similarly "writes records out of place, recording the
transaction id with each record"; our per-key version chains follow that
style.)

Commit status is durable volume state: commit records materialize
``{txn_id: scn}`` into transaction-table blocks, so replicas and recovered
writers resolve visibility without any consensus on transaction outcome.
:class:`TransactionStatusRegistry` is the in-memory cache of that state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.lsn import NULL_LSN
from repro.errors import TransactionError

#: Sentinel value stored in a version to mark a deletion.
TOMBSTONE = "__tombstone__"

#: A version as stored in a leaf block: (txn_id, value).  ``TOMBSTONE`` as
#: the value marks a delete.  Version tuples are ordered oldest-first.
Version = tuple[int, Any]


@dataclass(frozen=True)
class ReadView:
    """A snapshot anchored at a durable LSN point."""

    view_id: int
    read_point: int
    #: Transaction this view belongs to (its own writes are visible).
    txn_id: int = 0

    def sees_scn(self, scn: int | None) -> bool:
        """Is a commit with this SCN inside the snapshot?"""
        return scn is not None and scn <= self.read_point


class TransactionStatusRegistry:
    """Cache of transaction outcomes: txn_id -> commit SCN.

    Absence means "not known committed": either still active, aborted, or
    committed so long ago that the caller must consult the durable
    transaction-table blocks (the registry is loaded from them lazily).
    """

    def __init__(self) -> None:
        self._commits: dict[int, int] = {}
        self._aborted: set[int] = set()

    def record_commit(self, txn_id: int, scn: int) -> None:
        if txn_id in self._aborted:
            raise TransactionError(
                f"transaction {txn_id} already recorded as aborted"
            )
        existing = self._commits.get(txn_id)
        if existing is not None and existing != scn:
            raise TransactionError(
                f"conflicting SCNs for transaction {txn_id}: "
                f"{existing} vs {scn}"
            )
        self._commits[txn_id] = scn

    def record_abort(self, txn_id: int) -> None:
        if txn_id in self._commits:
            raise TransactionError(
                f"transaction {txn_id} already recorded as committed"
            )
        self._aborted.add(txn_id)

    def commit_scn(self, txn_id: int) -> int | None:
        return self._commits.get(txn_id)

    def is_aborted(self, txn_id: int) -> bool:
        return txn_id in self._aborted

    def load_txn_table_image(self, image: dict[Any, Any]) -> int:
        """Absorb a durable transaction-table block image; returns entries."""
        loaded = 0
        for txn_id, scn in image.items():
            if isinstance(txn_id, int) and isinstance(scn, int):
                self._commits.setdefault(txn_id, scn)
                loaded += 1
        return loaded

    def known_commits(self) -> dict[int, int]:
        return dict(self._commits)

    def clear(self) -> None:
        """Crash: registry cache is ephemeral (durable state is in blocks)."""
        self._commits.clear()
        self._aborted.clear()


def visible_value(
    versions: Iterable[Version],
    view: ReadView,
    registry: TransactionStatusRegistry,
) -> tuple[bool, Any]:
    """Resolve the value a read view sees in a version chain.

    Walks newest-to-oldest; the first visible version wins.  Returns
    ``(found, value)`` where ``found`` is False if no version is visible or
    the visible version is a tombstone.
    """
    for txn_id, value in reversed(tuple(versions)):
        if txn_id == view.txn_id or view.sees_scn(registry.commit_scn(txn_id)):
            if value == TOMBSTONE:
                return (False, None)
            return (True, value)
    return (False, None)


def prune_versions(
    versions: tuple[Version, ...],
    purge_point: int,
    registry: TransactionStatusRegistry,
    doomed_txns: frozenset[int] = frozenset(),
) -> tuple[Version, ...]:
    """Drop versions no present or future view can need.

    - Versions written by ``doomed_txns`` (rolled-back transactions) are
      removed outright (undo application).
    - Among committed versions with SCN <= ``purge_point`` (the PGMRPL-style
      floor), only the newest is kept: every live view's read point is at or
      above the floor, so older ones are unreachable -- the paper's "undo
      records may not be purged until all read views have advanced",
      inverted into version pruning.
    - Versions from unknown (in-flight) transactions are always kept.
    """
    survivors = [
        (txn_id, value)
        for txn_id, value in versions
        if txn_id not in doomed_txns
    ]
    # Index of the newest committed-below-floor version.
    newest_old = None
    for i in range(len(survivors) - 1, -1, -1):
        scn = registry.commit_scn(survivors[i][0])
        if scn is not None and scn <= purge_point:
            newest_old = i
            break
    if newest_old is None:
        return tuple(survivors)
    pruned = []
    for i, version in enumerate(survivors):
        scn = registry.commit_scn(version[0])
        is_old_committed = scn is not None and scn <= purge_point
        if is_old_committed and i < newest_old:
            continue
        pruned.append(version)
    return tuple(pruned)


class ReadViewManager:
    """Allocates read views and tracks the minimum active read point.

    The manager is the database-tier source of the PGMRPL advertisement:
    its :meth:`min_active_read_point` feeds
    :class:`repro.core.consistency.MinReadPointTracker`.
    """

    def __init__(self) -> None:
        self._next_view_id = 1
        self._active: dict[int, ReadView] = {}

    def open(self, read_point: int, txn_id: int = 0) -> ReadView:
        if read_point < NULL_LSN:
            raise TransactionError(f"invalid read point {read_point}")
        view = ReadView(
            view_id=self._next_view_id, read_point=read_point, txn_id=txn_id
        )
        self._next_view_id += 1
        self._active[view.view_id] = view
        return view

    def is_open(self, view: ReadView) -> bool:
        return view.view_id in self._active

    def close(self, view: ReadView) -> None:
        if view.view_id not in self._active:
            raise TransactionError(f"view {view.view_id} is not open")
        del self._active[view.view_id]

    def min_active_read_point(self) -> int | None:
        if not self._active:
            return None
        return min(v.read_point for v in self._active.values())

    @property
    def active_count(self) -> int:
        return len(self._active)

    def clear(self) -> None:
        self._active.clear()
