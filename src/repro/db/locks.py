"""Row-level locking at the database tier.

"Locking, transaction management, deadlocks, constraints, and other
conditions that influence whether an operation may proceed are all resolved
at the database tier" (section 2.3) -- storage nodes never vote.

The manager implements exclusive per-key write locks with a NO-WAIT /
immediate-abort discipline: a conflicting acquisition raises
:class:`LockConflictError` instead of queueing.  Readers never lock
(snapshot isolation reads versions, never current state), matching the
paper's MVCC design.  NO-WAIT keeps the simulated writer free of deadlocks
by construction; a wait-queue variant would change none of the storage
protocol behaviour this library reproduces.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import LockConflictError


class LockManager:
    """Exclusive write locks keyed by arbitrary hashable row keys."""

    def __init__(self) -> None:
        self._owners: dict[Hashable, int] = {}
        self._held_by_txn: dict[int, set[Hashable]] = {}
        self.conflicts = 0
        self.acquisitions = 0

    def acquire(self, txn_id: int, key: Hashable) -> None:
        """Take the write lock on ``key`` for ``txn_id`` (re-entrant)."""
        owner = self._owners.get(key)
        if owner is not None and owner != txn_id:
            self.conflicts += 1
            raise LockConflictError(
                f"key {key!r} is write-locked by transaction {owner}"
            )
        if owner is None:
            self._owners[key] = txn_id
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            self.acquisitions += 1

    def holder(self, key: Hashable) -> int | None:
        return self._owners.get(key)

    def locks_of(self, txn_id: int) -> set[Hashable]:
        return set(self._held_by_txn.get(txn_id, set()))

    def release_all(self, txn_id: int) -> int:
        """Drop every lock held by a finished transaction; returns count."""
        keys = self._held_by_txn.pop(txn_id, set())
        for key in keys:
            if self._owners.get(key) == txn_id:
                del self._owners[key]
        return len(keys)

    def clear(self) -> None:
        """Crash: lock state is ephemeral instance memory."""
        self._owners.clear()
        self._held_by_txn.clear()

    @property
    def held_count(self) -> int:
        return len(self._owners)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LockManager {len(self._owners)} locks held>"


def lock_keys_for(keys: list[Any]) -> list[Any]:
    """Deterministic lock acquisition order (avoids order-dependent
    conflicts in multi-key transactions)."""
    return sorted(keys, key=repr)
