"""Lease-based fencing -- the alternative Aurora rejects.

Section 2.4: "Some systems use leases to establish short term entitlements
to access the system, but leases introduce latency when one needs to wait
for expiry.  Aurora, rather than waiting for a lease to expire, just
changes the locks on the door."

:class:`LeaseFencing` models the lease protocol: a holder owns the resource
until its lease expires (renewing every ``renew_interval``); a new owner
taking over after the holder *appears* dead must wait out the remaining
lease term before it can safely act, because the old holder might still be
alive and writing.  Benchmark C5 compares that dead time against Aurora's
epoch bump, which costs one quorum round trip regardless of timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class Lease:
    holder: str
    granted_at: float
    expires_at: float


class LeaseFencing:
    """A single-resource lease manager with wall-clock semantics."""

    def __init__(
        self, lease_duration_ms: float, renew_interval_ms: float | None = None
    ) -> None:
        if lease_duration_ms <= 0:
            raise ConfigurationError("lease_duration_ms must be > 0")
        self.lease_duration_ms = lease_duration_ms
        self.renew_interval_ms = (
            renew_interval_ms
            if renew_interval_ms is not None
            else lease_duration_ms / 3.0
        )
        self.current: Lease | None = None
        self.grants = 0
        self.renewals = 0

    def acquire(self, holder: str, now: float) -> Lease:
        """Grant the lease if free or expired; raises otherwise."""
        if self.current is not None and now < self.current.expires_at:
            if self.current.holder != holder:
                raise ConfigurationError(
                    f"lease held by {self.current.holder} until "
                    f"{self.current.expires_at}"
                )
        self.current = Lease(
            holder=holder,
            granted_at=now,
            expires_at=now + self.lease_duration_ms,
        )
        self.grants += 1
        return self.current

    def renew(self, holder: str, now: float) -> Lease:
        if self.current is None or self.current.holder != holder:
            raise ConfigurationError(f"{holder} does not hold the lease")
        if now >= self.current.expires_at:
            raise ConfigurationError("lease already expired; re-acquire")
        self.current = Lease(
            holder=holder,
            granted_at=now,
            expires_at=now + self.lease_duration_ms,
        )
        self.renewals += 1
        return self.current

    def fencing_wait_ms(self, now: float) -> float:
        """How long a new owner must wait before it can safely take over.

        Zero if the lease is free or already expired; otherwise the
        remaining lease term.  This is the cost the paper's epochs avoid.
        """
        if self.current is None:
            return 0.0
        return max(0.0, self.current.expires_at - now)

    def failover_dead_time_ms(
        self, holder_crash_at: float, detection_delay_ms: float
    ) -> float:
        """Total unavailability after a holder crash under leases.

        The successor first detects the failure, then waits out whatever
        lease term remains.  With Aurora's epoch fencing the same failover
        costs detection plus a single quorum write (no waiting).
        """
        detected_at = holder_crash_at + detection_delay_ms
        return detection_delay_ms + self.fencing_wait_ms(detected_at)
