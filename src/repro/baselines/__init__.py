"""Baseline distributed-commit and replication protocols.

The paper's introduction positions Aurora against "two-phase commit (2PC),
Paxos commit, Paxos membership changes, and their variants", claiming the
systems built on them "may scale well but have order-of-magnitude worse
cost, performance, and peak to average latency".  To measure those claims
instead of taking them on faith, this package implements each comparator
from scratch on the same simulated network Aurora runs on:

- :mod:`repro.baselines.two_phase_commit` -- classic presumed-nothing 2PC
  with a blocking window when the coordinator dies.
- :mod:`repro.baselines.paxos` -- Multi-Paxos with a stable leader (the
  "consensus for every write" design of Spanner-like systems).
- :mod:`repro.baselines.raft` -- Raft-style leader replication with
  elections and heartbeats.
- :mod:`repro.baselines.mirrored` -- synchronous write-all / read-one
  mirroring plus an ARIES-style redo-replay recovery model.
- :mod:`repro.baselines.leases` -- lease-based fencing, the alternative to
  epochs that "introduce[s] latency when one needs to wait for expiry".
"""

from repro.baselines.leases import LeaseFencing
from repro.baselines.mirrored import AriesRecoveryModel, MirroredCluster
from repro.baselines.paxos import PaxosCluster
from repro.baselines.raft import RaftCluster
from repro.baselines.two_phase_commit import TwoPhaseCommitCluster

__all__ = [
    "AriesRecoveryModel",
    "LeaseFencing",
    "MirroredCluster",
    "PaxosCluster",
    "RaftCluster",
    "TwoPhaseCommitCluster",
]
