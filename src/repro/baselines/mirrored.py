"""Synchronous mirrored replication and ARIES-style recovery.

Two traditional designs the paper contrasts with:

- **write-all / read-one mirroring** (section 3: "traditional replication
  models where one writes to all copies, enabling a read from just one,
  though those models have worse write availability"):
  :class:`MirroredCluster` must collect an acknowledgement from *every*
  mirror before answering a write, so one slow or dead mirror stalls the
  write path -- the availability/latency trade Aurora's 4/6 quorum avoids.

- **redo replay at crash recovery** (section 2.4: "No redo replay is
  required as part of crash recovery since segments are able to generate
  data blocks on their own"): :class:`AriesRecoveryModel` is an analytic
  stand-in for a classic ARIES engine whose restart must re-apply every
  redo record since the last checkpoint, making recovery time proportional
  to log volume -- benchmark C8's comparator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.events import EventLoop, Future
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message, Network


@dataclass(frozen=True)
class MirrorWrite:
    seq: int
    key: object
    value: object


@dataclass(frozen=True)
class MirrorAck:
    seq: int
    mirror: str


class MirrorNode(Actor):
    """A synchronous mirror: applies the write, then acknowledges."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        disk: LatencyModel | None = None,
    ) -> None:
        super().__init__(name)
        self.rng = rng
        self.disk = disk if disk is not None else disk_service()
        self.data: dict = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, MirrorWrite):
            delay = self.disk.sample(self.rng)
            self.loop.schedule(delay, self._apply, message.src, payload)

    def _apply(self, primary: str, write: MirrorWrite) -> None:
        self.data[write.key] = write.value
        self.network.send(
            self.name, primary, MirrorAck(write.seq, self.name)
        )


@dataclass
class _PendingWrite:
    seq: int
    started: float
    future: Future
    acks: set[str] = field(default_factory=set)


class MirroredPrimary(Actor):
    """The primary of a write-all / read-one replica set."""

    def __init__(
        self, name: str, mirrors: list[str], rng: random.Random
    ) -> None:
        super().__init__(name)
        self.mirrors = list(mirrors)
        self.rng = rng
        self.data: dict = {}
        self._seq = 0
        self._pending: dict[int, _PendingWrite] = {}
        self.write_latencies: list[float] = []

    def write(self, key, value) -> Future:
        """Resolves only when EVERY mirror has acknowledged."""
        self._seq += 1
        seq = self._seq
        self.data[key] = value
        state = _PendingWrite(
            seq=seq, started=self.loop.now, future=Future(self.loop)
        )
        self._pending[seq] = state
        for mirror in self.mirrors:
            self.network.send(self.name, mirror, MirrorWrite(seq, key, value))
        return state.future

    def read(self, key):
        """Read-one: served locally, no network at all."""
        return self.data.get(key)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, MirrorAck):
            state = self._pending.get(payload.seq)
            if state is None:
                return
            state.acks.add(payload.mirror)
            if len(state.acks) == len(self.mirrors) and not state.future.done:
                self.write_latencies.append(self.loop.now - state.started)
                state.future.set_result(payload.seq)
                del self._pending[payload.seq]

    @property
    def stalled_writes(self) -> int:
        """Writes stuck waiting for a mirror (the availability weakness)."""
        return len(self._pending)


class MirroredCluster:
    """A primary plus N synchronous mirrors."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: random.Random,
        mirror_count: int = 2,
        azs: tuple[str, ...] = ("az1", "az2", "az3"),
    ) -> None:
        self.loop = loop
        self.network = network
        names = [f"mirror-{i}" for i in range(mirror_count)]
        self.mirrors = [MirrorNode(name, rng) for name in names]
        for i, mirror in enumerate(self.mirrors):
            network.attach(mirror, az=azs[(i + 1) % len(azs)])
        self.primary = MirroredPrimary("mirror-primary", names, rng)
        network.attach(self.primary, az=azs[0])

    def write(self, key, value) -> Future:
        return self.primary.write(key, value)


class AriesRecoveryModel:
    """Analytic model of classic redo-replay restart.

    Parameters are per-record costs; :meth:`recovery_time_ms` returns the
    restart time for a crash occurring ``records_since_checkpoint`` into
    the log.  Contrast with Aurora, where recovery cost is a read-quorum
    scan per protection group, independent of redo volume.
    """

    def __init__(
        self,
        redo_apply_us: float = 2.0,
        log_read_us: float = 0.5,
        analysis_pass_us: float = 0.2,
    ) -> None:
        if min(redo_apply_us, log_read_us, analysis_pass_us) < 0:
            raise ConfigurationError("per-record costs must be >= 0")
        self.redo_apply_us = redo_apply_us
        self.log_read_us = log_read_us
        self.analysis_pass_us = analysis_pass_us

    def recovery_time_ms(self, records_since_checkpoint: int) -> float:
        """ARIES restart: analysis pass + redo pass over the whole tail."""
        per_record_us = (
            self.analysis_pass_us + self.log_read_us + self.redo_apply_us
        )
        return records_since_checkpoint * per_record_us / 1000.0

    def checkpoint_interval_tradeoff(
        self,
        write_rate_per_s: float,
        checkpoint_cost_ms: float,
        interval_s: float,
    ) -> dict[str, float]:
        """Foreground checkpoint overhead versus worst-case recovery time.

        The classic tension Aurora dissolves by removing checkpoints from
        the database entirely (storage coalesces continuously).
        """
        worst_case_records = write_rate_per_s * interval_s
        return {
            "worst_case_recovery_ms": self.recovery_time_ms(
                int(worst_case_records)
            ),
            "checkpoint_overhead_pct": (
                100.0 * checkpoint_cost_ms / (interval_s * 1000.0)
            ),
        }
