"""Multi-Paxos with a stable leader.

This models the "consensus for every write" architecture the related-work
section attributes to Google Cloud Spanner: "a SQL database on a quorum
replicated system, using Multi-Paxos to establish consensus for every
write".

The leader runs phase 1 (PREPARE / PROMISE) once to own a ballot, then each
client value costs one phase-2 round: ACCEPT to all acceptors, chosen on a
majority of ACCEPTED.  Each acceptor force-writes its promise/acceptance
before answering (consensus safety requires it), so the per-write critical
path is: leader->acceptor network + acceptor disk + acceptor->leader
network, taken as the *majority order statistic* across acceptors -- the
jitter-amplifying structure Aurora's one-way quorum acks avoid, plus the
leader's inability to acknowledge out of order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.events import EventLoop, Future
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message, Network


@dataclass(frozen=True)
class PaxosPrepare:
    ballot: int


@dataclass(frozen=True)
class PaxosPromise:
    ballot: int
    acceptor: str
    #: (slot, accepted_ballot, value) triples the acceptor already holds.
    accepted: tuple[tuple[int, int, object], ...]


@dataclass(frozen=True)
class PaxosAccept:
    ballot: int
    slot: int
    value: object


@dataclass(frozen=True)
class PaxosAccepted:
    ballot: int
    slot: int
    acceptor: str


@dataclass(frozen=True)
class PaxosNack:
    ballot: int
    higher_ballot: int


class PaxosAcceptor(Actor):
    """A Paxos acceptor with simulated forced writes."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        disk: LatencyModel | None = None,
    ) -> None:
        super().__init__(name)
        self.rng = rng
        self.disk = disk if disk is not None else disk_service()
        self.promised_ballot = 0
        #: slot -> (ballot, value)
        self.accepted: dict[int, tuple[int, object]] = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PaxosPrepare):
            delay = self.disk.sample(self.rng)
            self.loop.schedule(delay, self._promise, message.src, payload)
        elif isinstance(payload, PaxosAccept):
            delay = self.disk.sample(self.rng)
            self.loop.schedule(delay, self._accept, message.src, payload)

    def _promise(self, leader: str, prepare: PaxosPrepare) -> None:
        if prepare.ballot <= self.promised_ballot:
            self.network.send(
                self.name,
                leader,
                PaxosNack(prepare.ballot, self.promised_ballot),
            )
            return
        self.promised_ballot = prepare.ballot
        accepted = tuple(
            (slot, ballot, value)
            for slot, (ballot, value) in sorted(self.accepted.items())
        )
        self.network.send(
            self.name,
            leader,
            PaxosPromise(prepare.ballot, self.name, accepted),
        )

    def _accept(self, leader: str, accept: PaxosAccept) -> None:
        if accept.ballot < self.promised_ballot:
            self.network.send(
                self.name,
                leader,
                PaxosNack(accept.ballot, self.promised_ballot),
            )
            return
        self.promised_ballot = accept.ballot
        self.accepted[accept.slot] = (accept.ballot, accept.value)
        self.network.send(
            self.name,
            leader,
            PaxosAccepted(accept.ballot, accept.slot, self.name),
        )


@dataclass
class _SlotState:
    value: object
    accepted_by: set[str] = field(default_factory=set)
    chosen: bool = False
    started: float = 0.0
    future: Future | None = None


class PaxosLeader(Actor):
    """A stable Multi-Paxos leader proposing client values."""

    def __init__(
        self,
        name: str,
        acceptors: list[str],
        rng: random.Random,
        ballot: int = 1,
    ) -> None:
        super().__init__(name)
        self.acceptors = list(acceptors)
        self.rng = rng
        self.ballot = ballot
        self.elected = False
        self._promises: set[str] = set()
        self._election_future: Future | None = None
        self._next_slot = 0
        self._slots: dict[int, _SlotState] = {}
        #: Slots are chosen in any order, but values are only *applied*
        #: (and clients answered) in slot order -- Multi-Paxos's in-order
        #: commit constraint, which converts one slow slot into head-of-
        #: line blocking.  Aurora's commit queue has the same structure
        #: but is fed by quorum acks, not consensus rounds.
        self._applied_upto = -1
        self.commit_latencies: list[float] = []

    @property
    def majority(self) -> int:
        return len(self.acceptors) // 2 + 1

    # ------------------------------------------------------------------
    # Phase 1: leadership
    # ------------------------------------------------------------------
    def elect(self) -> Future:
        """Run phase 1; resolves True when a majority has promised."""
        self._election_future = Future(self.loop)
        self._promises.clear()
        for acceptor in self.acceptors:
            self.network.send(self.name, acceptor, PaxosPrepare(self.ballot))
        return self._election_future

    # ------------------------------------------------------------------
    # Phase 2: one round per value
    # ------------------------------------------------------------------
    def propose(self, value: object) -> Future:
        """Replicate one value; resolves with its slot once chosen *and*
        all earlier slots are chosen (in-order commit)."""
        if not self.elected:
            raise RuntimeError("leader must be elected before proposing")
        slot = self._next_slot
        self._next_slot += 1
        state = _SlotState(
            value=value, started=self.loop.now, future=Future(self.loop)
        )
        self._slots[slot] = state
        for acceptor in self.acceptors:
            self.network.send(
                self.name, acceptor, PaxosAccept(self.ballot, slot, value)
            )
        return state.future

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PaxosPromise):
            self._on_promise(payload)
        elif isinstance(payload, PaxosAccepted):
            self._on_accepted(payload)
        elif isinstance(payload, PaxosNack):
            self.elected = False

    def _on_promise(self, promise: PaxosPromise) -> None:
        if promise.ballot != self.ballot or self.elected:
            return
        self._promises.add(promise.acceptor)
        if len(self._promises) >= self.majority:
            self.elected = True
            if self._election_future and not self._election_future.done:
                self._election_future.set_result(True)

    def _on_accepted(self, accepted: PaxosAccepted) -> None:
        if accepted.ballot != self.ballot:
            return
        state = self._slots.get(accepted.slot)
        if state is None or state.chosen:
            return
        state.accepted_by.add(accepted.acceptor)
        if len(state.accepted_by) >= self.majority:
            state.chosen = True
            self._apply_in_order()

    def _apply_in_order(self) -> None:
        while True:
            next_slot = self._applied_upto + 1
            state = self._slots.get(next_slot)
            if state is None or not state.chosen:
                return
            self._applied_upto = next_slot
            if state.future is not None and not state.future.done:
                self.commit_latencies.append(self.loop.now - state.started)
                state.future.set_result(next_slot)


class PaxosCluster:
    """One leader + N acceptors, pre-elected and ready to propose."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: random.Random,
        acceptor_count: int = 6,
        azs: tuple[str, ...] = ("az1", "az2", "az3"),
    ) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        names = [f"paxos-a{i}" for i in range(acceptor_count)]
        self.acceptors = [PaxosAcceptor(name, rng) for name in names]
        for i, acceptor in enumerate(self.acceptors):
            network.attach(acceptor, az=azs[i % len(azs)])
        self.leader = PaxosLeader("paxos-leader", names, rng)
        network.attach(self.leader, az=azs[0])

    def elect(self) -> Future:
        return self.leader.elect()

    def propose(self, value: object = None) -> Future:
        return self.leader.propose(value)
