"""Two-phase commit over the simulated network.

The textbook protocol Aurora avoids: the coordinator sends PREPARE to every
participant, each participant force-writes a prepare record and votes, the
coordinator force-writes the decision and broadcasts COMMIT/ABORT, and the
participants acknowledge after their own force-write.

Two properties the paper's argument relies on fall straight out of the
implementation:

- **latency**: a commit costs two sequential network round trips to *every*
  participant plus three forced disk writes on the critical path, versus
  Aurora's single one-way record send + quorum of one-way acks;
- **blocking**: a participant that has voted YES may neither commit nor
  abort until it hears the decision -- if the coordinator crashes in the
  window between collecting votes and broadcasting, participants hold
  their locks indefinitely (:attr:`TPCParticipant.blocked_transactions`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.events import EventLoop, Future
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message, Network


@dataclass(frozen=True)
class TPCPrepare:
    txn_id: int
    payload: object


@dataclass(frozen=True)
class TPCVote:
    txn_id: int
    participant: str
    yes: bool


@dataclass(frozen=True)
class TPCDecision:
    txn_id: int
    commit: bool


@dataclass(frozen=True)
class TPCAck:
    txn_id: int
    participant: str


class TPCParticipant(Actor):
    """One resource manager."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        disk: LatencyModel | None = None,
        vote_yes: bool = True,
    ) -> None:
        super().__init__(name)
        self.rng = rng
        self.disk = disk if disk is not None else disk_service()
        self.vote_yes = vote_yes
        #: txn_id -> payload for transactions in the prepared (blocking)
        #: window: voted YES, decision not yet received.
        self.prepared: dict[int, object] = {}
        self.committed: set[int] = set()
        self.aborted: set[int] = set()

    @property
    def blocked_transactions(self) -> list[int]:
        """Transactions stuck awaiting a decision (the blocking window)."""
        return sorted(self.prepared)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, TPCPrepare):
            # Force-write the prepare record, then vote.
            delay = self.disk.sample(self.rng)
            self.loop.schedule(delay, self._vote, message.src, payload)
        elif isinstance(payload, TPCDecision):
            delay = self.disk.sample(self.rng)
            self.loop.schedule(delay, self._decide, message.src, payload)

    def _vote(self, coordinator: str, prepare: TPCPrepare) -> None:
        if self.vote_yes:
            self.prepared[prepare.txn_id] = prepare.payload
        self.network.send(
            self.name,
            coordinator,
            TPCVote(
                txn_id=prepare.txn_id,
                participant=self.name,
                yes=self.vote_yes,
            ),
        )

    def _decide(self, coordinator: str, decision: TPCDecision) -> None:
        self.prepared.pop(decision.txn_id, None)
        if decision.commit:
            self.committed.add(decision.txn_id)
        else:
            self.aborted.add(decision.txn_id)
        self.network.send(
            self.name,
            coordinator,
            TPCAck(txn_id=decision.txn_id, participant=self.name),
        )


@dataclass
class _InFlight:
    txn_id: int
    votes: dict[str, bool] = field(default_factory=dict)
    acks: set[str] = field(default_factory=set)
    decided: bool = False
    started: float = 0.0
    future: Future | None = None


class TPCCoordinator(Actor):
    """The transaction coordinator."""

    def __init__(
        self,
        name: str,
        participants: list[str],
        rng: random.Random,
        disk: LatencyModel | None = None,
    ) -> None:
        super().__init__(name)
        self.participants = list(participants)
        self.rng = rng
        self.disk = disk if disk is not None else disk_service()
        self._next_txn = 1
        self._inflight: dict[int, _InFlight] = {}
        self.commit_latencies: list[float] = []

    def commit(self, payload: object = None) -> Future:
        """Run one distributed commit; resolves with (txn_id, committed)."""
        txn_id = self._next_txn
        self._next_txn += 1
        state = _InFlight(
            txn_id=txn_id, started=self.loop.now, future=Future(self.loop)
        )
        self._inflight[txn_id] = state
        for participant in self.participants:
            self.network.send(
                self.name, participant, TPCPrepare(txn_id, payload)
            )
        return state.future

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, TPCVote):
            self._on_vote(payload)
        elif isinstance(payload, TPCAck):
            self._on_ack(payload)

    def _on_vote(self, vote: TPCVote) -> None:
        state = self._inflight.get(vote.txn_id)
        if state is None or state.decided:
            return
        state.votes[vote.participant] = vote.yes
        if len(state.votes) < len(self.participants):
            return
        state.decided = True
        commit = all(state.votes.values())
        # Force-write the decision record before broadcasting.
        delay = self.disk.sample(self.rng)
        self.loop.schedule(delay, self._broadcast_decision, state, commit)

    def _broadcast_decision(self, state: _InFlight, commit: bool) -> None:
        for participant in self.participants:
            self.network.send(
                self.name, participant, TPCDecision(state.txn_id, commit)
            )
        # The client can be answered once the decision is durable (the
        # acks only close out the protocol), which is the charitable
        # latency accounting for 2PC.
        if state.future is not None and not state.future.done:
            self.commit_latencies.append(self.loop.now - state.started)
            state.future.set_result((state.txn_id, commit))

    def _on_ack(self, ack: TPCAck) -> None:
        state = self._inflight.get(ack.txn_id)
        if state is None:
            return
        state.acks.add(ack.participant)
        if len(state.acks) == len(self.participants):
            del self._inflight[ack.txn_id]


class TwoPhaseCommitCluster:
    """Convenience wiring: one coordinator + N participants on a network."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: random.Random,
        participant_count: int = 6,
        azs: tuple[str, ...] = ("az1", "az2", "az3"),
    ) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        names = [f"tpc-p{i}" for i in range(participant_count)]
        self.participants = [TPCParticipant(name, rng) for name in names]
        for i, participant in enumerate(self.participants):
            network.attach(participant, az=azs[i % len(azs)])
        self.coordinator = TPCCoordinator("tpc-coord", names, rng)
        network.attach(self.coordinator, az=azs[0])

    def commit(self) -> Future:
        return self.coordinator.commit()

    def crash_coordinator(self) -> None:
        self.network.fail_node(self.coordinator.name)

    def blocked_transaction_count(self) -> int:
        return sum(
            len(p.blocked_transactions) for p in self.participants
        )
