"""Raft-style leader replication with elections and heartbeats.

A compact but operational Raft [Ongaro & Ousterhout 2014, cited by the
paper]: randomized election timeouts, term-stamped RequestVote /
AppendEntries, majority commit, and log repair via the nextIndex backoff.
Log compaction and membership change are out of scope -- the benchmarks use
Raft for (a) per-write commit latency under a consensus round and (b) the
availability gap while a failed leader's term times out and a new leader
is elected, which is exactly the "I/O stall" window Aurora's membership
epochs avoid.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.sim.events import EventLoop, Future
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message, Network


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    term: int
    value: object


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: str
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader: str
    prev_index: int
    prev_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: str
    success: bool
    match_index: int


@dataclass
class _Pending:
    index: int
    started: float
    future: Future


class RaftNode(Actor):
    """One Raft peer."""

    def __init__(
        self,
        name: str,
        peers: list[str],
        rng: random.Random,
        disk: LatencyModel | None = None,
        election_timeout: tuple[float, float] = (150.0, 300.0),
        heartbeat_interval: float = 50.0,
    ) -> None:
        super().__init__(name)
        self.peers = [p for p in peers if p != name]
        self.rng = rng
        self.disk = disk if disk is not None else disk_service()
        self.election_timeout = election_timeout
        self.heartbeat_interval = heartbeat_interval
        self.role = Role.FOLLOWER
        self.term = 0
        self.voted_for: str | None = None
        self.log: list[LogEntry] = []
        self.commit_index = -1
        self.votes: set[str] = set()
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._pending: list[_Pending] = []
        self._timer_generation = 0
        self.commit_latencies: list[float] = []
        self.became_leader_at: float | None = None

    @property
    def cluster_size(self) -> int:
        return len(self.peers) + 1

    @property
    def majority(self) -> int:
        return self.cluster_size // 2 + 1

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._reset_election_timer()

    def _reset_election_timer(self) -> None:
        self._timer_generation += 1
        generation = self._timer_generation
        timeout = self.rng.uniform(*self.election_timeout)
        self.loop.schedule(timeout, self._maybe_start_election, generation)

    def _maybe_start_election(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # timer was reset by a heartbeat
        if self.role is Role.LEADER:
            return
        if self.network is None or not self.network.is_up(self.name):
            self._reset_election_timer()
            return
        self._start_election()

    def _start_election(self) -> None:
        self.term += 1
        self.role = Role.CANDIDATE
        self.voted_for = self.name
        self.votes = {self.name}
        last_index = len(self.log) - 1
        last_term = self.log[last_index].term if self.log else 0
        for peer in self.peers:
            self.network.send(
                self.name,
                peer,
                RequestVote(self.term, self.name, last_index, last_term),
            )
        self._reset_election_timer()

    def _heartbeat(self, generation: int) -> None:
        if generation != self._timer_generation or self.role is not Role.LEADER:
            return
        self._broadcast_append()
        self.loop.schedule(self.heartbeat_interval, self._heartbeat, generation)

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def propose(self, value: object) -> Future:
        """Replicate one value; resolves with its index once committed."""
        future = Future(self.loop)
        if self.role is not Role.LEADER:
            future.set_exception(RuntimeError(f"{self.name} is not leader"))
            return future
        self.log.append(LogEntry(self.term, value))
        index = len(self.log) - 1
        self._pending.append(
            _Pending(index=index, started=self.loop.now, future=future)
        )
        self._broadcast_append()
        return future

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, RequestVote):
            self._on_request_vote(payload)
        elif isinstance(payload, VoteReply):
            self._on_vote_reply(payload)
        elif isinstance(payload, AppendEntries):
            self._on_append(payload)
        elif isinstance(payload, AppendReply):
            self._on_append_reply(payload)

    def _observe_term(self, term: int) -> None:
        if term > self.term:
            self.term = term
            self.role = Role.FOLLOWER
            self.voted_for = None

    def _on_request_vote(self, request: RequestVote) -> None:
        self._observe_term(request.term)
        grant = False
        if request.term == self.term and self.voted_for in (None, request.candidate):
            my_last = len(self.log) - 1
            my_last_term = self.log[my_last].term if self.log else 0
            candidate_current = (
                request.last_log_term,
                request.last_log_index,
            ) >= (my_last_term, my_last)
            if candidate_current:
                grant = True
                self.voted_for = request.candidate
                self._reset_election_timer()
        self.network.send(
            self.name,
            request.candidate,
            VoteReply(self.term, self.name, grant),
        )

    def _on_vote_reply(self, reply: VoteReply) -> None:
        self._observe_term(reply.term)
        if self.role is not Role.CANDIDATE or reply.term != self.term:
            return
        if reply.granted:
            self.votes.add(reply.voter)
            if len(self.votes) >= self.majority:
                self._become_leader()

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.became_leader_at = self.loop.now
        self.next_index = {p: len(self.log) for p in self.peers}
        self.match_index = {p: -1 for p in self.peers}
        self._timer_generation += 1
        self._broadcast_append()
        self.loop.schedule(
            self.heartbeat_interval, self._heartbeat, self._timer_generation
        )

    def _broadcast_append(self) -> None:
        for peer in self.peers:
            next_idx = self.next_index.get(peer, len(self.log))
            prev_index = next_idx - 1
            prev_term = (
                self.log[prev_index].term if 0 <= prev_index < len(self.log)
                else 0
            )
            entries = tuple(self.log[next_idx:])
            self.network.send(
                self.name,
                peer,
                AppendEntries(
                    term=self.term,
                    leader=self.name,
                    prev_index=prev_index,
                    prev_term=prev_term,
                    entries=entries,
                    leader_commit=self.commit_index,
                ),
            )

    def _on_append(self, append: AppendEntries) -> None:
        self._observe_term(append.term)
        if append.term < self.term:
            self.network.send(
                self.name,
                append.leader,
                AppendReply(self.term, self.name, False, -1),
            )
            return
        self.role = Role.FOLLOWER
        self._reset_election_timer()
        # Consistency check on the previous entry.
        if append.prev_index >= 0 and (
            append.prev_index >= len(self.log)
            or self.log[append.prev_index].term != append.prev_term
        ):
            self.network.send(
                self.name,
                append.leader,
                AppendReply(self.term, self.name, False, -1),
            )
            return
        # Append (truncating any conflicting suffix) with a forced write.
        insert_at = append.prev_index + 1
        self.log = self.log[:insert_at] + list(append.entries)
        match = len(self.log) - 1
        if append.leader_commit > self.commit_index:
            self.commit_index = min(append.leader_commit, match)
        delay = self.disk.sample(self.rng) if append.entries else 0.0
        self.loop.schedule(
            delay,
            lambda: self.network.send(
                self.name,
                append.leader,
                AppendReply(self.term, self.name, True, match),
            ),
        )

    def _on_append_reply(self, reply: AppendReply) -> None:
        self._observe_term(reply.term)
        if self.role is not Role.LEADER or reply.term != self.term:
            return
        if not reply.success:
            self.next_index[reply.follower] = max(
                0, self.next_index.get(reply.follower, len(self.log)) - 1
            )
            self._broadcast_append()
            return
        self.match_index[reply.follower] = reply.match_index
        self.next_index[reply.follower] = reply.match_index + 1
        self._advance_commit()

    def _advance_commit(self) -> None:
        for index in range(len(self.log) - 1, self.commit_index, -1):
            if self.log[index].term != self.term:
                continue
            replicas = 1 + sum(
                1 for m in self.match_index.values() if m >= index
            )
            if replicas >= self.majority:
                self.commit_index = index
                break
        self._ack_pending()

    def _ack_pending(self) -> None:
        remaining = []
        for pending in self._pending:
            if pending.index <= self.commit_index:
                if not pending.future.done:
                    self.commit_latencies.append(
                        self.loop.now - pending.started
                    )
                    pending.future.set_result(pending.index)
            else:
                remaining.append(pending)
        self._pending = remaining


class RaftCluster:
    """N Raft peers; call :meth:`elect_first_leader` before proposing."""

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        rng: random.Random,
        node_count: int = 5,
        azs: tuple[str, ...] = ("az1", "az2", "az3"),
    ) -> None:
        self.loop = loop
        self.network = network
        self.rng = rng
        names = [f"raft-{i}" for i in range(node_count)]
        self.nodes = [RaftNode(name, names, rng) for name in names]
        for i, node in enumerate(self.nodes):
            network.attach(node, az=azs[i % len(azs)])
            node.start()

    def leader(self) -> RaftNode | None:
        leaders = [
            n
            for n in self.nodes
            if n.role is Role.LEADER and self.network.is_up(n.name)
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.term)

    def elect_first_leader(self, max_ms: float = 5_000.0) -> RaftNode:
        deadline = self.loop.now + max_ms
        while self.loop.now < deadline:
            self.loop.run(until=self.loop.now + 50.0)
            node = self.leader()
            if node is not None:
                return node
        raise RuntimeError("no Raft leader elected within the deadline")
