"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo``      -- the quickstart scenario with a final cluster report;
- ``workload``  -- run a named OLTP profile and print latency statistics;
- ``faults``    -- a guided failure tour: AZ outage, crash recovery,
  membership change, each with before/after consistency points;
- ``report``    -- build a cluster, run brief traffic, dump the report;
- ``audit-run`` -- seeded chaos schedule + runtime invariant auditor;
  exits nonzero with a violation report if any safety invariant broke.

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.report import cluster_report, format_report
from repro.workloads import PROFILES, WorkloadGenerator, WorkloadRunner, profile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Amazon Aurora: On Avoiding Distributed "
            "Consensus for I/Os, Commits, and Membership Changes' "
            "(SIGMOD 2018)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="simulation seed"
    )
    # Accept --seed after the subcommand too (friendlier UX).
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument("--seed", type=int, default=None,
                             dest="sub_seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "demo", help="quickstart scenario + cluster report",
        parents=[seed_parent],
    )

    workload = sub.add_parser(
        "workload", help="run an OLTP profile and report latencies",
        parents=[seed_parent],
    )
    workload.add_argument(
        "--profile", choices=sorted(PROFILES), default="read_write"
    )
    workload.add_argument("--clients", type=int, default=4)
    workload.add_argument("--txns", type=int, default=50)
    workload.add_argument(
        "--full-tail", action="store_true",
        help="use the 3 full + 3 tail segment mix (section 4.2)",
    )

    sub.add_parser(
        "faults", help="guided tour: AZ outage, crash recovery, repair",
        parents=[seed_parent],
    )

    multiwriter = sub.add_parser(
        "multiwriter",
        help="the multi-writer extension: journal-ordered cross-partition "
             "transactions",
        parents=[seed_parent],
    )
    multiwriter.add_argument("--partitions", type=int, default=3)
    multiwriter.add_argument("--transfers", type=int, default=10)

    report = sub.add_parser(
        "report", help="dump a cluster report", parents=[seed_parent]
    )
    report.add_argument("--txns", type=int, default=30)
    report.add_argument("--replicas", type=int, default=1)

    audit = sub.add_parser(
        "audit-run",
        help="chaos workload with the runtime invariant auditor armed",
        parents=[seed_parent],
    )
    audit.add_argument("--steps", type=int, default=2000)
    audit.add_argument("--replicas", type=int, default=1)
    audit.add_argument(
        "--tail", type=int, default=48,
        help="protocol events kept for the violation report tail",
    )
    audit.add_argument(
        "--sweep", type=int, default=0, metavar="N",
        help="run N consecutive seeds starting at --seed (CI sweeps)",
    )
    audit.add_argument(
        "--no-heal", action="store_true",
        help="disable the self-healing control plane (health monitor + "
             "repair planner)",
    )
    audit.add_argument(
        "--no-background", action="store_true",
        help="disable stochastic MTTF/MTTR background node failures",
    )
    audit.add_argument(
        "--mttf", type=float, default=3500.0, metavar="MS",
        help="background failure MTTF in simulated ms",
    )
    audit.add_argument(
        "--mttr", type=float, default=150.0, metavar="MS",
        help="background failure MTTR in simulated ms",
    )
    audit.add_argument(
        "--fleet", action="store_true",
        help="fleet mode: 10-PG volume, a 9-PG permanent kill storm with "
             "a same-PG double fault, correlated AZ failure bursts, and "
             "the >=8 concurrent-repair gate; the sweep footer reports "
             "detection/MTTR distributions and achieved durability vs "
             "the paper's C7 window",
    )
    audit.add_argument(
        "--pgs", type=int, default=0, metavar="N",
        help="override the protection-group count (default: 1, or 10 "
             "with --fleet)",
    )
    audit.add_argument(
        "--failover", action="store_true",
        help="arm database-tier failover: passive writer health "
             "monitoring plus autonomous replica promotion answer chaos "
             "writer kills and grey failures (implied by --fleet); the "
             "sweep footer reports failover windows vs the ~30s budget",
    )
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    cluster = AuroraCluster.build(seed=args.seed)
    db = cluster.session()
    txn = db.begin()
    db.put(txn, "hello", "aurora")
    scn = db.commit(txn)
    print(f"committed 'hello' at SCN {scn}; read back: {db.get('hello')!r}")
    cluster.crash_writer()
    db.drive(cluster.recover_writer())
    print(f"crashed + recovered; 'hello' survived: {db.get('hello')!r}")
    print()
    print(format_report(cluster_report(cluster)))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    config = ClusterConfig(seed=args.seed, full_tail=args.full_tail)
    cluster = AuroraCluster.build(config)
    generator = WorkloadGenerator(profile(args.profile), seed=args.seed)
    runner = WorkloadRunner(cluster, generator)
    stats = runner.run_closed_loop(
        clients=args.clients, transactions_per_client=args.txns
    )
    summary = stats.summary()
    print(f"profile={args.profile} clients={args.clients} "
          f"txns/client={args.txns} full_tail={args.full_tail}")
    print(f"  committed={summary['committed']:.0f} "
          f"aborted={summary['aborted']:.0f}")
    print(f"  commit latency ms: p50={summary['p50_ms']:.3f} "
          f"p95={summary['p95_ms']:.3f} p99={summary['p99_ms']:.3f} "
          f"mean={summary['mean_ms']:.3f}")
    print(f"  peak/average={summary['peak_to_average']:.2f}")
    print(f"  simulated time: {cluster.loop.now:.1f} ms")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    cluster = AuroraCluster.build(seed=args.seed)
    db = cluster.session()
    db.write_many({f"row{i:02d}": i for i in range(10)})
    print(f"[t={cluster.loop.now:7.1f}] 10 rows committed; "
          f"VCL={cluster.writer.vcl}")

    cluster.failures.crash_az("az3")
    db.write("during-az-outage", 1)
    print(f"[t={cluster.loop.now:7.1f}] az3 down; commit still completed "
          f"(4/6 quorum)")

    cluster.failures.restore_az("az3")
    cluster.run_for(300)
    scls = set(cluster.segment_scls(0).values())
    print(f"[t={cluster.loop.now:7.1f}] az3 restored; gossip converged "
          f"SCLs={scls}")

    cluster.crash_writer()
    db = Session(cluster.writer)
    result = db.drive(cluster.recover_writer())
    print(f"[t={cluster.loop.now:7.1f}] writer crashed + recovered: "
          f"VCL={result.vcl}, volume epoch="
          f"{cluster.writer.driver.epochs.volume}")

    cluster.failures.crash_node("pg0-f")
    candidate = db.drive(cluster.replace_segment(0, "pg0-f"))
    print(f"[t={cluster.loop.now:7.1f}] pg0-f failed and was replaced by "
          f"{candidate} (membership epoch="
          f"{cluster.metadata.membership(0).epoch})")

    intact = all(db.get(f"row{i:02d}") == i for i in range(10))
    print(f"[t={cluster.loop.now:7.1f}] all original rows intact: {intact}")
    return 0 if intact else 1


def _cmd_multiwriter(args: argparse.Namespace) -> int:
    from repro.multiwriter import MultiWriterCluster

    mw = MultiWriterCluster(
        partition_count=args.partitions, seed=args.seed
    )
    session = mw.session()
    accounts = [f"acct{i:02d}" for i in range(args.partitions * 2)]
    for account in accounts:
        session.write(account, 100)
    total_before = sum(session.get(a) for a in accounts)
    for i in range(args.transfers):
        src = accounts[i % len(accounts)]
        dst = accounts[(i + 1) % len(accounts)]
        txn = session.begin()
        session.put(txn, src, session.get(src, txn=txn) - 5)
        session.put(txn, dst, session.get(dst, txn=txn) + 5)
        session.commit(txn)
    # Crash + recover every partition; the books must still balance.
    for index in range(mw.partition_count):
        mw.crash_partition(index)
        session.drive(mw.recover_partition(index))
    total_after = sum(session.get(a) for a in accounts)
    print(f"partitions={args.partitions} transfers={args.transfers}")
    print(f"  journal: {mw.journal.appends} appends, durable "
          f"gsn={mw.journal.durable_gsn}")
    print(f"  commit paths: {session.cross_partition_commits} journal / "
          f"{session.single_partition_commits} single-partition")
    print(f"  balance before={total_before} after all-partition "
          f"crash+recovery={total_after} (conserved: "
          f"{total_before == total_after})")
    return 0 if total_before == total_after else 1


def _cmd_report(args: argparse.Namespace) -> int:
    cluster = AuroraCluster.build(seed=args.seed)
    for i in range(args.replicas):
        cluster.add_replica(f"replica-{i + 1}")
    db = cluster.session()
    for i in range(args.txns):
        db.write(f"key{i:04d}", i)
    cluster.run_for(100)
    print(format_report(cluster_report(cluster)))
    return 0


def _cmd_audit_run(args: argparse.Namespace) -> int:
    from repro.audit import AuditRunConfig, run_audit
    from repro.repair.failover import FailoverSummary
    from repro.repair.metrics import RepairSummary

    seeds = (
        range(args.seed, args.seed + args.sweep)
        if args.sweep > 0
        else [args.seed]
    )
    failed = 0
    fleet = RepairSummary()
    fleet_failovers = FailoverSummary()
    for seed in seeds:
        config = AuditRunConfig(
            seed=seed,
            steps=args.steps,
            replicas=args.replicas,
            tail_size=args.tail,
            heal=not args.no_heal,
            background_failures=not args.no_background,
            background_mttf_ms=args.mttf,
            background_mttr_ms=args.mttr,
        )
        if args.fleet:
            config.as_fleet()
        if args.failover and not config.failover:
            # Standalone failover mode borrows the fleet writer-chaos
            # cadence without the storage storm.
            config.failover = True
            config.replicas = max(config.replicas, 2)
            config.writer_kill_period_ms = max(
                config.writer_kill_period_ms, 6000.0
            )
            config.writer_grey_period_ms = max(
                config.writer_grey_period_ms, 5000.0
            )
        if args.pgs > 0:
            config.pg_count = args.pgs
        report = run_audit(config)
        print(report.render())
        if not report.ok:
            failed += 1
        if report.repairs is not None:
            fleet.merge(report.repairs)
        if report.failovers is not None:
            fleet_failovers.merge(report.failovers)
        if args.sweep > 0:
            print()
    if args.sweep > 0:
        print(f"sweep: {len(seeds) - failed}/{len(seeds)} seeds clean")
        if fleet.resolution.count:
            from repro.analysis import fleet_durability

            durability = fleet_durability(
                # Every terminal outcome counts: judging the window only
                # by finalized repairs would be survivorship-biased.
                fleet.resolution.samples,
                detection_samples_ms=fleet.detection.samples,
            )
            print(
                f"fleet repair telemetry across {len(seeds)} seeds "
                f"(peak {fleet.peak_concurrent} concurrent PG repairs):"
            )
            for line in durability.render_lines():
                print(line)
        if fleet_failovers.unavailability.samples:
            from repro.analysis import failover_availability

            availability = failover_availability(
                fleet_failovers.unavailability.samples,
                detection_samples_ms=fleet_failovers.detection.samples,
                promotion_samples_ms=fleet_failovers.promotion.samples,
            )
            print(
                f"fleet failover telemetry across {len(seeds)} seeds "
                f"({fleet_failovers.confirmed} writer failovers):"
            )
            for line in availability.render_lines():
                print(line)
    return 1 if failed else 0


_COMMANDS = {
    "demo": _cmd_demo,
    "workload": _cmd_workload,
    "faults": _cmd_faults,
    "multiwriter": _cmd_multiwriter,
    "report": _cmd_report,
    "audit-run": _cmd_audit_run,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "sub_seed", None) is not None:
        args.seed = args.sub_seed
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
