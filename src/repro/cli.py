"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo``      -- the quickstart scenario with a final cluster report;
- ``workload``  -- run a named OLTP profile and print latency statistics;
- ``faults``    -- a guided failure tour: AZ outage, crash recovery,
  membership change, each with before/after consistency points;
- ``report``    -- build a cluster, run brief traffic, dump the report;
- ``audit-run`` -- seeded chaos schedule + runtime invariant auditor;
  exits nonzero with a violation report if any safety invariant broke.

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro import AuroraCluster, ClusterConfig
from repro.db.driver import GROUP_COMMIT_POLICIES
from repro.db.session import Session
from repro.report import cluster_report, format_report
from repro.workloads import PROFILES, WorkloadGenerator, WorkloadRunner, profile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Amazon Aurora: On Avoiding Distributed "
            "Consensus for I/Os, Commits, and Membership Changes' "
            "(SIGMOD 2018)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="simulation seed"
    )
    # Accept --seed after the subcommand too (friendlier UX).
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument("--seed", type=int, default=None,
                             dest="sub_seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "demo", help="quickstart scenario + cluster report",
        parents=[seed_parent],
    )

    workload = sub.add_parser(
        "workload", help="run an OLTP profile and report latencies",
        parents=[seed_parent],
    )
    workload.add_argument(
        "--profile", choices=sorted(PROFILES), default="read_write"
    )
    workload.add_argument("--clients", type=int, default=4)
    workload.add_argument("--txns", type=int, default=50)
    workload.add_argument(
        "--full-tail", action="store_true",
        help="use the 3 full + 3 tail segment mix (section 4.2)",
    )

    sub.add_parser(
        "faults", help="guided tour: AZ outage, crash recovery, repair",
        parents=[seed_parent],
    )

    multiwriter = sub.add_parser(
        "multiwriter",
        help="the multi-writer extension: journal-ordered cross-partition "
             "transactions",
        parents=[seed_parent],
    )
    multiwriter.add_argument("--partitions", type=int, default=3)
    multiwriter.add_argument("--transfers", type=int, default=10)

    report = sub.add_parser(
        "report", help="dump a cluster report", parents=[seed_parent]
    )
    report.add_argument("--txns", type=int, default=30)
    report.add_argument("--replicas", type=int, default=1)

    audit = sub.add_parser(
        "audit-run",
        help="chaos workload with the runtime invariant auditor armed",
        parents=[seed_parent],
    )
    audit.add_argument("--steps", type=int, default=2000)
    audit.add_argument("--replicas", type=int, default=1)
    audit.add_argument(
        "--tail", type=int, default=48,
        help="protocol events kept for the violation report tail",
    )
    audit.add_argument(
        "--sweep", type=int, default=0, metavar="N",
        help="run N consecutive seeds starting at --seed (CI sweeps)",
    )
    audit.add_argument(
        "--no-heal", action="store_true",
        help="disable the self-healing control plane (health monitor + "
             "repair planner)",
    )
    audit.add_argument(
        "--no-background", action="store_true",
        help="disable stochastic MTTF/MTTR background node failures",
    )
    audit.add_argument(
        "--mttf", type=float, default=3500.0, metavar="MS",
        help="background failure MTTF in simulated ms",
    )
    audit.add_argument(
        "--mttr", type=float, default=150.0, metavar="MS",
        help="background failure MTTR in simulated ms",
    )
    audit.add_argument(
        "--fleet", action="store_true",
        help="fleet mode: 10-PG volume, a 9-PG permanent kill storm with "
             "a same-PG double fault, correlated AZ failure bursts, and "
             "the >=8 concurrent-repair gate; the sweep footer reports "
             "detection/MTTR distributions and achieved durability vs "
             "the paper's C7 window",
    )
    audit.add_argument(
        "--pgs", type=int, default=0, metavar="N",
        help="override the protection-group count (default: 1, or 10 "
             "with --fleet)",
    )
    audit.add_argument(
        "--failover", action="store_true",
        help="arm database-tier failover: passive writer health "
             "monitoring plus autonomous replica promotion answer chaos "
             "writer kills and grey failures (implied by --fleet); the "
             "sweep footer reports failover windows vs the ~30s budget",
    )
    audit.add_argument(
        "--geo", action="store_true",
        help="geo disaster-recovery mode: a two-region Global Database "
             "over a lossy WAN, one terminal region event (region loss "
             "or split-brain partition) plus WAN brownouts and stream "
             "stalls per seed, gated on zero sync-acked commit loss, "
             "lag-bounded async RPO, and the RTO budget; the sweep "
             "footer reports merged RPO/RTO distributions",
    )
    audit.add_argument(
        "--geo-ack", choices=("auto", "sync", "async"), default="auto",
        help="geo commit ack mode; 'auto' alternates by seed parity so "
             "a sweep covers both RPO regimes",
    )
    audit.add_argument(
        "--proxy", action="store_true",
        help="serving-tier mode: a lag-aware connection-multiplexing "
             "proxy fronts the session fleet through one writer kill "
             "per seed, gated on zero acked-commit loss, zero "
             "read-your-writes violations, every session outage inside "
             "the 5s recovery budget, and steady-state replica time-lag "
             "p95 inside the 10ms SLO; the sweep footer merges per-seed "
             "serving reports",
    )
    audit.add_argument(
        "--proxy-sessions", type=int, default=100_000, metavar="N",
        help="concurrent logical sessions per seed in --proxy mode",
    )
    audit.add_argument(
        "--proxy-pool", type=int, default=128, metavar="N",
        help="backend connection-pool size in --proxy mode",
    )
    audit.add_argument(
        "--integrity", action="store_true",
        help="silent-corruption mode: seeded bit-rot, torn, lost, and "
             "misdirected writes against the storage fleet with read-time "
             "verification, scrub, and quorum-vote repair armed; gated on "
             "zero corrupt reads served and every corruption repaired "
             "inside the exposure budget; the sweep footer merges "
             "per-seed MTTD/MTTR/exposure distributions",
    )
    audit.add_argument(
        "--backend", choices=("aurora", "taurus"), default="aurora",
        help="storage backend under test in --integrity mode",
    )
    audit.add_argument(
        "--integrity-json", metavar="PATH", default="",
        help="write the merged integrity report as JSON to PATH "
             "(--integrity only)",
    )
    audit.add_argument(
        "--jobs", type=int, default=1, metavar="K",
        help="run sweep seeds across K worker processes (seeds are "
             "independent, so reports are byte-identical to --jobs 1)",
    )
    audit.add_argument(
        "--group-commit", choices=GROUP_COMMIT_POLICIES, default="fixed",
        help="writer group-commit policy: 'adaptive' derives the boxcar "
             "window from observed load (EWMA of arrival gaps), "
             "'quorum-piggyback' rides flushes on ack round-trips, "
             "'immediate' flushes per record",
    )

    bench = sub.add_parser(
        "bench-engine",
        help="engine perf harness: batched fast path vs an unbatched "
             "baseline of the same workload, written to BENCH_engine.json",
        parents=[seed_parent],
    )
    bench.add_argument("--steps", type=int, default=1200)
    bench.add_argument(
        "--sweep", type=int, default=4, metavar="N",
        help="seeds in the sweep wall-clock measurement",
    )
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="K",
        help="worker processes for the sweep measurement",
    )
    bench.add_argument(
        "--out", default="BENCH_engine.json",
        help="where to write the benchmark record",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="compare against the committed record at --out before "
             "overwriting it; exit nonzero on a >25%% throughput "
             "regression (machine-independent: both runs measure the "
             "batched/unbatched ratio on the same host) or on a "
             "genuinely-parallel >=4-seed sweep running no faster than "
             "the sequential one",
    )
    bench.add_argument(
        "--group-commit", choices=GROUP_COMMIT_POLICIES, default="fixed",
        help="group-commit policy for the measured batched runs "
             "(the unbatched baseline always flushes per record)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="cProfile one batched measured run and emit the top-25 "
             "cumulative-time functions as a text table plus a JSON "
             "artifact next to --out",
    )
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    cluster = AuroraCluster.build(seed=args.seed)
    db = cluster.session()
    txn = db.begin()
    db.put(txn, "hello", "aurora")
    scn = db.commit(txn)
    print(f"committed 'hello' at SCN {scn}; read back: {db.get('hello')!r}")
    cluster.crash_writer()
    db.drive(cluster.recover_writer())
    print(f"crashed + recovered; 'hello' survived: {db.get('hello')!r}")
    print()
    print(format_report(cluster_report(cluster)))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    config = ClusterConfig(seed=args.seed, full_tail=args.full_tail)
    cluster = AuroraCluster.build(config)
    generator = WorkloadGenerator(profile(args.profile), seed=args.seed)
    runner = WorkloadRunner(cluster, generator)
    stats = runner.run_closed_loop(
        clients=args.clients, transactions_per_client=args.txns
    )
    summary = stats.summary()
    print(f"profile={args.profile} clients={args.clients} "
          f"txns/client={args.txns} full_tail={args.full_tail}")
    print(f"  committed={summary['committed']:.0f} "
          f"aborted={summary['aborted']:.0f}")
    print(f"  commit latency ms: p50={summary['p50_ms']:.3f} "
          f"p95={summary['p95_ms']:.3f} p99={summary['p99_ms']:.3f} "
          f"mean={summary['mean_ms']:.3f}")
    print(f"  peak/average={summary['peak_to_average']:.2f}")
    print(f"  simulated time: {cluster.loop.now:.1f} ms")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    cluster = AuroraCluster.build(seed=args.seed)
    db = cluster.session()
    db.write_many({f"row{i:02d}": i for i in range(10)})
    print(f"[t={cluster.loop.now:7.1f}] 10 rows committed; "
          f"VCL={cluster.writer.vcl}")

    cluster.failures.crash_az("az3")
    db.write("during-az-outage", 1)
    print(f"[t={cluster.loop.now:7.1f}] az3 down; commit still completed "
          f"(4/6 quorum)")

    cluster.failures.restore_az("az3")
    cluster.run_for(300)
    scls = set(cluster.segment_scls(0).values())
    print(f"[t={cluster.loop.now:7.1f}] az3 restored; gossip converged "
          f"SCLs={scls}")

    cluster.crash_writer()
    db = Session(cluster.writer)
    result = db.drive(cluster.recover_writer())
    print(f"[t={cluster.loop.now:7.1f}] writer crashed + recovered: "
          f"VCL={result.vcl}, volume epoch="
          f"{cluster.writer.driver.epochs.volume}")

    cluster.failures.crash_node("pg0-f")
    candidate = db.drive(cluster.replace_segment(0, "pg0-f"))
    print(f"[t={cluster.loop.now:7.1f}] pg0-f failed and was replaced by "
          f"{candidate} (membership epoch="
          f"{cluster.metadata.membership(0).epoch})")

    intact = all(db.get(f"row{i:02d}") == i for i in range(10))
    print(f"[t={cluster.loop.now:7.1f}] all original rows intact: {intact}")
    return 0 if intact else 1


def _cmd_multiwriter(args: argparse.Namespace) -> int:
    from repro.multiwriter import MultiWriterCluster

    mw = MultiWriterCluster(
        partition_count=args.partitions, seed=args.seed
    )
    session = mw.session()
    accounts = [f"acct{i:02d}" for i in range(args.partitions * 2)]
    for account in accounts:
        session.write(account, 100)
    total_before = sum(session.get(a) for a in accounts)
    for i in range(args.transfers):
        src = accounts[i % len(accounts)]
        dst = accounts[(i + 1) % len(accounts)]
        txn = session.begin()
        session.put(txn, src, session.get(src, txn=txn) - 5)
        session.put(txn, dst, session.get(dst, txn=txn) + 5)
        session.commit(txn)
    # Crash + recover every partition; the books must still balance.
    for index in range(mw.partition_count):
        mw.crash_partition(index)
        session.drive(mw.recover_partition(index))
    total_after = sum(session.get(a) for a in accounts)
    print(f"partitions={args.partitions} transfers={args.transfers}")
    print(f"  journal: {mw.journal.appends} appends, durable "
          f"gsn={mw.journal.durable_gsn}")
    print(f"  commit paths: {session.cross_partition_commits} journal / "
          f"{session.single_partition_commits} single-partition")
    print(f"  balance before={total_before} after all-partition "
          f"crash+recovery={total_after} (conserved: "
          f"{total_before == total_after})")
    return 0 if total_before == total_after else 1


def _cmd_report(args: argparse.Namespace) -> int:
    cluster = AuroraCluster.build(seed=args.seed)
    for i in range(args.replicas):
        cluster.add_replica(f"replica-{i + 1}")
    db = cluster.session()
    for i in range(args.txns):
        db.write(f"key{i:04d}", i)
    cluster.run_for(100)
    print(format_report(cluster_report(cluster)))
    return 0


def _audit_config(args: argparse.Namespace, seed: int):
    """The AuditRunConfig for one sweep seed (shared by both runners)."""
    from repro.audit import AuditRunConfig

    config = AuditRunConfig(
        seed=seed,
        steps=args.steps,
        replicas=args.replicas,
        tail_size=args.tail,
        heal=not args.no_heal,
        background_failures=not args.no_background,
        background_mttf_ms=args.mttf,
        background_mttr_ms=args.mttr,
    )
    if args.fleet:
        config.as_fleet()
    if args.failover and not config.failover:
        # Standalone failover mode borrows the fleet writer-chaos
        # cadence without the storage storm.
        config.failover = True
        config.replicas = max(config.replicas, 2)
        config.writer_kill_period_ms = max(
            config.writer_kill_period_ms, 6000.0
        )
        config.writer_grey_period_ms = max(
            config.writer_grey_period_ms, 5000.0
        )
    if args.pgs > 0:
        config.pg_count = args.pgs
    if getattr(args, "geo", False):
        config.as_geo()
        config.geo_ack_mode = args.geo_ack
    if getattr(args, "proxy", False):
        config.as_proxy()
        config.proxy_sessions = args.proxy_sessions
        config.proxy_pool = args.proxy_pool
    if getattr(args, "integrity", False):
        config.as_integrity()
        config.backend = args.backend
    config.group_commit = getattr(args, "group_commit", "fixed")
    return config


def _cmd_audit_run(args: argparse.Namespace) -> int:
    from repro.audit import run_audit_sweep
    from repro.repair.failover import FailoverSummary
    from repro.repair.metrics import RepairSummary

    seeds = (
        range(args.seed, args.seed + args.sweep)
        if args.sweep > 0
        else [args.seed]
    )
    failed = 0
    fleet = RepairSummary()
    fleet_failovers = FailoverSummary()
    geo_records = []
    serving_reports = []
    integrity_reports = []
    configs = [_audit_config(args, seed) for seed in seeds]
    for report in run_audit_sweep(configs, jobs=args.jobs):
        print(report.render())
        if not report.ok:
            failed += 1
        if report.repairs is not None:
            fleet.merge(report.repairs)
        if report.failovers is not None:
            fleet_failovers.merge(report.failovers)
        geo_records.extend(report.geo_records)
        if report.serving is not None:
            serving_reports.append(report.serving)
        if report.integrity is not None:
            integrity_reports.append(report.integrity)
        if args.sweep > 0:
            print()
    if args.sweep > 0:
        print(f"sweep: {len(seeds) - failed}/{len(seeds)} seeds clean")
        if fleet.resolution.count:
            from repro.analysis import fleet_durability

            durability = fleet_durability(
                # Every terminal outcome counts: judging the window only
                # by finalized repairs would be survivorship-biased.
                fleet.resolution.samples,
                detection_samples_ms=fleet.detection.samples,
            )
            print(
                f"fleet repair telemetry across {len(seeds)} seeds "
                f"(peak {fleet.peak_concurrent} concurrent PG repairs):"
            )
            for line in durability.render_lines():
                print(line)
        if fleet_failovers.unavailability.samples:
            from repro.analysis import failover_availability

            availability = failover_availability(
                fleet_failovers.unavailability.samples,
                detection_samples_ms=fleet_failovers.detection.samples,
                promotion_samples_ms=fleet_failovers.promotion.samples,
            )
            print(
                f"fleet failover telemetry across {len(seeds)} seeds "
                f"({fleet_failovers.confirmed} writer failovers):"
            )
            for line in availability.render_lines():
                print(line)
        if geo_records:
            from repro.analysis import rpo_rto_from_records
            from repro.errors import ConfigurationError
            from repro.geo import summarize_geo_failovers

            print(
                f"geo disaster-recovery telemetry across {len(seeds)} "
                f"seeds:"
            )
            for line in summarize_geo_failovers(geo_records).render_lines():
                print(line)
            try:
                for line in rpo_rto_from_records(geo_records).render_lines():
                    print(line)
            except ConfigurationError:
                print("  (no promoted recovery to report RPO/RTO on)")
        if serving_reports:
            from repro.analysis import merge_serving_reports

            merged = merge_serving_reports(serving_reports)
            print(
                f"serving-tier telemetry across {len(seeds)} seeds:"
            )
            for line in merged.render_lines():
                print(line)
        if integrity_reports:
            from repro.analysis import merge_integrity_reports

            merged = merge_integrity_reports(integrity_reports)
            print(
                f"integrity telemetry across {len(seeds)} seeds "
                f"({merged.backend}):"
            )
            for line in merged.render_lines():
                print(line)
    if integrity_reports and getattr(args, "integrity_json", ""):
        import json

        from repro.analysis import merge_integrity_reports

        merged = merge_integrity_reports(integrity_reports)
        payload = merged.to_json()
        payload["seeds"] = len(integrity_reports)
        payload["seeds_clean"] = len(seeds) - failed
        with open(args.integrity_json, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"integrity report written to {args.integrity_json}")
    return 1 if failed else 0


def _bench_run(
    seed: int,
    steps: int,
    boxcar: str,
    detailed: bool,
    group_commit: str = "fixed",
) -> dict:
    """One measured run of the C1-style concurrent write workload.

    Returns engine telemetry (events/sec, messages/sec, per-type counts
    when ``detailed``) for a closed-loop write-only load -- the workload
    whose commit path the boxcar batching targets.
    """
    import time

    from repro.db.driver import BoxcarMode

    config = ClusterConfig(seed=seed)
    if boxcar == "immediate":
        config.instance.driver.boxcar_mode = BoxcarMode.IMMEDIATE
    config.instance.driver.group_commit = group_commit
    clients = 16
    cluster = AuroraCluster.build(config)
    cluster.network.set_stats_detail(detailed)
    cluster.add_replica("bench-replica")
    generator = WorkloadGenerator(profile("write_only"), seed=seed)
    runner = WorkloadRunner(cluster, generator)
    # Exclude cluster construction from the measured window.
    events0 = cluster.loop.events_executed
    messages0 = cluster.network.stats.messages_sent
    t0 = time.perf_counter()
    runner.run_closed_loop(
        clients=clients,
        transactions_per_client=max(steps // clients, 1),
    )
    wall = max(time.perf_counter() - t0, 1e-9)
    events = cluster.loop.events_executed - events0
    messages = cluster.network.stats.messages_sent - messages0
    return {
        "events_executed": events,
        "messages_sent": messages,
        "sim_time_ms": round(cluster.loop.now, 3),
        "wall_clock_s": round(wall, 4),
        "events_per_sec": round(events / wall),
        "messages_per_sec": round(messages / wall),
        "message_types": dict(cluster.network.stats.by_type),
    }


def _profile_bench(args: argparse.Namespace) -> list[dict]:
    """cProfile one batched run; top-25 functions by cumulative time."""
    import cProfile

    prof = cProfile.Profile()
    prof.enable()
    _bench_run(args.seed, args.steps, "aurora", False, args.group_commit)
    prof.disable()
    prof.create_stats()
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        prof.stats.items(), key=lambda kv: kv[1][3], reverse=True
    )[:25]:
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return rows


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    from repro.audit import AuditRunConfig, run_audit_sweep
    from repro.audit.runner import effective_sweep_jobs

    def best_of(boxcar: str, detailed: bool, reps: int = 3) -> dict:
        # Fastest of `reps` identical runs: scheduler noise only ever
        # slows a run down, so the minimum is the cleanest estimate.
        runs = [
            _bench_run(
                args.seed, args.steps, boxcar, detailed, args.group_commit
            )
            for _ in range(reps)
        ]
        return min(runs, key=lambda r: r["wall_clock_s"])

    # Single-seed comparison, measured in the same run: the unbatched
    # baseline and the batched fast path execute the same seeded C1-style
    # workload, so their ratio is machine-independent.
    print(f"bench-engine: seed={args.seed} steps={args.steps}")
    baseline = best_of("immediate", detailed=True)
    fast_detailed = best_of("aurora", detailed=True, reps=1)
    fast = best_of("aurora", detailed=False)
    speedup = baseline["wall_clock_s"] / fast["wall_clock_s"]

    base_batches = baseline["message_types"].get("WriteBatch", 0)
    fast_batches = fast_detailed["message_types"].get("WriteBatch", 0)
    fast_records = fast_detailed["message_types"].get(
        "WriteBatch.records", 0
    )
    batching_ratio = fast_records / max(fast_batches, 1)
    batch_reduction = base_batches / max(fast_batches, 1)

    # Sweep wall-clock: the batched fast path across consecutive seeds,
    # sequentially and (optionally) across --jobs worker processes.
    sweep_cfgs = [
        AuditRunConfig(seed=args.seed + i, steps=args.steps)
        for i in range(max(args.sweep, 1))
    ]
    t0 = time.perf_counter()
    sweep_reports = run_audit_sweep(sweep_cfgs, jobs=1)
    sequential_wall = time.perf_counter() - t0
    # Only measure the parallel lane when the sweep will genuinely fork:
    # on a box whose core count clamps --jobs to 1 the "parallel" wall is
    # the sequential wall plus pool overhead, which is noise, not signal.
    effective_jobs = effective_sweep_jobs(args.jobs, len(sweep_cfgs))
    parallel_wall = None
    if effective_jobs > 1:
        t0 = time.perf_counter()
        run_audit_sweep(sweep_cfgs, jobs=args.jobs)
        parallel_wall = time.perf_counter() - t0

    baseline.pop("message_types")
    fast.pop("message_types")
    record = {
        "schema": 1,
        "seed": args.seed,
        "steps": args.steps,
        "group_commit": args.group_commit,
        "single_seed": {
            "baseline_unbatched": baseline,
            "fast_batched": fast,
            "speedup": round(speedup, 3),
            "write_batches_unbatched": base_batches,
            "write_batches_batched": fast_batches,
            "write_records_batched": fast_records,
            "batching_ratio": round(batching_ratio, 2),
            "write_batch_reduction": round(batch_reduction, 2),
        },
        "sweep": {
            "seeds": len(sweep_cfgs),
            "jobs": args.jobs,
            "effective_jobs": effective_jobs,
            "sequential_wall_s": round(sequential_wall, 3),
            "parallel_wall_s": (
                round(parallel_wall, 3) if parallel_wall else None
            ),
            "per_seed_wall_s": [
                round(r.wall_clock_s, 4) for r in sweep_reports
            ],
            "all_clean": all(r.ok for r in sweep_reports),
        },
    }

    print(f"  unbatched baseline: "
          f"{record['single_seed']['baseline_unbatched']['events_per_sec']:,}"
          f" events/s, {base_batches} WriteBatch msgs")
    print(f"  batched fast path:  "
          f"{record['single_seed']['fast_batched']['events_per_sec']:,}"
          f" events/s, {fast_batches} WriteBatch msgs "
          f"({fast_records} records, ratio {batching_ratio:.1f})")
    print(f"  same-workload speedup: {speedup:.2f}x, WriteBatch "
          f"reduction: {batch_reduction:.1f}x")
    print(f"  sweep ({len(sweep_cfgs)} seeds): sequential "
          f"{sequential_wall:.2f}s"
          + (f", --jobs {args.jobs}: {parallel_wall:.2f}s"
             if parallel_wall else ""))

    status = 0
    out = Path(args.out)
    if args.check and out.exists():
        committed = json.loads(out.read_text())["single_seed"]
        floor = 0.75 * committed["speedup"]
        if speedup < floor:
            print(f"REGRESSION: speedup {speedup:.2f}x fell >25% below "
                  f"the committed {committed['speedup']:.2f}x")
            status = 1
        if batch_reduction < 5.0:
            print(f"REGRESSION: WriteBatch reduction "
                  f"{batch_reduction:.1f}x is below the 5x floor")
            status = 1
        if (
            parallel_wall is not None
            and len(sweep_cfgs) >= 4
            and parallel_wall >= sequential_wall
        ):
            print(f"REGRESSION: parallel sweep ({effective_jobs} workers) "
                  f"took {parallel_wall:.2f}s vs {sequential_wall:.2f}s "
                  f"sequential -- fork-pool overhead is eating the "
                  f"parallelism")
            status = 1
    if args.profile:
        rows = _profile_bench(args)
        print("  top-25 by cumulative time (batched measured run):")
        print(f"    {'cumtime':>8} {'tottime':>8} {'ncalls':>9} function")
        for row in rows:
            print(f"    {row['cumtime_s']:8.4f} {row['tottime_s']:8.4f} "
                  f"{row['ncalls']:9d} {row['function']}")
        profile_out = out.with_name(out.stem + "_profile.json")
        profile_out.write_text(
            json.dumps(
                {"seed": args.seed, "steps": args.steps,
                 "group_commit": args.group_commit, "top": rows},
                indent=2,
            )
            + "\n"
        )
        print(f"  wrote {profile_out}")
    if status == 0:
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"  wrote {out}")
    return status


_COMMANDS = {
    "demo": _cmd_demo,
    "workload": _cmd_workload,
    "faults": _cmd_faults,
    "multiwriter": _cmd_multiwriter,
    "report": _cmd_report,
    "audit-run": _cmd_audit_run,
    "bench-engine": _cmd_bench_engine,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "sub_seed", None) is not None:
        args.seed = args.sub_seed
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
