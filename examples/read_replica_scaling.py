#!/usr/bin/env python3
"""Read scaling with physical replication (sections 3.2 - 3.4).

- Replicas attach to the shared storage volume with ZERO data movement.
- They consume the physical redo stream, applying whole MTR chunks only
  once the writer reports them durable (so replica state always trails
  durability, never issuance).
- Read views anchor at VDL points; commit visibility comes from shipped
  commit notices -- snapshot isolation holds on every replica.
- The writer's commit latency is unchanged by replica count.

Run:  python examples/read_replica_scaling.py
"""

from repro import AuroraCluster
from repro.workloads import WorkloadGenerator, WorkloadRunner, profile


def main() -> None:
    cluster = AuroraCluster.build(seed=31)
    db = cluster.session()

    # Preload some data, then attach replicas AFTER the fact: their caches
    # are cold, so early reads are served by the shared storage volume.
    db.write_many({f"item:{i:04d}": i * 10 for i in range(200)})
    cluster.run_for(30)
    for name in ("r1", "r2", "r3"):
        cluster.add_replica(name)
    print("attached 3 replicas with zero data copy "
          "(durable state is shared)\n")

    # -- Reads on every replica --------------------------------------------
    for name in ("r1", "r2", "r3"):
        rs = cluster.replica_session(name)
        print(f"{name}: item:0042 = {rs.get('item:0042')}, "
              f"scan[0..4] = {[v for _k, v in rs.scan('item:0000', 'item:0004')]}")

    # -- Replication invariants ---------------------------------------------
    replica = cluster.replicas["r1"]
    db.write("fresh", "hot off the log")
    print(f"\nwriter VDL={cluster.writer.vdl}, "
          f"replica applied VDL={replica.applied_vdl}, "
          f"lag={replica.replica_lag} LSNs")
    cluster.run_for(20)
    rs = cluster.replica_session("r1")
    print(f"replica sees the new committed row: {rs.get('fresh')!r}")

    # -- Writer path cost of replication --------------------------------------
    runner = WorkloadRunner(
        cluster, WorkloadGenerator(profile("write_only"), seed=31)
    )
    stats = runner.run_closed_loop(clients=4, transactions_per_client=25)
    summary = stats.summary()
    print(f"\n100 write txns with 3 replicas attached: "
          f"p50={summary['p50_ms']:.2f}ms p99={summary['p99_ms']:.2f}ms "
          f"(replication is asynchronous, off the write path)")
    cluster.run_for(50)
    print("replica lag after the burst:",
          {n: r.replica_lag for n, r in cluster.replicas.items()})

    # -- Uncached redo is discarded -------------------------------------------
    print(f"\nreplica r1 stream stats: "
          f"chunks applied={replica.stats.chunks_applied}, "
          f"records applied={replica.stats.records_applied}, "
          f"records discarded (uncached blocks)="
          f"{replica.stats.records_discarded}")
    print("('Redo records for uncached blocks can be discarded, as they "
          "can be read from the shared storage volume')")

    # -- Teardown is instant ----------------------------------------------------
    cluster.remove_replica("r3")
    print("\nr3 torn down; remaining:", sorted(cluster.replicas))


if __name__ == "__main__":
    main()
