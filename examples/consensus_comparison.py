#!/usr/bin/env python3
"""Why avoid distributed consensus?  A head-to-head demonstration.

Runs the same commit workload through Aurora's quorum protocol and through
the three classical alternatives the paper names -- 2PC, Multi-Paxos, and
synchronous mirroring -- on identical simulated networks, then injects the
failure each design fears most:

- 2PC: a coordinator crash between votes and decision (participants BLOCK);
- Paxos/Raft: leader loss (an election gap with no progress);
- mirroring: one dead mirror (ALL writes stall);
- Aurora: a dead segment + a whole-AZ outage (nothing stalls).

Run:  python examples/consensus_comparison.py
"""

import random

from repro import AuroraCluster
from repro.baselines import (
    MirroredCluster,
    PaxosCluster,
    RaftCluster,
    TwoPhaseCommitCluster,
)
from repro.sim.events import EventLoop
from repro.sim.network import Network

COMMITS = 60


def pct(series, q):
    ordered = sorted(series)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def main() -> None:
    print(f"=== commit latency, {COMMITS} commits each (ms) ===")

    # Aurora.
    cluster = AuroraCluster.build(seed=41)
    db = cluster.session()
    for i in range(COMMITS):
        db.write(f"k{i}", i)
    aurora = cluster.writer.stats.commit_latencies
    print(f"aurora      p50={pct(aurora, .5):6.2f}  p99={pct(aurora, .99):6.2f}")

    # 2PC.
    loop = EventLoop()
    network = Network(loop, random.Random(42))
    tpc = TwoPhaseCommitCluster(loop, network, random.Random(42))
    futures = [tpc.commit() for _ in range(COMMITS)]
    loop.run_until_idle()
    lat = tpc.coordinator.commit_latencies
    print(f"2PC         p50={pct(lat, .5):6.2f}  p99={pct(lat, .99):6.2f}"
          f"   ({network.stats.messages_sent // COMMITS} msgs/commit)")

    # Multi-Paxos.
    loop = EventLoop()
    network = Network(loop, random.Random(43))
    paxos = PaxosCluster(loop, network, random.Random(43))
    paxos.elect()
    loop.run_until_idle()
    futures = [paxos.propose(i) for i in range(COMMITS)]
    loop.run_until_idle()
    lat = paxos.leader.commit_latencies
    print(f"multi-paxos p50={pct(lat, .5):6.2f}  p99={pct(lat, .99):6.2f}")

    # Raft.
    loop = EventLoop()
    network = Network(loop, random.Random(44))
    raft = RaftCluster(loop, network, random.Random(44))
    leader = raft.elect_first_leader()
    futures = [leader.propose(i) for i in range(COMMITS)]
    loop.run(until=loop.now + 2_000)
    lat = leader.commit_latencies
    print(f"raft        p50={pct(lat, .5):6.2f}  p99={pct(lat, .99):6.2f}")

    # ------------------------------------------------------------------
    print("\n=== failure behaviour ===")

    # 2PC coordinator crash: the blocking window.
    loop = EventLoop()
    network = Network(loop, random.Random(45))
    tpc = TwoPhaseCommitCluster(loop, network, random.Random(45))
    future = tpc.commit()
    loop.run(until=1.2)
    tpc.crash_coordinator()
    loop.run(until=10_000)
    print(f"2PC, coordinator dies mid-commit: commit resolved={future.done}, "
          f"participants stuck holding locks={tpc.blocked_transaction_count()}")

    # Raft leader crash: the election gap.
    loop = EventLoop()
    network = Network(loop, random.Random(46))
    raft = RaftCluster(loop, network, random.Random(46))
    leader = raft.elect_first_leader()
    crash_at = loop.now
    network.fail_node(leader.name)
    new_leader = None
    while new_leader is None and loop.now < crash_at + 30_000:
        loop.run(until=loop.now + 50)
        live = [n for n in raft.nodes
                if n.role.value == "leader" and network.is_up(n.name)]
        new_leader = live[0] if live else None
    print(f"raft, leader dies: {new_leader.became_leader_at - crash_at:.0f}"
          f" ms of unavailability before a new leader")

    # Mirroring: one dead mirror stalls everything.
    loop = EventLoop()
    network = Network(loop, random.Random(47))
    mirrored = MirroredCluster(loop, network, random.Random(47))
    network.fail_node("mirror-0")
    future = mirrored.write("k", "v")
    loop.run(until=5_000)
    print(f"mirroring (write-all), one mirror dead: write resolved="
          f"{future.done} (stalled={mirrored.primary.stalled_writes})")

    # Aurora: a whole AZ down -- writes keep flowing (4/6 still met).
    cluster = AuroraCluster.build(seed=48)
    db = cluster.session()
    db.write("pre", 0)
    cluster.failures.crash_az("az3")  # two of six segments gone
    start = cluster.loop.now
    db.write("during-az-outage", 1)
    print(f"aurora, full AZ down: commit completed in "
          f"{cluster.loop.now - start:.2f} ms (4 of 6 segments still ack)")

    # AZ+1: writes correctly pause (below 4/6), but the volume still has
    # its 3/6 read quorum, so it can REPAIR and resume -- the whole point
    # of six copies (Figure 1).
    cluster.failures.crash_node("pg0-a")
    up = sorted(n for n in cluster.nodes if cluster.network.is_up(n))
    print(f"aurora, AZ+1: segments up = {up} (3/6): writes pause, but the "
          f"read quorum survives, so repair can rebuild the quorum:")
    candidate = cluster.begin_segment_replacement(0, "pg0-a")
    db.drive(cluster.hydrate_segment(0, candidate))
    cluster.finalize_segment_replacement(0, "pg0-a")
    start = cluster.loop.now
    db.write("after-repair", 2)
    print(f"  repaired via membership change ({candidate}); commit in "
          f"{cluster.loop.now - start:.2f} ms; data intact: "
          f"{db.get('pre') == 0}")


if __name__ == "__main__":
    main()
