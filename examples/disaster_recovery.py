#!/usr/bin/env python3
"""Disaster recovery toolbox: logical CDC, PITR, and quorum-model changes.

Three of the paper's secondary capabilities, composed into one scenario:

1. **Logical replication** (section 3.2) feeds a downstream analytics
   store (different schema) with only durably-committed changes.
2. An operator fat-fingers a bulk delete; **point-in-time restore** from
   the continuous S3 backups (Figure 2, activity 6) forks the volume back
   to just before the incident.
3. Meanwhile an AZ suffers an extended outage; the cluster adopts the
   paper's **3/4 quorum model** (section 4.1) so it tolerates one more
   failure until the AZ returns.

Run:  python examples/disaster_recovery.py
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.logical_replication import TransformingSubscriber


def main() -> None:
    config = ClusterConfig(seed=77)
    config.node.backup_interval = 50.0  # brisk continuous backup
    cluster = AuroraCluster.build(config)
    db = cluster.session()

    # -- 1. Logical CDC into a differently-shaped store --------------------
    analytics = TransformingSubscriber(
        transform=lambda key, value: (
            key.upper(), {"value": value, "source": "aurora"}
        )
    )
    cluster.writer.logical.subscribe(analytics)
    for i in range(20):
        db.write(f"account:{i:03d}", 1000 + i)
    print(f"analytics store has {len(analytics.table)} rows, e.g. "
          f"ACCOUNT:007 -> {analytics.table['ACCOUNT:007']}")

    # Let the continuous backup cover this state.
    cluster.run_for(300)
    safe_point = cluster.loop.now
    print(f"backups cover t<={safe_point:.0f} ms "
          f"({len(cluster.s3)} snapshots in S3)")

    # -- 2. The incident -----------------------------------------------------
    txn = db.begin()
    for i in range(20):
        db.delete(txn, f"account:{i:03d}")
    db.commit(txn)
    print("\nincident: bulk delete committed;",
          "account:007 =", db.get("account:007"))

    restored = AuroraCluster.restore_from_backup(
        cluster, as_of_ms=safe_point
    )
    rdb = restored.session()
    print("restored fork as-of the safe point;",
          "account:007 =", rdb.get("account:007"))
    assert rdb.get("account:007") == 1007

    # -- 3. Extended AZ loss on the restored fork ----------------------------
    restored.failures.crash_az("az2")
    rdb.write("during-az-loss", 1)  # 4/6 still fine
    print("\naz2 down: writes continue on 4/6")
    restored.adopt_degraded_quorum(0, "az2")
    print("adopted 3/4 quorum over the survivors "
          "(geometry epoch bumped)")
    restored.failures.crash_node("pg0-a")  # one MORE failure
    rdb.write("during-az-plus-one", 2)
    print("AZ+1: writes STILL continue on 3/4 ->",
          rdb.get("during-az-plus-one"))

    # The AZ returns: catch up by gossip, go back to 4/6.
    restored.failures.restore_az("az2")
    restored.failures.restore_node("pg0-a")
    restored.run_for(400)
    restored.restore_standard_quorum(0)
    rdb.write("back-to-normal", 3)
    print("az2 restored, back on 4/6; final check:",
          rdb.get("account:019"), rdb.get("back-to-normal"))


if __name__ == "__main__":
    main()
