#!/usr/bin/env python3
"""The multi-writer extension (section 1 of the paper).

"The approach described below is extensible to multi-writer databases by
ordering writes at database nodes, storage nodes, and using a journal to
order operations that span multiple database instances and multiple
storage nodes."

Three writers, each owning a key partition backed by its own volume; a
quorum-durable journal sequences cross-partition transactions.  The demo
shows the single-partition fast path (identical to single-writer Aurora),
a cross-partition transaction, and the decisive failure case: a
participant dying between the journal commit point and its local apply --
replayed on recovery, with the surviving partitions never blocking.

Run:  python examples/multi_writer.py
"""

from repro.multiwriter import MultiWriterCluster


def main() -> None:
    mw = MultiWriterCluster(partition_count=3, seed=71)
    session = mw.session()

    # -- Routing -----------------------------------------------------------
    sample = {k: mw.partition_of(k) for k in ("alice", "bob", "carol")}
    print("key routing:", sample)

    # -- Single-partition fast path ------------------------------------------
    result = session.write("alice", {"balance": 100})
    print(f"single-partition commit: {result}")

    # -- Cross-partition transaction -----------------------------------------
    # A transfer between accounts on different partitions.
    session.write("bob", {"balance": 50})
    txn = session.begin()
    session.put(txn, "alice", {"balance": 70})
    session.put(txn, "bob", {"balance": 80})
    result = session.commit(txn)
    print(f"cross-partition transfer: {result}")
    print(f"  alice={session.get('alice')} bob={session.get('bob')}")

    # -- The decisive failure case --------------------------------------------
    # Sequence a decided transaction at the journal, then crash a
    # participant BEFORE it applies locally.
    victim = mw.partition_of("alice")
    entry = session.drive(
        mw.journal.append(
            "decided-but-unapplied",
            {
                mw.partition_of("alice"): [("alice", {"balance": 0})],
                mw.partition_of("bob"): [("bob", {"balance": 150})],
            },
        )
    )
    print(f"\njournal entry gsn={entry.gsn} durable; crashing partition "
          f"{victim} before it applies")
    mw.crash_partition(victim)

    # The OTHER participant applies immediately -- no blocking window.
    other = mw.partition_of("bob")
    session.drive(mw.appliers[other].ensure_applied(entry.gsn))
    print(f"surviving partition applied: bob={session.get('bob')}")

    # Recovery replays the decided transaction from the journal.
    session.drive(mw.recover_partition(victim))
    print(f"victim recovered + replayed: alice={session.get('alice')}")
    assert session.get("alice") == {"balance": 0}

    print(f"\nstats: journal appends={mw.journal.appends}, "
          f"durable gsn={mw.journal.durable_gsn}, "
          f"cross commits={session.cross_partition_commits}, "
          f"single commits={session.single_partition_commits}")


if __name__ == "__main__":
    main()
