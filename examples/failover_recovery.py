#!/usr/bin/env python3
"""Failover and crash recovery (sections 2.4 and 3.2 of the paper).

Demonstrates the paper's durability contract end to end:

1. drive commits while crashing the writer mid-stream,
2. run crash recovery (read-quorum scan -> VCL -> truncation -> volume
   epoch bump) and verify every ACKNOWLEDGED commit survived,
3. show the zombie-fencing: the dead writer's epoch is boxed out,
4. fail over to a read replica and verify zero acknowledged-commit loss
   there too.

Run:  python examples/failover_recovery.py
"""

from repro import AuroraCluster
from repro.db.session import Session


def main() -> None:
    cluster = AuroraCluster.build(seed=11)
    cluster.add_replica("standby")
    db = cluster.session()

    # -- 1. Commits racing a crash ---------------------------------------
    acknowledged: dict[str, int] = {}
    for i in range(40):
        txn = db.begin()
        key = f"order:{i:03d}"
        db.put(txn, key, i)
        future = db.commit_async(txn)  # worker moves on immediately
        future.add_done_callback(
            lambda f, k=key, v=i: acknowledged.__setitem__(k, v)
        )
    cluster.run_for(6.0)  # cut the run mid-flight
    print(f"crash point: {len(acknowledged)}/40 commits acknowledged")
    pre_crash_epoch = cluster.writer.driver.epochs
    cluster.crash_writer()

    # -- 2. Crash recovery -------------------------------------------------
    recovery = cluster.recover_writer()
    db = Session(cluster.writer)
    result = db.drive(recovery)
    print(f"recovered: VCL={result.vcl} VDL={result.vdl} "
          f"truncation={result.truncation}")
    survivors = sum(
        1 for key, value in acknowledged.items() if db.get(key) == value
    )
    print(f"acknowledged commits recovered: {survivors}/"
          f"{len(acknowledged)}  (must be all)")
    assert survivors == len(acknowledged)

    # -- 3. Epoch fencing ("changes the locks on the door") ----------------
    node = cluster.nodes["pg0-a"]
    print(f"volume epoch: {pre_crash_epoch.volume} -> "
          f"{cluster.writer.driver.epochs.volume}; a zombie writer at the "
          f"old epoch is now rejected by every storage node")

    # -- 4. Replica promotion ----------------------------------------------
    cluster.run_for(20)
    rs = cluster.replica_session("standby")
    sample_key = next(iter(acknowledged))
    print(f"replica read of {sample_key}: {rs.get(sample_key)}")

    more = {}
    for i in range(40, 60):
        txn = db.begin()
        key = f"order:{i:03d}"
        db.put(txn, key, i)
        db.commit_async(txn).add_done_callback(
            lambda f, k=key, v=i: more.__setitem__(k, v)
        )
    cluster.run_for(5.0)
    cluster.crash_writer()
    print(f"\nwriter crashed again; promoting the replica "
          f"({len(more)} more commits were acknowledged)")
    new_writer, recovery = cluster.promote_replica("standby")
    db = Session(new_writer)
    db.drive(recovery)
    lost = [
        key
        for bucket in (acknowledged, more)
        for key, value in bucket.items()
        if db.get(key) != value
    ]
    print(f"acknowledged commits lost across BOTH failovers: {len(lost)}")
    assert not lost
    db.write("post-promotion", "open for business")
    print("promoted writer serving traffic:",
          db.get("post-promotion"))


if __name__ == "__main__":
    main()
