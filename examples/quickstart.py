#!/usr/bin/env python3
"""Quickstart: a simulated Aurora cluster in five minutes.

Builds a six-segment, three-AZ cluster with a single writer, runs a few
transactions, shows snapshot isolation in action, and peeks at the
consistency points (SCL / PGCL / VCL / VDL) the paper is about.

Run:  python examples/quickstart.py
"""

from repro import AuroraCluster

def main() -> None:
    # One protection group: six storage segments, two per AZ, 4/6 write
    # quorum, 3/6 read quorum.  The writer is bootstrapped and ready.
    cluster = AuroraCluster.build(seed=7)
    db = cluster.session()

    # -- Transactions ---------------------------------------------------
    txn = db.begin()
    db.put(txn, "user:1", {"name": "ada", "plan": "pro"})
    db.put(txn, "user:2", {"name": "grace", "plan": "free"})
    scn = db.commit(txn)  # returns once the commit SCN is <= VCL
    print(f"committed at SCN {scn}")
    print("user:1 ->", db.get("user:1"))

    # Single-statement convenience helpers:
    db.write("user:3", {"name": "edsger", "plan": "pro"})
    print("scan   ->", [k for k, _v in db.scan("user:1", "user:9")])

    # -- Snapshot isolation ----------------------------------------------
    reader = db.begin()
    before = db.get("user:1", txn=reader)
    db.write("user:1", {"name": "ada", "plan": "enterprise"})  # concurrent
    after_in_snapshot = db.get("user:1", txn=reader)
    db.commit(reader)
    print("reader saw (stable snapshot):", before == after_in_snapshot)
    print("latest value:", db.get("user:1"))

    # -- Rollback ---------------------------------------------------------
    txn = db.begin()
    db.put(txn, "user:2", "oops")
    db.rollback(txn)
    print("after rollback, user:2 ->", db.get("user:2"))

    # -- The consistency points (the paper's machinery) -------------------
    writer = cluster.writer
    print("\nconsistency points:")
    print(f"  VCL (volume complete) = {writer.vcl}")
    print(f"  VDL (volume durable)  = {writer.vdl}")
    print(f"  per-segment SCLs      = {cluster.segment_scls(0)}")
    tracker = writer.driver.pg_trackers[0]
    print(f"  PGCL (protection grp) = {tracker.pgcl}")
    print(f"  commit acks           = "
          f"{writer.stats.commits_acknowledged}")
    print(f"  network messages      = "
          f"{cluster.network.stats.messages_sent} "
          f"({dict(cluster.network.stats.by_type)})")


if __name__ == "__main__":
    main()
