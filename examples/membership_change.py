#!/usr/bin/env python3
"""Non-blocking quorum membership changes (section 4, Figure 5).

Walks through the paper's Figure 5 live, with client traffic flowing the
whole time:

- epoch 1: all six segments healthy;
- a segment becomes suspect -> epoch 2: quorum set doubles
  (4/6 of ABCDEF AND 4/6 of ABCDEG / 3/6 OR 3/6);
- the candidate hydrates from a healthy full peer and gossip;
- epoch 3: the suspect is dropped -- or, in the alternate timeline,
  the suspect comes back and the change is rolled back.

Also shows the double-fault case (two concurrent replacements, four
member groups) and that "simply writing to the four members ABCD meets
quorum" throughout.

Run:  python examples/membership_change.py
"""

from repro import AuroraCluster


def show_membership(cluster, label):
    state = cluster.metadata.membership(0)
    groups = state.member_groups()
    print(f"{label}: epoch={state.epoch} "
          f"{'stable' if state.is_stable else f'{len(groups)} groups'} "
          f"members={sorted(state.members)}")


def main() -> None:
    cluster = AuroraCluster.build(seed=21)
    db = cluster.session()
    db.write_many({f"row:{i:03d}": i for i in range(25)})
    show_membership(cluster, "epoch 1")

    # -- Figure 5 forward path ---------------------------------------------
    print("\nsegment pg0-f stops answering; we do NOT wait to find out why")
    cluster.failures.crash_node("pg0-f")
    candidate = cluster.begin_segment_replacement(0, "pg0-f")
    show_membership(cluster, "epoch 2")

    print("writes continue during the change:")
    for i in range(25, 35):
        db.write(f"row:{i:03d}", i)
    print(f"  10 commits completed; mean latency "
          f"{sum(cluster.writer.stats.commit_latencies[-10:]) / 10:.2f} ms")

    print(f"hydrating {candidate} from a healthy full peer + gossip ...")
    db.drive(cluster.hydrate_segment(0, candidate))
    cluster.finalize_segment_replacement(0, "pg0-f")
    show_membership(cluster, "epoch 3")
    print(f"candidate SCL = {cluster.nodes[candidate].segment.scl}, "
          f"PGCL = {cluster.writer.driver.pg_trackers[0].pgcl}")
    assert db.get("row:030") == 30

    # -- The reverse path ----------------------------------------------------
    print("\nalternate timeline: the suspect comes back mid-change")
    cluster2 = AuroraCluster.build(seed=22)
    db2 = cluster2.session()
    db2.write("x", 1)
    cluster2.begin_segment_replacement(0, "pg0-e")
    show_membership(cluster2, "epoch 2 (E suspect)")
    cluster2.rollback_segment_replacement(0, "pg0-e")
    show_membership(cluster2, "epoch 3 (rolled back)")
    db2.write("y", 2)
    print("writes fine after rollback:", db2.get("y"))

    # -- Double fault ----------------------------------------------------------
    print("\ndouble fault: E fails while F's replacement is in flight")
    cluster3 = AuroraCluster.build(seed=23)
    db3 = cluster3.session()
    db3.write_many({f"k{i}": i for i in range(10)})
    cluster3.failures.crash_node("pg0-f")
    cluster3.failures.crash_node("pg0-e")
    cand_f = cluster3.begin_segment_replacement(0, "pg0-f")
    cand_e = cluster3.begin_segment_replacement(0, "pg0-e")
    state = cluster3.metadata.membership(0)
    print(f"quorum set now spans {len(state.member_groups())} member groups")
    db3.write("during-double-fault", "still writable")  # ABCD meets quorum
    db3.drive(cluster3.hydrate_segment(0, cand_f))
    db3.drive(cluster3.hydrate_segment(0, cand_e))
    cluster3.finalize_segment_replacement(0, "pg0-f")
    cluster3.finalize_segment_replacement(0, "pg0-e")
    show_membership(cluster3, "after both repairs")
    print("data intact:", all(db3.get(f"k{i}") == i for i in range(10)))


if __name__ == "__main__":
    main()
