"""F2 -- Figure 2: activity in Aurora storage nodes.

Drives traffic through a cluster with one segment deliberately cut off from
the writer (so gossip must heal it) and reports the per-activity counters of
Figure 2's pipeline: (1/2) receive + update queue, ACK, (3/5) sort-group +
coalesce, (4) gossip, (6) S3 backup, (7) GC, (8) scrub.

Shape assertion: every one of the eight activities is exercised, the hot
log drains after backup + GC, and the gossiped node converges to the same
SCL as its peers.
"""

from repro import AuroraCluster, ClusterConfig

from .conftest import print_table


def run_pipeline():
    config = ClusterConfig(seed=202)
    config.node.backup_interval = 100.0
    config.node.gc_interval = 50.0
    config.node.scrub_interval = 300.0
    cluster = AuroraCluster.build(config)
    db = cluster.session()

    # Cut pg0-f off from the writer only: writes miss it, gossip heals it.
    cluster.network.partition({cluster.writer.name}, {"pg0-f"})
    for i in range(40):
        db.write(f"key{i:03d}", i)
    cluster.network.heal_all_partitions()
    cluster.run_for(1_500)  # several backup/gc/scrub cycles
    return cluster


def collect_rows(cluster):
    rows = []
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        segment = node.segment
        rows.append(
            [
                name,
                segment.stats["records_received"],
                node.counters["acks_sent"],
                segment.stats["records_gossiped_in"],
                segment.stats["coalesce_applications"],
                node.counters["backups_taken"],
                segment.stats["gc_records_dropped"],
                node.counters["scrub_runs"],
                segment.scl,
                segment.hot_log_size,
            ]
        )
    return rows


def test_fig2_storage_node_pipeline(benchmark):
    cluster = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    rows = collect_rows(cluster)
    print_table(
        "Figure 2: storage node activities (40 txns, pg0-f fed by gossip)",
        [
            "segment", "received", "acks", "gossiped-in", "coalesced",
            "backups", "gc-dropped", "scrubs", "SCL", "hotlog",
        ],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    scls = {row[0]: row[8] for row in rows}
    # (4) gossip healed the partitioned segment to the common SCL.
    assert by_name["pg0-f"][3] > 0
    assert len(set(scls.values())) == 1
    for row in rows:
        assert row[1] > 0   # (1/2) received
        assert row[2] > 0   # ACKs
        assert row[4] > 0   # (3/5) coalesce
        assert row[5] > 0   # (6) backup
        assert row[6] > 0   # (7) GC actually dropped hot-log records
        assert row[7] > 0   # (8) scrub ran
    assert len(cluster.s3) > 0
    # The update queue drains once records are coalesced+backed-up+below
    # the GC floor -- the steady state Figure 2 depicts.
    assert sum(row[9] for row in rows) < sum(row[1] for row in rows)
