"""C7 -- the "AZ+1 in a 10-second window" durability arithmetic (section 2.1).

"Segments are small, currently representing no more than 10GB ... a 64TB
volume has 38,400 segments" (section 4) and "Assuming a 10 second window to
detect and repair a segment failure, it would require two independent
segment failures as well as an AZ failure in the same 10 second period to
lose the ability to repair a quorum" (section 2.1).

Part A: the fleet arithmetic and closed-form window probabilities across
repair windows -- showing why fast repair (small segments) is the knob that
buys durability.

Part B: Monte-Carlo cross-check of the closed form using the failure
injector's renewal process on a fleet of simulated quorums.
"""

import random

from repro.analysis.durability import C7_WINDOW_S, DurabilityModel
from repro.storage.backend import resolve_backend

from .conftest import fmt, print_table


def test_c7_fleet_arithmetic(benchmark, bench_backend):
    replication = resolve_backend(bench_backend).replication()

    def compute():
        return [
            [
                tb,
                DurabilityModel.protection_groups_for_volume(tb),
                DurabilityModel.segments_for_volume(tb),
                DurabilityModel.protection_groups_for_volume(tb)
                * replication.copies_per_pg,
            ]
            for tb in (1, 10, 64)
        ]

    rows = benchmark(compute)
    print_table(
        "C7: volume size -> protection groups -> segments (10 GB units)",
        ["volume (TB)", "PGs", "segments (aurora)",
         f"segments ({bench_backend})"],
        rows,
    )
    assert rows[-1][:3] == [64, 6_400, 38_400]  # the paper's number
    if bench_backend == "taurus":
        # 5 copies per PG (3 log + 2 page) instead of 6.
        assert rows[-1][3] == 32_000


def test_c7_repair_window_sweep(benchmark):
    def sweep():
        rows = []
        for window_s, label in (
            (10, "10 s (Aurora's 10GB segments)"),
            (600, "10 min"),
            (36_000, "10 h (repairing a 10TB disk)"),
        ):
            model = DurabilityModel(
                segment_mttf_hours=10_000.0,
                repair_window_s=window_s,
                az_failures_per_year=0.5,
            )
            rows.append(
                [
                    label,
                    f"{model.p_write_quorum_loss():.3e}",
                    f"{model.p_read_quorum_loss():.3e}",
                    f"{model.p_volume_read_loss_per_year(64):.3e}",
                ]
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "C7b: quorum-loss probability vs repair window (64 TB volume)",
        ["repair window", "P(write loss)/window", "P(read loss)/window",
         "P(volume read loss)/year"],
        rows,
    )
    yearly = [float(row[3]) for row in rows]
    # Small segments (fast repair) are the durability lever: each 60x
    # slower repair costs orders of magnitude of durability.
    assert yearly[0] < 1e-7          # Aurora's design point: negligible
    assert yearly[2] > yearly[0] * 1e6


def test_c7_backend_window_probabilities(benchmark, bench_backend):
    """The paper's window argument, with the quorum arithmetic taken from
    the selected backend's replication config: within one 10-second
    detect-and-repair window, losing the write or read quorum must stay a
    negligible-probability event (Aurora: AZ + 1 more / AZ + 2 more;
    Taurus: 2 of the 3 log stores, one of which an AZ event can claim)."""
    replication = resolve_backend(bench_backend).replication()

    def compute():
        model = DurabilityModel.from_replication(
            replication,
            segment_mttf_hours=10_000.0,
            repair_window_s=C7_WINDOW_S,
            az_failures_per_year=0.5,
        )
        return (
            model.p_write_quorum_loss(),
            model.p_read_quorum_loss(),
            model.mean_windows_to_read_loss(),
        )

    p_write, p_read, windows = benchmark(compute)
    print_table(
        f"C7c: per-window quorum-loss probability ({bench_backend})",
        ["backend", "copies", "P(write loss)/window",
         "P(read loss)/window", "windows to read loss"],
        [[bench_backend, replication.sync_write_copies,
          f"{p_write:.3e}", f"{p_read:.3e}", f"{windows:.3e}"]],
    )
    # Durability inside the paper's window, for every backend: a single
    # 10-second exposure is harmless by many orders of magnitude.
    assert p_write < 1e-9
    assert p_read < 1e-9


def test_c7_monte_carlo_cross_check(benchmark):
    """Empirical quorum-degradation frequency from the renewal process."""

    def simulate():
        from repro.sim.events import EventLoop
        from repro.sim.failures import FailureInjector
        from repro.sim.network import Actor, Network

        class Dummy(Actor):
            def on_message(self, message):
                pass

        loop = EventLoop()
        rng = random.Random(73)
        network = Network(loop, rng)
        injector = FailureInjector(loop, network, rng)
        nodes = [f"n{i}" for i in range(6)]
        for i, node in enumerate(nodes):
            network.attach(Dummy(node), az=f"az{i % 3 + 1}")
        # Aggressive MTTF so events are observable in bounded sim time.
        mttf_ms, mttr_ms, horizon = 2_000.0, 200.0, 2_000_000.0
        injector.enable_background_failures(nodes, mttf_ms, mttr_ms, horizon)
        # Sample the up-set on a fine grid.
        samples = {"total": 0, "write_ok": 0, "read_ok": 0}

        def probe():
            up = sum(1 for n in nodes if network.is_up(n))
            samples["total"] += 1
            samples["write_ok"] += up >= 4
            samples["read_ok"] += up >= 3

        t = 0.0
        while t < horizon:
            loop.schedule_at(t, probe)
            t += 500.0
        loop.run(until=horizon)
        return samples

    samples = benchmark.pedantic(simulate, rounds=1, iterations=1)
    write_avail = samples["write_ok"] / samples["total"]
    read_avail = samples["read_ok"] / samples["total"]
    # Closed form for comparison: node down fraction = mttr/(mttf+mttr).
    import math

    p_down = 200.0 / 2_200.0
    exact_write = sum(
        math.comb(6, k) * (1 - p_down) ** k * p_down ** (6 - k)
        for k in range(4, 7)
    )
    print(f"\nwrite availability: simulated={write_avail:.4f} "
          f"closed-form={exact_write:.4f}; read={read_avail:.4f}")
    assert abs(write_avail - exact_write) < 0.02
    assert read_avail > write_avail
