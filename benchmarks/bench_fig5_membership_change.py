"""F5 -- Figure 5: quorum membership changes.

Reproduces the figure's three epochs on a live cluster, with client traffic
flowing throughout:

- epoch 1: all nodes healthy;
- epoch 2: F suspect, second quorum group formed with G, both active;
- epoch 3: F confirmed unhealthy, quorum with G active.

Measures the property the paper emphasises: "Membership changes do not
block either reads or writes" -- commit latency during the transition is
indistinguishable from steady state, and zero commits stall.  Also runs
the reverse path (F comes back -> roll back to ABCDEF).
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session

from .conftest import fmt, print_table


def run_figure5():
    cluster = AuroraCluster.build(ClusterConfig(seed=206))
    db = cluster.session()
    epochs_seen = []

    def commit_burst(count, tag):
        latencies_before = len(cluster.writer.stats.commit_latencies)
        for i in range(count):
            db.write(f"{tag}{i:03d}", i)
        return cluster.writer.stats.commit_latencies[latencies_before:]

    epochs_seen.append(("epoch 1 (healthy)",
                        cluster.metadata.membership(0).epoch,
                        sorted(cluster.metadata.membership(0).members)))
    steady = commit_burst(30, "steady")

    cluster.failures.crash_node("pg0-f")
    candidate = cluster.begin_segment_replacement(0, "pg0-f")
    state = cluster.metadata.membership(0)
    epochs_seen.append(("epoch 2 (F suspect, +G)", state.epoch,
                        [len(state.member_groups()), "groups"]))
    hydration = cluster.hydrate_segment(0, candidate)
    during = commit_burst(30, "during")
    db.drive(hydration)
    cluster.finalize_segment_replacement(0, "pg0-f")
    state = cluster.metadata.membership(0)
    epochs_seen.append(("epoch 3 (G active)", state.epoch,
                        sorted(state.members)))
    after = commit_burst(30, "after")

    return {
        "cluster": cluster,
        "candidate": candidate,
        "epochs": epochs_seen,
        "steady": steady,
        "during": during,
        "after": after,
    }


def test_fig5_membership_change_nonblocking(benchmark):
    state = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    print_table(
        "Figure 5: membership change epochs",
        ["stage", "membership epoch", "members / groups"],
        [list(row) for row in state["epochs"]],
    )
    print_table(
        "Commit latency across the change (ms)",
        ["phase", "mean", "max", "count"],
        [
            ["steady state", fmt(mean(state["steady"])),
             fmt(max(state["steady"])), len(state["steady"])],
            ["during transition", fmt(mean(state["during"])),
             fmt(max(state["during"])), len(state["during"])],
            ["after finalize", fmt(mean(state["after"])),
             fmt(max(state["after"])), len(state["after"])],
        ],
    )
    # Non-blocking: every commit in every phase completed, and the
    # transition phase shows no stall (no order-of-magnitude blowup).
    assert len(state["during"]) == 30
    assert mean(state["during"]) < mean(state["steady"]) * 3
    epochs = [row[1] for row in state["epochs"]]
    assert epochs == [1, 2, 3]
    final_members = state["epochs"][2][2]
    assert state["candidate"] in final_members
    assert "pg0-f" not in final_members


def test_fig5_reversibility(benchmark):
    """'ensuring each transition is reversible': F comes back mid-change."""

    def run():
        cluster = AuroraCluster.build(ClusterConfig(seed=207))
        db = cluster.session()
        db.write("seed", 0)
        candidate = cluster.begin_segment_replacement(0, "pg0-f")
        db.write("mid-transition", 1)
        cluster.rollback_segment_replacement(0, "pg0-f")
        db.write("post-rollback", 2)
        return cluster, candidate, db

    cluster, candidate, db = benchmark.pedantic(run, rounds=1, iterations=1)
    state = cluster.metadata.membership(0)
    print(f"\nrollback: epoch={state.epoch} members={sorted(state.members)}")
    assert state.is_stable
    assert "pg0-f" in state.members
    assert candidate not in state.members
    assert state.epoch == 3  # two transitions: out and back
    assert db.get("mid-transition") == 1
