"""A1 (ablation) -- gossip cadence versus repair convergence.

The paper's durability arithmetic (C7) rests on a short window "to detect
and repair a segment failure", and its write path tolerates missing writes
because "the segment chain is used by each storage node to identify records
that it has not received and fill in these holes by gossiping with other
storage nodes" (section 2.2).

This ablation sweeps the gossip interval and measures how long a segment
that missed a burst of writes (down during the burst, then restored) takes
to converge back to the fleet SCL -- the knob that directly sets C7's
repair window.  Also measures the baseline-hydration path: a segment so
far behind that the records it needs are already GC'd from every hot log
must fetch a materialized baseline instead.
"""

from repro import AuroraCluster, ClusterConfig

from .conftest import fmt, print_table


def convergence_time(gossip_interval_ms, seed=810):
    config = ClusterConfig(seed=seed)
    config.node.gossip_interval = gossip_interval_ms
    cluster = AuroraCluster.build(config)
    db = cluster.session()
    cluster.failures.crash_node("pg0-f")
    for i in range(30):
        db.write(f"key{i:02d}", i)
    target_scl = max(cluster.segment_scls(0).values())
    cluster.failures.restore_node("pg0-f")
    restored_at = cluster.loop.now
    lagging = cluster.nodes["pg0-f"].segment
    for _ in range(100_000):
        if lagging.scl >= target_scl:
            return cluster.loop.now - restored_at
        cluster.run_for(1.0)
    raise AssertionError("gossip never converged")


def test_a1_gossip_interval_sweep(benchmark):
    def sweep():
        return {
            interval: convergence_time(interval)
            for interval in (5.0, 20.0, 80.0, 320.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [fmt(interval, 0), fmt(duration, 1)]
        for interval, duration in results.items()
    ]
    print_table(
        "A1: time for a restored segment to re-converge via gossip (ms)",
        ["gossip interval (ms)", "convergence (ms)"],
        rows,
    )
    durations = list(results.values())
    # Repair time tracks the gossip cadence (monotone, roughly linear).
    assert durations == sorted(durations)
    assert durations[-1] > 3 * durations[0]


def test_a1_baseline_hydration_when_hot_logs_are_gone(benchmark):
    """A segment that falls behind every peer's GC horizon cannot catch up
    record-by-record; it must hydrate a materialized baseline (the
    mechanism recovery and membership repair share)."""

    def run():
        config = ClusterConfig(seed=811)
        config.node.backup_interval = 40.0
        config.node.gc_interval = 20.0
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        cluster.failures.crash_node("pg0-f")
        for i in range(40):
            db.write(f"key{i:02d}", i)
        cluster.run_for(600)  # coalesce + backup + GC: hot logs drain
        horizons = [
            cluster.nodes[f"pg0-{c}"].segment.gc_horizon for c in "abcde"
        ]
        assert max(horizons) > cluster.nodes["pg0-f"].segment.scl
        cluster.failures.restore_node("pg0-f")
        restored_at = cluster.loop.now
        lagging = cluster.nodes["pg0-f"].segment
        target = max(cluster.segment_scls(0).values())
        while lagging.scl < target:
            cluster.run_for(5.0)
            assert cluster.loop.now - restored_at < 30_000
        return (
            cluster.loop.now - restored_at,
            lagging.gc_horizon,
            lagging.read_block(
                cluster.writer.root_leaf_block, lagging.scl
            ) is not None,
        )

    duration, horizon, readable = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nbaseline hydration: converged in {duration:.1f} ms, "
          f"adopted gc_horizon={horizon}, serving reads={readable}")
    assert readable
    assert horizon > 0
