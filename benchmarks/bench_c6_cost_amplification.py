"""C6 -- storage cost amplification: full/tail quorum sets (section 4.2).

"a protection group is composed of three full segments ... and three tail
segments ...  this yields a cost amplification closer to three copies of
the data rather than a full six while satisfying our requirement to support
AZ+1 failures."

Part A: the analytic amplification model across log:block ratios, for six
full copies versus the 3+3 mix (ablation D5).

Part B: empirical bytes held by actual simulated clusters under identical
workloads in both configurations.

Part C: the availability check -- the cheaper quorum set still survives an
AZ failure for writes and AZ+1 for reads.
"""

from repro import AuroraCluster, ClusterConfig
from repro.analysis.availability import az_failure_survival
from repro.analysis.cost import (
    CostModel,
    SegmentMix,
    measured_amplification_from_cluster,
    sync_write_amplification,
    wire_compression_from_network,
)
from repro.core.quorum import full_tail_config
from repro.storage.backend import resolve_backend

from .conftest import fmt, print_table

#: Segment mixes derived from the backends' replication configs -- the
#: replica arithmetic lives with the backend, not in this bench.
ALL_FULL = SegmentMix.from_replication(
    resolve_backend("aurora").replication()
)
FULL_TAIL = SegmentMix.from_replication(
    resolve_backend("aurora", full_tail=True).replication()
)
TAURUS = SegmentMix.from_replication(
    resolve_backend("taurus").replication()
)


def test_c6_analytic_amplification(benchmark):
    def sweep():
        rows = []
        for ratio in (0.0, 0.05, 0.1, 0.2, 0.5):
            model = CostModel(log_to_block_ratio=ratio)
            rows.append(
                [
                    fmt(ratio, 2),
                    fmt(model.amplification(ALL_FULL), 2),
                    fmt(model.amplification(FULL_TAIL), 2),
                    fmt(model.amplification(TAURUS), 2),
                    fmt(100 * model.savings_vs_all_full(FULL_TAIL), 1),
                ]
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "C6: bytes stored per user byte (amplification)",
        ["log:block ratio", "6 full copies", "3 full + 3 tail",
         "taurus 2 page + 3 log", "savings %"],
        rows,
    )
    # The paper's claim at realistic ratios (logs trimmed continuously,
    # so the retained log is ~5-10% of block bytes): ~3x, not 6x.
    for ratio_s, _full6, mixed_s, taurus_s, _savings in rows:
        if float(ratio_s) <= 0.1:
            assert 3.0 <= float(mixed_s) <= 3.7
        if float(ratio_s) <= 0.2:
            # Taurus's 2-copy page tier undercuts even the full/tail mix.
            assert float(taurus_s) < float(mixed_s)


def test_c6_empirical_cluster_bytes(benchmark):
    def measure(seed, full_tail=False, backend="aurora"):
        cluster = AuroraCluster.build(
            ClusterConfig(seed=seed, full_tail=full_tail, backend=backend)
        )
        db = cluster.session()
        for i in range(80):
            db.write(f"key{i:03d}", "x" * 64)
        cluster.run_for(250)
        for node in cluster.nodes.values():
            node.segment.coalesce()
        return measured_amplification_from_cluster(cluster)

    def run():
        return (
            measure(720),
            measure(720, full_tail=True),
            measure(720, backend="taurus"),
        )

    all_full, mixed, taurus = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["6 full copies", int(all_full["block_bytes"]),
         int(all_full["log_bytes"]), fmt(all_full["amplification"], 2)],
        ["3 full + 3 tail", int(mixed["block_bytes"]),
         int(mixed["log_bytes"]), fmt(mixed["amplification"], 2)],
        ["taurus 2 page + 3 log", int(taurus["block_bytes"]),
         int(taurus["log_bytes"]), fmt(taurus["amplification"], 2)],
    ]
    print_table(
        "C6b: measured bytes in simulated clusters (same workload)",
        ["configuration", "block bytes", "log bytes", "amplification"],
        rows,
    )
    # Block bytes halve (3 materializing copies instead of 6), and Taurus
    # holds blocks on just its two page stores.
    assert mixed["block_bytes"] < all_full["block_bytes"] * 0.6
    assert mixed["amplification"] < all_full["amplification"] * 0.75
    assert taurus["block_bytes"] < mixed["block_bytes"]


def test_c6_cheap_quorum_keeps_az_plus_one(benchmark):
    def check():
        config = full_tail_config(
            ["f1", "f2", "f3"], ["t1", "t2", "t3"]
        )
        az_map = {
            "f1": "az1", "t1": "az1",
            "f2": "az2", "t2": "az2",
            "f3": "az3", "t3": "az3",
        }
        return (
            az_failure_survival(config.write_expr, az_map, 0),
            az_failure_survival(config.read_expr, az_map, 1),
            az_failure_survival(config.read_expr, az_map, 2),
        )

    write_az, read_az1, read_az2 = benchmark(check)
    print(f"\nfull/tail: write survives AZ={write_az}, "
          f"read survives AZ+1={read_az1}, AZ+2={read_az2}")
    assert write_az          # writes survive a whole-AZ loss
    assert read_az1          # reads (repair) survive AZ+1
    assert not read_az2      # the design's stated limit


def test_c6_backend_write_amplification(benchmark, bench_backend):
    """Head-to-head against the Aurora baseline for the selected backend:
    sync-path wire copies per redo byte (analytic, from the replication
    config) cross-checked by counting actual WriteBatch messages for the
    same commit stream.  With ``--backend taurus`` both must be strictly
    lower than Aurora's 6-way fan-out."""

    def measure_wire(backend):
        cluster = AuroraCluster.build(
            ClusterConfig(seed=906, backend=backend)
        )
        db = cluster.session()
        for i in range(40):
            db.write(f"key{i:03d}", "x" * 32)
        return cluster.network.stats.by_type["WriteBatch"]

    def run():
        return {
            "selected": measure_wire(bench_backend),
            "baseline": measure_wire("aurora"),
        }

    wire = benchmark.pedantic(run, rounds=1, iterations=1)
    selected = resolve_backend(bench_backend).replication()
    baseline = resolve_backend("aurora").replication()
    model = CostModel(log_to_block_ratio=0.1)
    rows = [
        [
            name,
            sync_write_amplification(replication),
            wire_count,
            fmt(
                model.amplification(
                    SegmentMix.from_replication(replication)
                ),
                2,
            ),
        ]
        for name, replication, wire_count in (
            (bench_backend, selected, wire["selected"]),
            ("aurora (baseline)", baseline, wire["baseline"]),
        )
    ]
    print_table(
        "C6c: write amplification by backend (40 commits)",
        ["backend", "sync copies/commit", "WriteBatch msgs",
         "storage amplification"],
        rows,
    )
    if bench_backend == "taurus":
        # The headline Taurus economy: strictly lower write amplification
        # on the wire and strictly less storage per user byte.
        assert sync_write_amplification(selected) < sync_write_amplification(
            baseline
        )
        assert wire["selected"] < wire["baseline"]
        assert model.amplification(
            SegmentMix.from_replication(selected)
        ) < model.amplification(SegmentMix.from_replication(baseline))
    else:
        assert wire["selected"] == wire["baseline"]


def test_c6_wire_compression_amplification(benchmark):
    """Part D: on-wire bytes under redo compression.

    The driver delta-encodes consecutive LSNs and elides superseded
    same-transaction payloads inside each boxcar (repro.db.wire); the
    network counts both the compressed wire bytes and the uncompressed
    logical bytes of every WriteBatch copy it carries.  The ratio is the
    wire-level amplification saving, reported alongside C6's storage
    amplification so neither number hides the other.
    """

    def measure(compression):
        config = ClusterConfig(seed=907)
        config.instance.driver.wire_compression = compression
        cluster = AuroraCluster.build(config)
        cluster.network.set_stats_detail(True)
        db = cluster.session()
        # Self-overwriting transactions: the elision-friendly shape.
        for i in range(30):
            txn = db.begin()
            for v in range(3):
                db.put(txn, f"key{i:03d}", "x" * 24 if v < 2 else v)
            db.commit(txn)
        return (
            wire_compression_from_network(cluster.network.stats),
            cluster.writer.driver.stats,
        )

    def run():
        return measure(True), measure(False)

    (wire, driver_stats), (plain, plain_stats) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["compressed", int(wire["wire_bytes"]), int(wire["logical_bytes"]),
         fmt(wire["compression_ratio"], 2),
         fmt(wire["savings_pct"], 1), driver_stats.records_elided],
        ["uncompressed", int(plain["wire_bytes"]),
         int(plain["logical_bytes"]), "-", "-",
         plain_stats.records_elided],
    ]
    print_table(
        "C6d: WriteBatch bytes on the wire (90 same-row overwrites)",
        ["wire format", "wire bytes", "logical bytes", "ratio",
         "savings %", "records elided"],
        rows,
    )
    # Compression must actually compress...
    assert driver_stats.records_elided > 0
    assert 0 < wire["wire_bytes"] < wire["logical_bytes"]
    assert wire["compression_ratio"] > 1.2
    # ... the network totals must agree with the driver's own per-batch
    # accounting times the 6-way fan-out (amplification stays honest) ...
    assert wire["wire_bytes"] == 6 * driver_stats.wire_bytes
    assert wire["logical_bytes"] == 6 * driver_stats.logical_bytes
    # ... and turning it off really turns it off.
    assert plain["wire_bytes"] == 0.0
    assert plain_stats.records_elided == 0
