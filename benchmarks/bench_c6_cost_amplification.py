"""C6 -- storage cost amplification: full/tail quorum sets (section 4.2).

"a protection group is composed of three full segments ... and three tail
segments ...  this yields a cost amplification closer to three copies of
the data rather than a full six while satisfying our requirement to support
AZ+1 failures."

Part A: the analytic amplification model across log:block ratios, for six
full copies versus the 3+3 mix (ablation D5).

Part B: empirical bytes held by actual simulated clusters under identical
workloads in both configurations.

Part C: the availability check -- the cheaper quorum set still survives an
AZ failure for writes and AZ+1 for reads.
"""

from repro import AuroraCluster, ClusterConfig
from repro.analysis.availability import az_failure_survival
from repro.analysis.cost import (
    ALL_FULL_V6,
    FULL_TAIL_V6,
    CostModel,
    measured_amplification_from_cluster,
)
from repro.core.quorum import full_tail_config

from .conftest import fmt, print_table


def test_c6_analytic_amplification(benchmark):
    def sweep():
        rows = []
        for ratio in (0.0, 0.05, 0.1, 0.2, 0.5):
            model = CostModel(log_to_block_ratio=ratio)
            rows.append(
                [
                    fmt(ratio, 2),
                    fmt(model.amplification(ALL_FULL_V6), 2),
                    fmt(model.amplification(FULL_TAIL_V6), 2),
                    fmt(100 * model.savings_vs_all_full(FULL_TAIL_V6), 1),
                ]
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "C6: bytes stored per user byte (amplification)",
        ["log:block ratio", "6 full copies", "3 full + 3 tail",
         "savings %"],
        rows,
    )
    # The paper's claim at realistic ratios (logs trimmed continuously,
    # so the retained log is ~5-10% of block bytes): ~3x, not 6x.
    for ratio_s, _full6, mixed_s, _savings in rows:
        if float(ratio_s) <= 0.1:
            assert 3.0 <= float(mixed_s) <= 3.7


def test_c6_empirical_cluster_bytes(benchmark):
    def measure(full_tail, seed):
        cluster = AuroraCluster.build(
            ClusterConfig(seed=seed, full_tail=full_tail)
        )
        db = cluster.session()
        for i in range(80):
            db.write(f"key{i:03d}", "x" * 64)
        cluster.run_for(100)
        for node in cluster.nodes.values():
            node.segment.coalesce()
        return measured_amplification_from_cluster(cluster)

    def run():
        return measure(False, 720), measure(True, 720)

    all_full, mixed = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["6 full copies", int(all_full["block_bytes"]),
         int(all_full["log_bytes"]), fmt(all_full["amplification"], 2)],
        ["3 full + 3 tail", int(mixed["block_bytes"]),
         int(mixed["log_bytes"]), fmt(mixed["amplification"], 2)],
    ]
    print_table(
        "C6b: measured bytes in simulated clusters (same workload)",
        ["configuration", "block bytes", "log bytes", "amplification"],
        rows,
    )
    # Block bytes halve (3 materializing copies instead of 6).
    assert mixed["block_bytes"] < all_full["block_bytes"] * 0.6
    assert mixed["amplification"] < all_full["amplification"] * 0.75


def test_c6_cheap_quorum_keeps_az_plus_one(benchmark):
    def check():
        config = full_tail_config(
            ["f1", "f2", "f3"], ["t1", "t2", "t3"]
        )
        az_map = {
            "f1": "az1", "t1": "az1",
            "f2": "az2", "t2": "az2",
            "f3": "az3", "t3": "az3",
        }
        return (
            az_failure_survival(config.write_expr, az_map, 0),
            az_failure_survival(config.read_expr, az_map, 1),
            az_failure_survival(config.read_expr, az_map, 2),
        )

    write_az, read_az1, read_az2 = benchmark(check)
    print(f"\nfull/tail: write survives AZ={write_az}, "
          f"read survives AZ+1={read_az1}, AZ+2={read_az2}")
    assert write_az          # writes survive a whole-AZ loss
    assert read_az1          # reads (repair) survive AZ+1
    assert not read_az2      # the design's stated limit
