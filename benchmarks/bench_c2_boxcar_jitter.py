"""C2 -- boxcar strategies and write-path jitter (section 2.2).

"There is a challenge in deciding, with each record, whether to issue the
write, to improve latency, or to wait for subsequent records, to improve
write efficiency and throughput.  Waiting creates performance jitter since
early requests entering the boxcar have to wait for later requests or a
timeout to fill the request.  Jitter is greatest under low load when the
boxcar times out.  ...  Aurora handles this by submitting the asynchronous
network operation when it receives the first redo log record in the boxcar
but continuing to fill the buffer until the network operation executes."

The bench sweeps offered load for all three driver modes and reports commit
latency plus batching efficiency.  Expected shape: TIMEOUT's latency is
dominated by the timer at low load and converges at high load; AURORA
matches IMMEDIATE's latency at every load while sending far fewer network
operations at high load.
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.driver import BoxcarMode
from repro.workloads import WorkloadGenerator, WorkloadRunner, profile

from .conftest import fmt, percentile, print_table

LOADS = [  # (label, transactions per ms)
    ("trickle 0.02/ms", 0.02),
    ("light 0.2/ms", 0.2),
    ("heavy 2.0/ms", 2.0),
]
MODES = [BoxcarMode.AURORA, BoxcarMode.TIMEOUT, BoxcarMode.IMMEDIATE]


def run_cell(mode, rate, seed):
    config = ClusterConfig(seed=seed)
    config.instance.driver.boxcar_mode = mode
    config.instance.driver.boxcar_timeout = 4.0
    config.instance.driver.boxcar_max_records = 16
    cluster = AuroraCluster.build(config)
    generator = WorkloadGenerator(profile("trickle"), seed=seed)
    runner = WorkloadRunner(cluster, generator)
    stats = runner.run_open_loop(rate_per_ms=rate, duration_ms=400.0)
    driver_stats = cluster.writer.driver.stats
    records_per_batch = (
        driver_stats.records_sent / driver_stats.batches_sent
        if driver_stats.batches_sent
        else 0.0
    )
    return {
        "p50": percentile(stats.commit_latencies, 0.5),
        "p99": percentile(stats.commit_latencies, 0.99),
        "records_per_batch": records_per_batch,
        "committed": stats.committed,
    }


def test_c2_boxcar_jitter_sweep(benchmark):
    def sweep():
        table = {}
        for mode in MODES:
            for label, rate in LOADS:
                table[(mode, label)] = run_cell(
                    mode, rate, seed=500 + hash(label) % 100
                )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for mode in MODES:
        for label, _rate in LOADS:
            cell = table[(mode, label)]
            rows.append(
                [
                    mode.value, label, fmt(cell["p50"]), fmt(cell["p99"]),
                    fmt(cell["records_per_batch"], 1), cell["committed"],
                ]
            )
    print_table(
        "C2: commit latency vs offered load per boxcar mode",
        ["mode", "load", "p50 ms", "p99 ms", "rec/batch", "commits"],
        rows,
    )

    def cell(mode, label):
        return table[(mode, label)]

    trickle = LOADS[0][0]
    heavy = LOADS[2][0]
    # 1. "Jitter is greatest under low load when the boxcar times out":
    #    the TIMEOUT boxcar's trickle latency carries the 4ms timer.
    assert cell(BoxcarMode.TIMEOUT, trickle)["p50"] > (
        cell(BoxcarMode.AURORA, trickle)["p50"] + 3.0
    )
    # 2. Aurora adds (almost) no latency versus no batching at all.
    assert cell(BoxcarMode.AURORA, trickle)["p50"] < (
        cell(BoxcarMode.IMMEDIATE, trickle)["p50"] + 0.2
    )
    # 3. ... while batching meaningfully under load.
    assert cell(BoxcarMode.AURORA, heavy)["records_per_batch"] > 1.5 * (
        cell(BoxcarMode.IMMEDIATE, heavy)["records_per_batch"]
    )
    # 4. The TIMEOUT penalty shrinks as load fills boxcars.
    timeout_gap_trickle = (
        cell(BoxcarMode.TIMEOUT, trickle)["p50"]
        - cell(BoxcarMode.AURORA, trickle)["p50"]
    )
    timeout_gap_heavy = (
        cell(BoxcarMode.TIMEOUT, heavy)["p50"]
        - cell(BoxcarMode.AURORA, heavy)["p50"]
    )
    assert timeout_gap_heavy < timeout_gap_trickle


def test_c2_per_record_boxcar_delay(benchmark):
    """Direct measurement of time records spend waiting in write buffers."""

    def run():
        results = {}
        for mode in MODES:
            config = ClusterConfig(seed=501)
            config.instance.driver.boxcar_mode = mode
            config.instance.driver.boxcar_timeout = 4.0
            cluster = AuroraCluster.build(config)
            db = cluster.session()
            for i in range(40):
                db.write(f"k{i}", i)
                cluster.run_for(5.0)  # low load: boxcars never fill
            results[mode] = cluster.writer.driver.stats.boxcar_delays
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode.value, fmt(percentile(delays, 0.5)),
         fmt(percentile(delays, 0.99)), fmt(max(delays))]
        for mode, delays in results.items()
    ]
    print_table(
        "C2b: per-record time in the write buffer at low load (ms)",
        ["mode", "p50", "p99", "max"],
        rows,
    )
    # AURORA's bound is the default boxcar window: DriverConfig's
    # submit_delay of 0.05 ms (the paper's sub-millisecond "submit the
    # async op on the first record, fill until it executes" strategy).
    # The simulator-wide batching defaults -- this window, the 32-record
    # cap, and the replication-stream frame window derived from it -- are
    # catalogued in docs/PERF.md; change them there and this bound moves.
    assert max(results[BoxcarMode.AURORA]) <= 0.06
    assert percentile(results[BoxcarMode.TIMEOUT], 0.5) >= 3.9
    assert max(results[BoxcarMode.IMMEDIATE]) == 0.0


def test_c2_adaptive_window_converges(benchmark):
    """Adaptive group commit: idle -> burst -> idle window convergence.

    The adaptive policy derives the AURORA-mode window from an EWMA of
    inter-record arrival gaps.  The regression this guards: a burst must
    not leave a sticky wide window behind -- the first record after an
    idle period has to flush with a sub-millisecond window, because the
    idle gap resets the load estimate (see DriverConfig.adaptive_idle_gap).
    """

    def run():
        config = ClusterConfig(seed=502)
        config.instance.driver.group_commit = "adaptive"
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        driver = cluster.writer.driver

        def paced_burst(count, pace_ms):
            futures = []
            for i in range(count):
                txn = db.begin()
                db.put(txn, f"k{i:03d}", i)
                futures.append(db.commit_async(txn))
                cluster.run_for(pace_ms)
            for future in futures:
                db.drive(future)

        trace = {}
        # Burst: records arrive every ~0.5 ms, so the EWMA converges to
        # ~0.5 and the window opens to gain x gap (clamped to the boxcar
        # timeout) -- far wider than the fixed 0.05 ms submit window.
        paced_burst(40, pace_ms=0.5)
        trace["burst"] = driver.adaptive_window(0)
        # Idle: nothing arrives for 50 ms (>> adaptive_idle_gap).
        cluster.run_for(50.0)
        txn = db.begin()
        db.put(txn, "post-idle", 1)
        future = db.commit_async(txn)
        trace["post_idle"] = driver.adaptive_window(0)
        db.drive(future)
        # Second burst then idle again: convergence is repeatable, not a
        # first-run artifact.
        paced_burst(40, pace_ms=0.5)
        trace["burst2"] = driver.adaptive_window(0)
        cluster.run_for(50.0)
        txn = db.begin()
        db.put(txn, "post-idle-2", 2)
        future = db.commit_async(txn)
        trace["post_idle2"] = driver.adaptive_window(0)
        db.drive(future)
        trace["stats"] = driver.stats
        return trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = trace["stats"]
    mean_window = (
        stats.adaptive_window_sum / stats.adaptive_windows_armed
        if stats.adaptive_windows_armed
        else 0.0
    )
    print_table(
        "C2c: adaptive window across idle -> burst -> idle (ms)",
        ["burst", "post-idle", "burst#2", "post-idle#2", "armed mean",
         "armed max"],
        [[fmt(trace["burst"]), fmt(trace["post_idle"]),
          fmt(trace["burst2"]), fmt(trace["post_idle2"]),
          fmt(mean_window), fmt(stats.adaptive_window_max)]],
    )
    # Under steady ~0.5 ms arrivals the window opens well past the fixed
    # 0.05 ms submit window...
    assert trace["burst"] > 1.0
    assert trace["burst2"] > 1.0
    # ... and converges back to sub-millisecond immediately after idle:
    # no sticky wide window.
    assert trace["post_idle"] < 1.0
    assert trace["post_idle2"] < 1.0
