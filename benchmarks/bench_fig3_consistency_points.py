"""F3 -- Figure 3: storage consistency points.

Reproduces the paper's exact worked example: two protection groups, log
records 101-106 alternating between them (odd -> PG1, even -> PG2), with
records 105 and 106 not yet at quorum.  The paper states the expected
bookkeeping: "PG1's PGCL is 103 because 105 has not met quorum, PG2's PGCL
is 104 because 106 has not met quorum, and the database's VCL is 104".

Also runs the live-cluster analogue: a two-PG cluster where the last write
to each PG is withheld from a write quorum, and checks that the driver's
trackers land on the same shape.
"""

from repro.core.consistency import (
    PGConsistencyTracker,
    VolumeConsistencyTracker,
)
from repro.core.quorum import v6_config

from .conftest import print_table


def figure3_exact():
    """The paper's example, run through the pure trackers."""
    pg1_members = [f"A1 B1 C1 D1 E1 F1".split()[i] for i in range(6)]
    pg2_members = [f"A2 B2 C2 D2 E2 F2".split()[i] for i in range(6)]
    pg1 = PGConsistencyTracker(1, v6_config(pg1_members))
    pg2 = PGConsistencyTracker(2, v6_config(pg2_members))
    volume = VolumeConsistencyTracker()
    for lsn in range(101, 107):
        volume.register(lsn, 1 if lsn % 2 else 2, mtr_end=True)
    # Records 101, 103 fully acked on PG1; 105 only on 2 members.
    for member in pg1_members[:4]:
        pg1.record_ack(member, 103)
    for member in pg1_members[4:]:
        pg1.record_ack(member, 105)
    # Records 102, 104 fully acked on PG2; 106 only on 3 members.
    for member in pg2_members[:4]:
        pg2.record_ack(member, 104)
    for member in pg2_members[4:]:
        pg2.record_ack(member, 106)
    volume.on_pgcl(1, pg1.pgcl)
    volume.on_pgcl(2, pg2.pgcl)
    return pg1.pgcl, pg2.pgcl, volume.vcl


def test_fig3_exact_example(benchmark):
    pgcl1, pgcl2, vcl = benchmark(figure3_exact)
    print_table(
        "Figure 3: storage consistency points (paper's worked example)",
        ["point", "paper", "reproduced"],
        [
            ["PGCL (PG1)", 103, pgcl1],
            ["PGCL (PG2)", 104, pgcl2],
            ["VCL", 104, vcl],
        ],
    )
    assert (pgcl1, pgcl2, vcl) == (103, 104, 104)


def run_live_cluster():
    from repro import AuroraCluster, ClusterConfig

    config = ClusterConfig(pg_count=2, blocks_per_pg=16, seed=203)
    cluster = AuroraCluster.build(config)
    db = cluster.session()
    # Fill enough rows to spill block allocation into PG1 (block
    # allocation walks PG0 first); splits consume ~1 block per ~14 rows.
    for i in range(170):
        db.write(f"key{i:03d}", i)
    cluster.run_for(50)
    driver = cluster.writer.driver
    return {
        "pgcls": {pg: t.pgcl for pg, t in driver.pg_trackers.items()},
        "vcl": driver.vcl,
        "vdl": driver.vdl,
        "scls": {
            0: cluster.segment_scls(0),
            1: cluster.segment_scls(1),
        },
    }


def test_fig3_live_cluster(benchmark):
    state = benchmark.pedantic(run_live_cluster, rounds=1, iterations=1)
    rows = [
        ["PGCL(PG0)", state["pgcls"][0]],
        ["PGCL(PG1)", state["pgcls"][1]],
        ["VCL", state["vcl"]],
        ["VDL", state["vdl"]],
    ]
    print_table("Figure 3 (live cluster): consistency points",
                ["point", "LSN"], rows)
    # Invariant shape: VCL caps at the smallest PG frontier; VDL <= VCL;
    # every PGCL is supported by >= 4 member SCLs.
    assert state["vdl"] <= state["vcl"]
    for pg, pgcl in state["pgcls"].items():
        assert state["vcl"] <= max(pgcl for pgcl in state["pgcls"].values())
        supporters = [
            scl for scl in state["scls"][pg].values() if scl >= pgcl
        ]
        assert len(supporters) >= 4
    assert state["pgcls"][1] > 0  # traffic really spanned both PGs
