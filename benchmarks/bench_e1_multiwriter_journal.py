"""E1 (extension) -- journal-ordered cross-partition commits versus 2PC.

Section 1 of the paper: the single-writer approach "is extensible to
multi-writer databases by ordering writes at database nodes, storage
nodes, and using a journal to order operations that span multiple database
instances".  This bench measures that extension against the alternative
the paper rejects -- running two-phase commit between the partitions:

- **journal**: one quorum append (4/6 of journal segments) is the commit
  point; participants apply asynchronously in GSN order; a participant
  crash after the append loses nothing (replay).
- **2PC**: two sequential rounds between coordinator and participants with
  forced writes, plus the blocking window if the coordinator dies.

Also reports the single-partition fast path: transactions that touch one
partition never pay for the journal at all.
"""

import random

from repro.baselines import TwoPhaseCommitCluster
from repro.multiwriter import MultiWriterCluster
from repro.sim.events import EventLoop
from repro.sim.network import Network

from .conftest import fmt, percentile, print_table

ROUNDS = 60


def find_cross_keys(mw):
    by_partition = {}
    i = 0
    while len(by_partition) < 2:
        key = f"key-{i}"
        by_partition.setdefault(mw.partition_of(key), key)
        i += 1
    return list(by_partition.values())


def run_journal_commits():
    mw = MultiWriterCluster(partition_count=2, seed=901)
    session = mw.session()
    k_a, k_b = find_cross_keys(mw)
    cross, single = [], []
    for i in range(ROUNDS):
        start = mw.loop.now
        txn = session.begin()
        session.put(txn, k_a, i)
        session.put(txn, k_b, i)
        session.commit(txn)
        cross.append(mw.loop.now - start)
        start = mw.loop.now
        session.write(k_a, i)  # single-partition fast path
        single.append(mw.loop.now - start)
    return cross, single


def run_2pc_commits():
    loop = EventLoop()
    rng = random.Random(902)
    network = Network(loop, rng)
    # Two participants: the two "partitions" of the cross transaction.
    tpc = TwoPhaseCommitCluster(loop, network, rng, participant_count=2)
    futures = [tpc.commit() for _ in range(ROUNDS)]
    loop.run_until_idle()
    assert all(f.done for f in futures)
    return tpc.coordinator.commit_latencies


def test_e1_cross_partition_commit_latency(benchmark):
    def run():
        cross, single = run_journal_commits()
        tpc = run_2pc_commits()
        return cross, single, tpc

    cross, single, tpc = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["journal (cross-partition)", fmt(percentile(cross, 0.5)),
         fmt(percentile(cross, 0.99))],
        ["single-partition fast path", fmt(percentile(single, 0.5)),
         fmt(percentile(single, 0.99))],
        ["2PC between partitions", fmt(percentile(tpc, 0.5)),
         fmt(percentile(tpc, 0.99))],
    ]
    print_table(
        f"E1: multi-writer commit latency, {ROUNDS} txns (ms)",
        ["path", "p50", "p99"],
        rows,
    )
    # Single-partition traffic pays nothing for multi-writer support.
    assert percentile(single, 0.5) < percentile(cross, 0.5)
    # The journal's p99 tail stays controlled (one quorum round) while
    # 2PC's unanimity amplifies outliers.
    assert (
        percentile(cross, 0.99) / percentile(cross, 0.5)
        < percentile(tpc, 0.99) / percentile(tpc, 0.5) + 2.0
    )


def test_e1_participant_crash_no_blocking_window(benchmark):
    """2PC's blocking window versus the journal: after the commit point,
    a dead participant blocks NOTHING -- it replays on recovery."""

    def run():
        mw = MultiWriterCluster(partition_count=2, seed=903)
        session = mw.session()
        k_a, k_b = find_cross_keys(mw)
        # Commit a cross transaction fully.
        txn = session.begin()
        session.put(txn, k_a, "pre")
        session.put(txn, k_b, "pre")
        session.commit(txn)
        # Sequence another one at the journal; crash a participant before
        # it applies (the 2PC-blocking analogue).
        victim = mw.partition_of(k_a)
        entry = session.drive(
            mw.journal.append(
                "in-doubt",
                {mw.partition_of(k_a): [(k_a, "decided")],
                 mw.partition_of(k_b): [(k_b, "decided")]},
            )
        )
        mw.crash_partition(victim)
        # The OTHER partition proceeds immediately -- no blocking window.
        other = mw.partition_of(k_b)
        session.drive(mw.appliers[other].ensure_applied(entry.gsn))
        other_value = session.get(k_b)
        # And traffic on the surviving partition flows freely.
        survivor_key = k_b
        session.write(survivor_key, "still-writing")
        # Recover the victim: the decided transaction replays.
        recover_start = mw.loop.now
        session.drive(mw.recover_partition(victim))
        recovery_ms = mw.loop.now - recover_start
        return other_value, session.get(k_a), recovery_ms

    other_value, victim_value, recovery_ms = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nsurvivor applied immediately: {other_value!r}; victim after "
          f"replay: {victim_value!r}; recovery+replay = {recovery_ms:.1f} ms")
    assert other_value == "decided"
    assert victim_value == "decided"
    assert recovery_ms < 1_000
