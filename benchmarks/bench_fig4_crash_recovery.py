"""F4 -- Figure 4: log truncation during crash recovery.

Reproduces the figure's scenario end-to-end on a live cluster: the writer
crashes with asynchronous writes still in flight (some records past the
quorum point, with gaps).  Recovery must

- re-compute the VCL from a read-quorum scan of SCLs,
- record a truncation range annulling everything beyond it,
- ignore in-flight writes that complete *during* recovery, and
- allocate new LSNs above the truncation range.

The bench prints the recovered consistency points and verifies each of the
figure's elements, then confirms zero acknowledged commits were lost.
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session

from .conftest import print_table


def run_crash_recovery():
    cluster = AuroraCluster.build(ClusterConfig(seed=204))
    db = cluster.session()
    acknowledged = {}

    # Slow two segments so the log has a ragged edge at crash time.
    cluster.failures.slow_node("pg0-e", 30.0)
    cluster.failures.slow_node("pg0-f", 30.0)
    for i in range(30):
        txn = db.begin()
        db.put(txn, f"key{i:02d}", i)
        db.commit_async(txn).add_done_callback(
            lambda f, k=f"key{i:02d}", v=i: acknowledged.__setitem__(k, v)
        )
    cluster.run_for(6.0)  # cut mid-stream: some acked, some in flight
    pre_crash_scls = cluster.segment_scls(0)
    pre_crash_next_lsn = cluster.writer.allocator.next_lsn
    cluster.crash_writer()

    process = cluster.recover_writer()
    db = Session(cluster.writer)
    result = db.drive(process)
    post_scls = cluster.segment_scls(0)

    survivors = {k: db.get(k) for k in acknowledged}
    return {
        "acknowledged": acknowledged,
        "survivors": survivors,
        "result": result,
        "pre_scls": pre_crash_scls,
        "post_scls": post_scls,
        "pre_next_lsn": pre_crash_next_lsn,
        "new_next_lsn": cluster.writer.allocator.next_lsn,
        "cluster": cluster,
        "db": db,
    }


def test_fig4_crash_recovery(benchmark):
    state = benchmark.pedantic(run_crash_recovery, rounds=1, iterations=1)
    result = state["result"]
    rows = [
        ["SCLs at crash", sorted(state["pre_scls"].values())],
        ["recovered VCL", result.vcl],
        ["recovered VDL", result.vdl],
        ["truncation range",
         f"[{result.truncation.first}..{result.truncation.last}]"],
        ["SCLs after truncation", sorted(state["post_scls"].values())],
        ["highest pre-crash LSN", state["pre_next_lsn"] - 1],
        ["first post-recovery LSN", state["new_next_lsn"]],
        ["acked commits", len(state["acknowledged"])],
        ["acked commits recovered",
         sum(1 for k, v in state["acknowledged"].items()
             if state["survivors"][k] == v)],
    ]
    print_table("Figure 4: log truncation during crash recovery",
                ["quantity", "value"], rows)

    # The figure's elements:
    assert result.truncation.first == result.vcl + 1
    assert state["new_next_lsn"] > result.truncation.last
    # Every segment's chain was clamped to the surviving log.
    assert all(scl <= result.vcl for scl in state["post_scls"].values())
    # Zero acknowledged-commit loss (the durability contract).
    for key, value in state["acknowledged"].items():
        assert state["survivors"][key] == value
    # At least one ragged-edge record existed (SCL spread at crash) --
    # otherwise this scenario did not exercise the figure.
    assert len(set(state["pre_scls"].values())) > 1


def test_fig4_recovery_cost_is_flat_in_history(benchmark):
    """'No redo replay is required': recovery does a read-quorum scan of
    hot-log digests, so doubling committed history (which gets coalesced
    and GC'd) does not double recovery work."""

    def recovery_scan_size(txn_count):
        config = ClusterConfig(seed=205)
        config.node.backup_interval = 50.0
        config.node.gc_interval = 25.0
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(txn_count):
            db.write(f"key{i:04d}", i)
        cluster.run_for(800)  # coalesce + backup + GC churn the hot log
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        duration = cluster.writer.stats.recovery_durations[-1]
        return duration

    small = benchmark.pedantic(
        lambda: recovery_scan_size(40), rounds=1, iterations=1
    )
    large = recovery_scan_size(160)
    print(f"\nrecovery duration: 40 txns={small:.2f}ms  "
          f"160 txns={large:.2f}ms  ratio={large / small:.2f}x "
          f"(4x history)")
    assert large < small * 3.0  # far from linear in history
