"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or quantified claim from the paper
(see DESIGN.md's experiment index) and prints the reproduced table/series.
Run with::

    pytest benchmarks/ --benchmark-only -s

The printed output is the reproduction artifact; the pytest-benchmark
timings additionally document the harness cost itself.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--backend",
        action="store",
        default="aurora",
        choices=("aurora", "taurus"),
        help="storage backend for the backend-aware benches (C1/C6/C7)",
    )


@pytest.fixture
def bench_backend(request) -> str:
    """The storage backend selected with ``--backend`` (default aurora)."""
    return request.config.getoption("--backend")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a fixed-width table to stdout (the bench report format)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def percentile(series: list[float], q: float) -> float:
    if not series:
        return 0.0
    ordered = sorted(series)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"
