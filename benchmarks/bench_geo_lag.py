"""Geo replication lag versus WAN loss rate.

Steady-state behaviour of the cross-region redo stream as the WAN
degrades: the go-back-N retransmission protocol should hold the
secondary's applied-VDL frontier close to the primary's durable VDL well
past 20% frame loss, trading retransmissions (bandwidth) for lag -- not
correctness.  The sync ack mode pays the same tax in commit latency,
since a sync commit gates on the remote frontier.

For each loss rate the benchmark runs the same seeded write workload
twice (async: lag sampled after every write; sync: per-commit latency)
and prints one table.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_geo_lag.py
"""

from __future__ import annotations

import argparse

from repro.geo import ASYNC, SYNC, GeoCluster, GeoConfig
from repro.repair.metrics import percentile
from repro.sim.wan import WanConfig

LOSS_RATES = (0.0, 0.05, 0.2, 0.4)


def _build(seed: int, loss_rate: float, ack_mode: str) -> GeoCluster:
    return GeoCluster.build(
        GeoConfig(
            seed=seed,
            ack_mode=ack_mode,
            wan=WanConfig(loss_rate=loss_rate),
        )
    )


def measure(seed: int, loss_rate: float, writes: int) -> dict:
    """One loss-rate point: async lag profile + sync commit latency."""
    geo = _build(seed, loss_rate, ACK_ASYNC)
    db = geo.session()
    lag_samples = []

    def true_lag() -> int:
        # Omniscient lag: the applier's own ``lag`` only counts redo it
        # KNOWS about (heartbeats are as lossy as data), which
        # underreports at high loss rates.
        return max(0, geo.primary.writer.vdl - geo.applier.applied_vdl)

    for i in range(writes):
        db.write(f"k{i % 16:02d}", f"v{i}")
        geo.run_for(20.0)
        lag_samples.append(float(true_lag()))
    # Drain: the frontier must converge to zero lag once writes stop
    # (retransmission rounds back off to ~1 s, so high loss rates need
    # many rounds to push the tail through the window).
    for _ in range(40):
        if true_lag() == 0:
            break
        geo.run_for(1000.0)
    final_lag = true_lag()
    wan = geo.wan.stats
    retransmit_ratio = geo.sender.wan.frames_retransmitted / max(
        1, geo.sender.wan.frames_sent
    )

    sync_geo = _build(seed, loss_rate, ACK_SYNC)
    sync_db = sync_geo.session()
    commit_ms = []
    for i in range(max(1, writes // 4)):
        start = sync_geo.loop.now
        sync_db.write(f"k{i % 16:02d}", f"v{i}")
        commit_ms.append(sync_geo.loop.now - start)

    return {
        "loss": loss_rate,
        "lag_mean": sum(lag_samples) / len(lag_samples),
        "lag_p95": percentile(lag_samples, 95),
        "lag_max": max(lag_samples),
        "final_lag": final_lag,
        "retransmit_ratio": retransmit_ratio,
        "wan_lost": wan.messages_lost,
        "sync_p50_ms": percentile(commit_ms, 50),
        "sync_p95_ms": percentile(commit_ms, 95),
    }


ACK_ASYNC = ASYNC
ACK_SYNC = SYNC


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--writes", type=int, default=120)
    args = parser.parse_args()

    header = (
        f"{'loss':>6} {'lag mean':>9} {'lag p95':>8} {'lag max':>8} "
        f"{'final':>6} {'rtx ratio':>9} {'dropped':>8} "
        f"{'sync p50':>9} {'sync p95':>9}"
    )
    print("geo replication lag vs WAN loss rate "
          f"(seed={args.seed}, {args.writes} writes, LSN units, ms)")
    print(header)
    print("-" * len(header))
    ok = True
    for loss in LOSS_RATES:
        row = measure(args.seed, loss, args.writes)
        print(
            f"{row['loss']:>6.2f} {row['lag_mean']:>9.1f} "
            f"{row['lag_p95']:>8.0f} {row['lag_max']:>8.0f} "
            f"{row['final_lag']:>6d} {row['retransmit_ratio']:>9.2f} "
            f"{row['wan_lost']:>8d} {row['sync_p50_ms']:>9.1f} "
            f"{row['sync_p95_ms']:>9.1f}"
        )
        # The correctness claim: lag is transient at every loss rate --
        # once the workload stops, the frontier converges to zero.
        if row["final_lag"] != 0:
            ok = False
    if not ok:
        print("FAIL: replication frontier did not converge to zero lag")
        return 1
    print("ok: frontier converged to zero lag at every loss rate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
