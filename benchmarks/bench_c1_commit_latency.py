"""C1 -- commit latency: Aurora quorum acks versus consensus per write.

The paper (section 1) claims systems built on 2PC / Paxos "have
order-of-magnitude worse cost, performance, and peak to average latency
than a traditional relational database", and section 2.3 that distributed
commit protocols are "heavyweight and introduce[] stalls and jitter into
the write path".

This bench runs the same commit stream through four systems on identical
simulated networks (same AZ topology, same latency distributions, fresh
seeds per system):

- Aurora (this library): async one-way records + 4/6 quorum acks;
- Aurora-sync ablation (D2): same quorum, but commits issued one at a
  time (a synchronous write path);
- Multi-Paxos (stable leader, consensus round per commit);
- 2PC (two sequential rounds + forced writes per commit).

Expected shape: Aurora p50 is in the same ballpark as Paxos phase-2 (both
are one quorum round trip) but Aurora's p99/p50 and peak-to-average stay
flat while 2PC roughly doubles the latency and everything except Aurora
suffers more under a slow node (tail amplification).
"""

import random

from repro import AuroraCluster, ClusterConfig
from repro.baselines import PaxosCluster, TwoPhaseCommitCluster
from repro.sim.events import EventLoop
from repro.sim.latency import CompositeLatency, LogNormalLatency
from repro.sim.network import Network

from .conftest import fmt, percentile, print_table

COMMITS = 150


def _noisy_models():
    """Latency models with occasional slow outliers (a busy node)."""
    return (
        CompositeLatency(
            LogNormalLatency(0.25, 0.35), LogNormalLatency(3.0, 0.4), 0.02
        ),
        CompositeLatency(
            LogNormalLatency(1.0, 0.40), LogNormalLatency(8.0, 0.4), 0.02
        ),
    )


def _noisy_network(loop, seed):
    intra, cross = _noisy_models()
    return Network(loop, random.Random(seed), intra_az=intra, cross_az=cross)


def _noisy_cluster(seed, backend="aurora"):
    intra, cross = _noisy_models()
    config = ClusterConfig(
        seed=seed, intra_az_latency=intra, cross_az_latency=cross,
        backend=backend,
    )
    return AuroraCluster.build(config)


def aurora_latencies(pipelined=True, backend="aurora"):
    cluster = _noisy_cluster(seed=301, backend=backend)
    db = cluster.session()
    if pipelined:
        # Paced open-loop arrivals: workers enqueue commits and move on
        # (the paper's worker-thread model); nobody waits synchronously.
        futures = []
        for i in range(COMMITS):
            txn = db.begin()
            db.put(txn, f"k{i:03d}", i)
            futures.append(db.commit_async(txn))
            cluster.run_for(0.4)
        for future in futures:
            db.drive(future)
    else:
        for i in range(COMMITS):
            db.write(f"k{i:03d}", i)
    messages = cluster.network.stats.messages_sent
    return cluster.writer.stats.commit_latencies, messages / COMMITS


def paxos_latencies():
    loop = EventLoop()
    network = _noisy_network(loop, seed=302)
    paxos = PaxosCluster(loop, network, random.Random(302), acceptor_count=6)
    election = paxos.elect()
    loop.run_until_idle()
    assert election.result()
    base_messages = network.stats.messages_sent
    futures = [paxos.propose(i) for i in range(COMMITS)]
    loop.run_until_idle()
    assert all(f.done for f in futures)
    per_commit = (network.stats.messages_sent - base_messages) / COMMITS
    return paxos.leader.commit_latencies, per_commit


def tpc_latencies():
    loop = EventLoop()
    network = _noisy_network(loop, seed=303)
    tpc = TwoPhaseCommitCluster(
        loop, network, random.Random(303), participant_count=6
    )
    futures = [tpc.commit() for _ in range(COMMITS)]
    loop.run_until_idle()
    assert all(f.done for f in futures)
    per_commit = network.stats.messages_sent / COMMITS
    return tpc.coordinator.commit_latencies, per_commit


def summarize(name, latencies, msgs):
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    mean = sum(latencies) / len(latencies)
    return [
        name, fmt(p50), fmt(p99), fmt(p99 / p50, 2),
        fmt(max(latencies) / mean, 2), fmt(msgs, 1),
    ]


def test_c1_commit_latency_comparison(benchmark, bench_backend):
    def run_all():
        return {
            "aurora": aurora_latencies(
                pipelined=True, backend=bench_backend
            ),
            "aurora-sync": aurora_latencies(
                pipelined=False, backend=bench_backend
            ),
            "paxos": paxos_latencies(),
            "2pc": tpc_latencies(),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    label = f"{bench_backend} backend"
    rows = [
        summarize(f"Aurora ({label})", *results["aurora"]),
        summarize(f"Aurora sync ({label})", *results["aurora-sync"]),
        summarize("Multi-Paxos / write", *results["paxos"]),
        summarize("2PC / write", *results["2pc"]),
    ]
    print_table(
        f"C1: commit latency over {COMMITS} commits (ms)",
        ["system", "p50", "p99", "p99/p50", "peak/avg", "msgs/commit"],
        rows,
    )
    aurora_lat, aurora_msgs = results["aurora"]
    paxos_lat, _ = results["paxos"]
    tpc_lat, tpc_msgs = results["2pc"]
    # Shape: Aurora's median commit is at least as fast as both
    # consensus-per-write baselines (one-way records + quorum acks beat a
    # consensus round + forced acceptor writes).
    assert percentile(aurora_lat, 0.5) <= percentile(paxos_lat, 0.5)
    assert percentile(aurora_lat, 0.5) <= percentile(tpc_lat, 0.5)
    # The paper's peak-to-average claim: 2PC's tail blows up (it must hear
    # from EVERY participant, so outliers always land on the critical
    # path) while Aurora's quorum keeps p99/p50 flat.
    aurora_ratio = percentile(aurora_lat, 0.99) / percentile(aurora_lat, 0.5)
    tpc_ratio = percentile(tpc_lat, 0.99) / percentile(tpc_lat, 0.5)
    assert tpc_ratio > 2 * aurora_ratio
    # And batching means far fewer network operations per commit.
    assert aurora_msgs < tpc_msgs


def test_c1_boxcar_write_batching(benchmark):
    """Boxcar batching on the C1 commit stream: the same burst of commits
    crosses the network in >=5x fewer WriteBatch messages than an
    unbatched (IMMEDIATE) driver, while carrying the same records."""
    from repro.db.driver import BoxcarMode

    def run_mode(mode, seed):
        intra, cross = _noisy_models()
        config = ClusterConfig(
            seed=seed, intra_az_latency=intra, cross_az_latency=cross
        )
        config.instance.driver.boxcar_mode = mode
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        # Concurrent open-loop burst: all workers enqueue at once, so
        # consecutive records share boxcar windows (the C1 worker model).
        futures = []
        for i in range(COMMITS):
            txn = db.begin()
            db.put(txn, f"k{i:03d}", i)
            futures.append(db.commit_async(txn))
        for future in futures:
            db.drive(future)
        stats = cluster.network.stats
        batches = stats.by_type["WriteBatch"]
        records = stats.by_type.get("WriteBatch.records", batches)
        return batches, records

    def run():
        return {
            "aurora": run_mode(BoxcarMode.AURORA, seed=306),
            "immediate": run_mode(BoxcarMode.IMMEDIATE, seed=306),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    aurora_batches, aurora_records = results["aurora"]
    imm_batches, imm_records = results["immediate"]
    print_table(
        f"C1c: WriteBatch messages for {COMMITS} burst commits",
        ["driver", "WriteBatch msgs", "records carried", "records/batch"],
        [
            ["Aurora boxcar (0.05ms)", aurora_batches, aurora_records,
             fmt(aurora_records / aurora_batches, 1)],
            ["Immediate (unbatched)", imm_batches, imm_records,
             fmt(imm_records / imm_batches, 1)],
        ],
    )
    # Same workload, same records on the wire -- in >=5x fewer messages.
    assert aurora_records == imm_records
    assert imm_batches >= 5 * aurora_batches


def test_c1_tail_under_slow_node(benchmark, bench_backend):
    """A degraded (not dead) participant: the write quorum (4/6, or 2/3 of
    the Taurus log stores) ignores it; Paxos/2PC latency follows whichever
    majority/unanimity includes it."""

    def run():
        # Aurora with one slow segment (a log store under Taurus).
        cluster = _noisy_cluster(seed=304, backend=bench_backend)
        cluster.failures.slow_node("pg0-a", 25.0)
        db = cluster.session()
        futures = []
        for i in range(80):
            txn = db.begin()
            db.put(txn, f"k{i}", i)
            futures.append(db.commit_async(txn))
        for future in futures:
            db.drive(future)
        aurora = cluster.writer.stats.commit_latencies

        # 2PC with one slow participant (unanimity must include it).
        loop = EventLoop()
        network = _noisy_network(loop, seed=305)
        tpc = TwoPhaseCommitCluster(
            loop, network, random.Random(305), participant_count=6
        )
        network.set_latency_scale("tpc-p0", 25.0)
        tpc_futures = [tpc.commit() for _ in range(80)]
        loop.run_until_idle()
        assert all(f.done for f in tpc_futures)
        return aurora, tpc.coordinator.commit_latencies

    aurora, tpc = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["Aurora 4/6 (slow node)", fmt(percentile(aurora, 0.5)),
         fmt(percentile(aurora, 0.99))],
        ["2PC all-of-6 (slow node)", fmt(percentile(tpc, 0.5)),
         fmt(percentile(tpc, 0.99))],
    ]
    print_table("C1b: one degraded node (25x slower), commit ms",
                ["system", "p50", "p99"], rows)
    # Aurora's quorum masks the slow node entirely; 2PC absorbs it fully.
    assert percentile(aurora, 0.99) < percentile(tpc, 0.5)


def test_c1_adaptive_low_load_guardrail(benchmark):
    """Adaptive group commit must not tax low-load commit latency.

    At trickle load every arrival gap crosses ``adaptive_idle_gap``, the
    EWMA stays reset, and the derived window is ~0 -- so the adaptive
    policy must commit at least as fast (p50) as the fixed 0.05 ms
    submit window it replaces.  This is the guardrail the adaptive
    tentpole ships under: wider windows are only ever bought with
    observed load, never with idle latency.
    """
    from repro.workloads import WorkloadGenerator, WorkloadRunner, profile

    def run(policy):
        config = ClusterConfig(seed=306)
        config.instance.driver.group_commit = policy
        cluster = AuroraCluster.build(config)
        generator = WorkloadGenerator(profile("trickle"), seed=306)
        runner = WorkloadRunner(cluster, generator)
        stats = runner.run_open_loop(rate_per_ms=0.05, duration_ms=2000.0)
        return (
            stats.commit_latencies,
            cluster.writer.driver.stats.boxcar_delays,
        )

    def both():
        return run("fixed"), run("adaptive")

    (fixed, fixed_delays), (adaptive, adaptive_delays) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    rows = [
        ["fixed", fmt(percentile(fixed, 0.5)), fmt(percentile(fixed, 0.99)),
         fmt(max(fixed_delays))],
        ["adaptive", fmt(percentile(adaptive, 0.5)),
         fmt(percentile(adaptive, 0.99)), fmt(max(adaptive_delays))],
    ]
    print_table("C1c: trickle-load commit latency by group-commit policy",
                ["policy", "p50", "p99", "max buffer wait"], rows)
    assert len(adaptive) >= 50, "too few commits to compare"
    # The sharp, deterministic check: at trickle load the adaptive window
    # never opens, so no record waits in a buffer longer than under the
    # fixed 0.05 ms window.
    assert max(adaptive_delays) <= max(fixed_delays)
    # End-to-end sanity: p50 no worse than fixed.  The two runs share a
    # seed but flush at different instants, so per-message latency draws
    # diverge; the epsilon absorbs that trajectory noise while still
    # catching any armed-window regression (>= 0.3 ms by construction:
    # adaptive_gain x a sub-idle-gap EWMA).
    assert percentile(adaptive, 0.5) <= percentile(fixed, 0.5) + 0.25
