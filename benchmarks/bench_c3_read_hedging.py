"""C3 -- read routing: single bookkept reads + hedging vs quorum reads.

Section 3.1: "A buffer cache miss in Aurora's quorum model would seem to
require a minimum of three read I/Os, and likely five, to mask outlier
latency ...  Aurora does not do quorum reads. ...  If a request is taking
longer than expected, [it] will issue a read to another storage node and
accept whichever one returns first.  This caps the latency due to slow or
unavailable segments."

Three read policies over identical cold-cache workloads:

- **aurora**: route to the fastest known-durable segment, hedge overdue
  requests (the paper's design);
- **single-no-hedge** (ablation D6): fastest segment, never hedge;
- **quorum-3**: issue three reads per miss, first response wins (the
  naive quorum-read alternative).

Expected shape: aurora's I/Os per read stay near 1 (far below 3) with a
p99 close to quorum-3's (the hedge caps the tail); single-no-hedge shows
the unprotected tail once a segment degrades.
"""

from repro import AuroraCluster, ClusterConfig
from repro.sim.latency import CompositeLatency, LogNormalLatency

from .conftest import fmt, percentile, print_table

KEYS = 240


def build_cluster(seed, hedge=True, degrade=None):
    config = ClusterConfig(
        seed=seed,
        intra_az_latency=CompositeLatency(
            LogNormalLatency(0.25, 0.35), LogNormalLatency(6.0, 0.4), 0.03
        ),
        cross_az_latency=CompositeLatency(
            LogNormalLatency(1.0, 0.40), LogNormalLatency(10.0, 0.4), 0.03
        ),
    )
    config.instance.cache_capacity = 8  # force storage reads
    config.instance.driver.hedge_sweep_interval = 0.5
    if not hedge:
        config.instance.driver.hedge_multiplier = 10_000.0
    cluster = AuroraCluster.build(config)
    db = cluster.session()
    for i in range(KEYS):
        db.write(f"key{i:03d}", i)
    cluster.run_for(50)
    if degrade:
        cluster.failures.slow_node(degrade, 40.0)
    return cluster, db


def measure_reads(cluster, db):
    stats = cluster.writer.driver.stats
    base_issued = stats.reads_issued
    base_latencies = len(stats.read_latencies)
    for i in range(0, KEYS, 2):
        assert db.get(f"key{i:03d}") == i
    latencies = stats.read_latencies[base_latencies:]
    issued = stats.reads_issued - base_issued
    return latencies, issued / max(1, len(latencies))


def quorum_read_policy(cluster, db):
    """The naive alternative: 3 parallel reads per miss, first wins."""
    from repro.sim.events import Future

    driver = cluster.writer.driver
    instance = cluster.writer
    latencies = []
    ios = [0]

    def quorum_read(block, pg_index, read_point):
        future = Future(cluster.loop)
        start = cluster.loop.now
        candidates = driver._read_candidates(  # noqa: SLF001 - bench probe
            pg_index, read_point, frozenset()
        )[:3]
        for segment in candidates:
            ios[0] += 1
            from repro.storage.messages import ReadBlockRequest

            rpc = driver._rpc(
                segment,
                ReadBlockRequest(
                    pg_index=pg_index, block=block,
                    read_point=read_point, epochs=driver.epochs,
                ),
            )

            def _first(f, future=future, start=start):
                from repro.storage.messages import ReadBlockResponse

                if isinstance(f.result(), ReadBlockResponse) and not future.done:
                    latencies.append(cluster.loop.now - start)
                    future.set_result(
                        (f.result().image_dict(), f.result().version_lsn)
                    )

            rpc.add_done_callback(_first)
        return future

    # Monkey-patch the driver's read for the probe (bench-only).
    driver.read_block = quorum_read
    for i in range(0, KEYS, 2):
        assert db.get(f"key{i:03d}") == i
    reads = max(1, len(latencies))
    return latencies, ios[0] / reads


def test_c3_read_policies_healthy(benchmark):
    def run():
        aurora = measure_reads(*build_cluster(601))
        quorum = quorum_read_policy(*build_cluster(602))
        return aurora, quorum

    (a_lat, a_ios), (q_lat, q_ios) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["aurora (hedged)", fmt(percentile(a_lat, 0.5)),
         fmt(percentile(a_lat, 0.99)), fmt(a_ios, 2)],
        ["quorum-3", fmt(percentile(q_lat, 0.5)),
         fmt(percentile(q_lat, 0.99)), fmt(q_ios, 2)],
    ]
    print_table("C3: cold-cache reads, healthy fleet (ms)",
                ["policy", "p50", "p99", "IOs/read"], rows)
    # The headline: ~1 I/O per read instead of 3.
    assert a_ios < 1.5
    assert q_ios > 2.5
    # Without outliers on the chosen segment, single reads are not slower.
    assert percentile(a_lat, 0.5) < percentile(q_lat, 0.5) * 1.5


def test_c3_hedging_caps_degraded_tail(benchmark):
    def run():
        hedged_cluster, hedged_db = build_cluster(603, hedge=True)
        victim = hedged_cluster.writer.driver.latency_tracker.ranked(
            [f"pg0-{c}" for c in "abcdef"]
        )[0]
        hedged_cluster.failures.slow_node(victim, 40.0)
        hedged = measure_reads(hedged_cluster, hedged_db)
        hedges = hedged_cluster.writer.driver.stats.hedges_issued

        bare_cluster, bare_db = build_cluster(603, hedge=False)
        victim2 = bare_cluster.writer.driver.latency_tracker.ranked(
            [f"pg0-{c}" for c in "abcdef"]
        )[0]
        bare_cluster.failures.slow_node(victim2, 40.0)
        bare = measure_reads(bare_cluster, bare_db)
        return hedged, hedges, bare

    (h_lat, h_ios), hedges, (b_lat, b_ios) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ["aurora (hedged)", fmt(percentile(h_lat, 0.5)),
         fmt(percentile(h_lat, 0.99)), fmt(max(h_lat)), fmt(h_ios, 2)],
        ["no hedge (D6 ablation)", fmt(percentile(b_lat, 0.5)),
         fmt(percentile(b_lat, 0.99)), fmt(max(b_lat)), fmt(b_ios, 2)],
    ]
    print_table(
        "C3b: reads with the preferred segment degraded 40x (ms)",
        ["policy", "p50", "p99", "max", "IOs/read"],
        rows,
    )
    assert hedges > 0
    # The hedge caps the worst case well below the unprotected tail,
    # at a small extra-I/O cost.
    assert max(h_lat) < max(b_lat) * 0.7
    assert h_ios < 2.0
