"""C4 -- read replicas: cheap scaling, bounded lag, zero-loss promotion.

Section 3.2's claims:

- "There is little latency added to the write path on the writer instance
  since replication is asynchronous" -- measured: writer commit latency vs
  replica count;
- replicas attach instantly ("quickly set up and tear down replicas ...
  since durable state is shared") -- measured: attach cost in messages;
- replica lag stays bounded under sustained writes (invariant 1 keeps it
  anchored to durability, not issuance);
- "if a commit has been marked durable and acknowledged to the client,
  there is no data loss when a replica is promoted" -- measured: promoted
  writer recovers every acknowledged commit;
- the serving-tier extension: a connection-multiplexing proxy fans a
  growing logical-session fleet over the same replicas -- measured:
  steady-state replica *time* lag p95 against the sub-10 ms SLO as the
  session count scales.
"""

from repro import AuroraCluster, ClusterConfig
from repro.analysis.serving import REPLICA_LAG_SLO_MS
from repro.db.proxy import ConnectionProxy, ProxyConfig
from repro.db.session import Session
from repro.workloads.sessions import SessionScaleConfig, SessionScaleWorkload

from .conftest import fmt, percentile, print_table


def writer_latency_with_replicas(replica_count, seed=700):
    cluster = AuroraCluster.build(ClusterConfig(seed=seed))
    for i in range(replica_count):
        cluster.add_replica(f"r{i}")
    db = cluster.session()
    for i in range(60):
        db.write(f"key{i:03d}", i)
    cluster.run_for(50)
    latencies = cluster.writer.stats.commit_latencies
    lags = [
        replica.replica_lag for replica in cluster.replicas.values()
    ]
    reads_served = 0
    for name in cluster.replicas:
        rs = cluster.replica_session(name)
        for i in range(0, 60, 10):
            assert rs.get(f"key{i:03d}") == i
            reads_served += 1
    return {
        "p50": percentile(latencies, 0.5),
        "p99": percentile(latencies, 0.99),
        "max_lag": max(lags) if lags else 0,
        "reads_served": reads_served,
    }


def test_c4_write_path_unaffected_by_replica_count(benchmark):
    def sweep():
        return {
            count: writer_latency_with_replicas(count)
            for count in (0, 1, 3, 5)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [count, fmt(cell["p50"]), fmt(cell["p99"]), cell["max_lag"],
         cell["reads_served"]]
        for count, cell in results.items()
    ]
    print_table(
        "C4: writer commit latency vs replica count",
        ["replicas", "commit p50 ms", "commit p99 ms", "max lag (LSN)",
         "replica reads"],
        rows,
    )
    # Asynchronous replication: 5 replicas cost (essentially) nothing on
    # the write path.
    assert results[5]["p50"] < results[0]["p50"] * 1.2
    # Replicas catch up fully once traffic quiesces.
    assert results[5]["max_lag"] == 0


def test_c4_replica_lag_under_sustained_writes(benchmark):
    def run():
        cluster = AuroraCluster.build(ClusterConfig(seed=701))
        replica = cluster.add_replica("r1")
        db = cluster.session()
        for i in range(150):
            txn = db.begin()
            db.put(txn, f"key{i:03d}", i)
            db.commit_async(txn)
            cluster.run_for(0.5)
        samples = replica.stats.lag_samples
        cluster.run_for(50)
        return samples, replica.replica_lag, replica.stats

    samples, final_lag, stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nlag samples: n={len(samples)} p50={percentile(samples, 0.5)} "
          f"p99={percentile(samples, 0.99)} final={final_lag}")
    print(f"chunks applied={stats.chunks_applied} "
          f"records discarded (uncached)={stats.records_discarded}")
    assert final_lag == 0
    # Lag is bounded by in-flight durability, not accumulated backlog.
    assert percentile(samples, 0.99) < 40


def test_c4_attach_is_instant(benchmark):
    """Attaching a replica moves no data -- durable state is shared."""

    def run():
        cluster = AuroraCluster.build(ClusterConfig(seed=702))
        db = cluster.session()
        for i in range(100):
            db.write(f"key{i:03d}", i)
        cluster.run_for(20)
        before = cluster.network.stats.messages_sent
        cluster.add_replica("late")
        attach_messages = cluster.network.stats.messages_sent - before
        # First read works immediately (from shared storage).
        rs = cluster.replica_session("late")
        value = rs.get("key050")
        return attach_messages, value

    attach_messages, value = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmessages to attach a replica to a 100-txn volume: "
          f"{attach_messages}")
    assert value == 50
    assert attach_messages == 0  # zero data movement


def test_c4_promotion_loses_nothing(benchmark):
    def run():
        cluster = AuroraCluster.build(ClusterConfig(seed=703))
        cluster.add_replica("r1")
        db = cluster.session()
        acknowledged = {}
        for i in range(60):
            txn = db.begin()
            db.put(txn, f"key{i:03d}", i)
            db.commit_async(txn).add_done_callback(
                lambda f, k=f"key{i:03d}", v=i: acknowledged.__setitem__(
                    k, v
                )
            )
            cluster.run_for(0.3)
        crash_at = cluster.loop.now
        cluster.crash_writer()
        new_writer, recovery = cluster.promote_replica("r1")
        db = Session(new_writer)
        db.drive(recovery)
        failover_ms = cluster.loop.now - crash_at
        recovered = sum(
            1 for k, v in acknowledged.items() if db.get(k) == v
        )
        return len(acknowledged), recovered, failover_ms

    acked, recovered, failover_ms = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nacknowledged={acked} recovered={recovered} "
          f"failover={failover_ms:.1f}ms")
    assert acked > 0
    assert recovered == acked  # zero acknowledged-commit loss
    assert failover_ms < 100  # no lease to wait out, no redo to replay


def proxy_session_tier(sessions, seed=704):
    """One proxied steady-state tier: ``sessions`` logical sessions over
    two replicas, no chaos -- the lag-SLO measurement."""
    cluster = AuroraCluster.build(ClusterConfig(seed=seed))
    for i in range(2):
        cluster.add_replica(f"r{i}")
    cluster.run_for(100)
    proxy = ConnectionProxy(cluster, ProxyConfig(pool_size=64))
    workload = SessionScaleWorkload(
        proxy,
        SessionScaleConfig(
            sessions=sessions,
            horizon_ms=6_000.0,
            think_ms=30_000.0,
            seed=seed,
        ),
    )
    workload.run()
    stats = workload.stats
    lag = proxy.lag.samples
    return {
        "ops": stats.ops_completed,
        "lag_p95": percentile(lag, 0.95) if lag else 0.0,
        "lag_max": max(lag) if lag else 0.0,
        "replica_reads": proxy.stats.replica_reads,
        "writer_reads": proxy.stats.writer_reads,
        "pool_waits": proxy.stats.pool_waits,
        "ryw_violations": stats.ryw_violations,
        "consistency_violations": stats.shared_check_violations,
    }


def test_c4_session_scaling_meets_lag_slo(benchmark):
    """Serving-tier claim: the proxied session fleet scales two orders of
    magnitude while steady-state replica time lag stays inside the
    sub-10 ms SLO and reads keep landing on replicas."""

    def sweep():
        return {
            sessions: proxy_session_tier(sessions)
            for sessions in (1_000, 10_000, 50_000)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [sessions, cell["ops"], fmt(cell["lag_p95"]), fmt(cell["lag_max"]),
         cell["replica_reads"], cell["writer_reads"], cell["pool_waits"]]
        for sessions, cell in results.items()
    ]
    print_table(
        "C4: proxied session scaling vs replica time lag",
        ["sessions", "ops", "lag p95 ms", "lag max ms",
         "replica reads", "writer reads", "pool waits"],
        rows,
    )
    for sessions, cell in results.items():
        assert cell["ops"] > 0
        assert cell["lag_p95"] < REPLICA_LAG_SLO_MS, (
            f"{sessions} sessions broke the lag SLO"
        )
        assert cell["ryw_violations"] == 0
        assert cell["consistency_violations"] == 0
    # Scaling the fleet 50x must not shift reads onto the writer.
    biggest = results[50_000]
    assert biggest["replica_reads"] > biggest["writer_reads"]
