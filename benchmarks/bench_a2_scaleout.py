"""A2 (ablation) -- scale-out: protection-group count and the write path.

The paper's storage is "multi-tenant scale-out": a 64 TB volume spreads
its LSN space over 6,400 protection groups, yet writes remain asynchronous
one-way streams and commits remain local VCL bookkeeping.  The per-commit
cost should therefore track the number of PGs a transaction's blocks
actually TOUCH, not the number of PGs in the volume.

This ablation measures commit latency and messages per commit as the
volume's PG count grows (with a fixed workload), and separately as a
single transaction deliberately spans more PGs.
"""

from repro import AuroraCluster, ClusterConfig

from .conftest import fmt, percentile, print_table


def run_volume(pg_count, seed=820):
    config = ClusterConfig(
        seed=seed, pg_count=pg_count, blocks_per_pg=512
    )
    cluster = AuroraCluster.build(config)
    db = cluster.session()

    def write_path_messages():
        by_type = cluster.network.stats.by_type
        return by_type.get("WriteBatch", 0) + by_type.get("WriteAck", 0)

    base_messages = write_path_messages()
    for i in range(40):
        db.write(f"key{i:03d}", i)
    latencies = cluster.writer.stats.commit_latencies
    messages = write_path_messages() - base_messages
    return {
        "p50": percentile(latencies, 0.5),
        "p99": percentile(latencies, 0.99),
        "msgs_per_txn": messages / 40,
        "segments": len(cluster.nodes),
    }


def test_a2_pg_count_does_not_tax_the_write_path(benchmark):
    def sweep():
        return {count: run_volume(count) for count in (1, 4, 16)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [count, cell["segments"], fmt(cell["p50"]), fmt(cell["p99"]),
         fmt(cell["msgs_per_txn"], 1)]
        for count, cell in results.items()
    ]
    print_table(
        "A2: commit cost vs volume size (same 40-txn workload)",
        ["PGs", "segments", "p50 ms", "p99 ms", "write msgs/txn"],
        rows,
    )
    # The workload touches PG0 only; a 16x larger volume costs the same.
    assert results[16]["p50"] < results[1]["p50"] * 1.3
    assert results[16]["msgs_per_txn"] < results[1]["msgs_per_txn"] * 1.3


def test_a2_cost_tracks_pgs_touched(benchmark):
    """A transaction spanning N PGs sends N write-quorum streams -- the
    denominator that matters is blocks touched, not volume size."""

    def run():
        config = ClusterConfig(seed=821, pg_count=4, blocks_per_pg=8)
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        # Fill the volume so the B-tree spans all four PGs.
        for i in range(180):
            db.write(f"key{i:03d}", i)
        cluster.run_for(30)
        used_pgs = {
            node.segment.pg_index
            for node in cluster.nodes.values()
            if node.segment.hot_log_size or node.segment.blocks
        }
        latencies = cluster.writer.stats.commit_latencies
        return used_pgs, percentile(latencies, 0.5)

    used_pgs, p50 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nB-tree spans PGs {sorted(used_pgs)}; commit p50={p50:.3f} ms")
    assert len(used_pgs) >= 3
    assert p50 < 5.0  # still a single quorum round trip per touched PG
