"""C5 -- epoch fencing versus lease expiry (sections 2.4, 4.1).

"Some systems use leases to establish short term entitlements to access the
system, but leases introduce latency when one needs to wait for expiry.
Aurora, rather than waiting for a lease to expire, just changes the locks
on the door."

Part A measures failover dead time: after the writer dies, how long until a
successor may safely write?  Under epochs it is one recovery (scan +
truncate + epoch bump = a few quorum round trips); under leases it is
detection plus the residual lease term, swept over realistic lease lengths.

Part B measures the membership-change analogue (section 4.1): epochs make
the change non-blocking, while a lease-fenced reconfiguration stalls I/O
for the residual term.
"""

from repro import AuroraCluster, ClusterConfig
from repro.baselines import LeaseFencing
from repro.db.session import Session

from .conftest import fmt, print_table

DETECTION_MS = 500.0  # failure-detector delay, charged to both designs


def epoch_failover_time(seed=710):
    cluster = AuroraCluster.build(ClusterConfig(seed=seed))
    db = cluster.session()
    for i in range(30):
        db.write(f"k{i}", i)
    cluster.run_for(20)
    crash_at = cluster.loop.now
    cluster.crash_writer()
    cluster.run_for(DETECTION_MS)  # detector delay
    process = cluster.recover_writer()
    db = Session(cluster.writer)
    db.drive(process)
    db.write("fenced-in", 1)  # first post-failover write
    return cluster.loop.now - crash_at


def test_c5_failover_dead_time(benchmark):
    epoch_total = benchmark.pedantic(
        epoch_failover_time, rounds=1, iterations=1
    )
    rows = [["epochs (Aurora)", fmt(DETECTION_MS, 0),
             fmt(epoch_total - DETECTION_MS, 1), fmt(epoch_total, 1)]]
    for lease_s in (1, 5, 10, 30):
        lease = LeaseFencing(lease_duration_ms=lease_s * 1000.0)
        lease.acquire("old-writer", now=0.0)
        # Worst case: the holder renewed just before dying at t=0.
        dead = lease.failover_dead_time_ms(
            holder_crash_at=0.0, detection_delay_ms=DETECTION_MS
        )
        rows.append(
            [f"lease {lease_s}s", fmt(DETECTION_MS, 0),
             fmt(dead - DETECTION_MS, 1), fmt(dead, 1)]
        )
    print_table(
        "C5: writer failover dead time (ms)",
        ["fencing", "detection", "fence wait", "total unavailable"],
        rows,
    )
    # Epoch fencing completes orders of magnitude inside even a 1s lease.
    assert epoch_total - DETECTION_MS < 100
    assert epoch_total < 1_000.0 + DETECTION_MS


def test_c5_membership_change_blocking(benchmark):
    """Epoch-fenced membership change: commits keep flowing.  A lease-
    fenced change would stall them for the residual lease term."""

    def run():
        cluster = AuroraCluster.build(ClusterConfig(seed=711))
        db = cluster.session()
        db.write("seed", 0)
        cluster.failures.crash_node("pg0-f")
        stalls = []
        candidate = cluster.begin_segment_replacement(0, "pg0-f")
        hydration = cluster.hydrate_segment(0, candidate)
        for i in range(20):
            start = cluster.loop.now
            db.write(f"during{i:02d}", i)
            stalls.append(cluster.loop.now - start)
        db.drive(hydration)
        cluster.finalize_segment_replacement(0, "pg0-f")
        for i in range(20):
            start = cluster.loop.now
            db.write(f"after{i:02d}", i)
            stalls.append(cluster.loop.now - start)
        return stalls

    stalls = benchmark.pedantic(run, rounds=1, iterations=1)
    lease = LeaseFencing(lease_duration_ms=10_000.0)
    lease.acquire("pg0-f", now=0.0)
    lease_stall = lease.fencing_wait_ms(now=100.0)
    rows = [
        ["epochs: worst commit during change", fmt(max(stalls))],
        ["epochs: mean commit during change",
         fmt(sum(stalls) / len(stalls))],
        ["lease 10s: I/O stall to fence the suspect", fmt(lease_stall)],
    ]
    print_table("C5b: membership change I/O impact (ms)",
                ["case", "ms"], rows)
    # Non-blocking: every write completed in ordinary commit time while a
    # lease design would have stalled ~10s.
    assert max(stalls) < 50
    assert lease_stall > 9_000
