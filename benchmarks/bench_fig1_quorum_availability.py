"""F1 -- Figure 1: "Why are 6 copies necessary?"

Reproduces the figure's argument quantitatively: a 2/3 quorum spread across
three AZs loses its quorum once an AZ failure coincides with one more node
failure ("AZ+1"), while Aurora's 4/6 write / 3/6 read design survives an AZ
failure for writes and AZ+1 for reads (preserving repairability).

Output: a survival matrix (deterministic, worst-case) plus conditional
availability under an AZ outage with noisy nodes, cross-checked by Monte
Carlo simulation of correlated failures.
"""

import random

from repro.analysis.availability import (
    az_failure_survival,
    monte_carlo_availability,
    quorum_availability_under_az_failure,
)
from repro.core.quorum import majority_config, v6_config

from .conftest import fmt, print_table

THREE = ["a", "b", "c"]
SIX = [f"s{i}" for i in range(6)]
AZ3 = {"a": "az1", "b": "az2", "c": "az3"}
AZ6 = {m: f"az{i % 3 + 1}" for i, m in enumerate(SIX)}


def compute_survival_matrix():
    m3 = majority_config(THREE)
    v6 = v6_config(SIX)
    schemes = [
        ("2/3 write", m3.write_expr, AZ3),
        ("2/3 read", m3.read_expr, AZ3),
        ("4/6 write", v6.write_expr, AZ6),
        ("3/6 read", v6.read_expr, AZ6),
    ]
    rows = []
    for name, expr, az_map in schemes:
        rows.append(
            [
                name,
                az_failure_survival(expr, az_map, 0),
                az_failure_survival(expr, az_map, 1),
                az_failure_survival(expr, az_map, 2),
            ]
        )
    return rows


def test_fig1_survival_matrix(benchmark):
    rows = benchmark(compute_survival_matrix)
    print_table(
        "Figure 1: quorum survival under correlated failure",
        ["scheme", "AZ failure", "AZ+1", "AZ+2"],
        rows,
    )
    matrix = {row[0]: row[1:] for row in rows}
    # Left half of Figure 1: the 2/3 scheme breaks at AZ+1.
    assert matrix["2/3 write"] == [True, False, False]
    # Right half: Aurora writes survive the AZ; reads survive AZ+1.
    assert matrix["4/6 write"] == [True, False, False]
    assert matrix["3/6 read"] == [True, True, False]


def test_fig1_conditional_availability(benchmark):
    m3 = majority_config(THREE)
    v6 = v6_config(SIX)
    p_up = 0.999  # background noise of independent failures

    def compute():
        return [
            [
                "2/3 write | AZ down",
                fmt(quorum_availability_under_az_failure(
                    m3.write_expr, AZ3, "az1", p_up), 6),
            ],
            [
                "3/6 read | AZ down",
                fmt(quorum_availability_under_az_failure(
                    v6.read_expr, AZ6, "az1", p_up), 6),
            ],
            [
                "4/6 write | AZ down",
                fmt(quorum_availability_under_az_failure(
                    v6.write_expr, AZ6, "az1", p_up), 6),
            ],
        ]

    rows = benchmark(compute)
    print_table(
        "Availability conditioned on one AZ lost (p_node_up=0.999)",
        ["quorum", "availability"],
        rows,
    )
    values = {name: float(v) for name, v in rows}
    # Aurora reads stay ~4 nines; the 2/3 scheme is strictly worse.
    assert values["3/6 read | AZ down"] > values["2/3 write | AZ down"]
    assert values["3/6 read | AZ down"] > 0.999


def test_fig1_monte_carlo_cross_check(benchmark):
    v6 = v6_config(SIX)
    rng = random.Random(1)

    def simulate():
        return monte_carlo_availability(
            v6.read_expr, AZ6,
            p_node_fail=0.02, p_az_fail=0.01, trials=30_000, rng=rng,
        )

    simulated = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print(f"\nMonte Carlo 3/6-read availability (corr. AZ events): "
          f"{simulated:.4f}")
    assert simulated > 0.999
