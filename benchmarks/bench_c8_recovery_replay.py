"""C8 -- crash recovery without redo replay (section 2.4).

"No redo replay is required as part of crash recovery since segments are
able to generate data blocks on their own."  A traditional engine's restart
replays every redo record since the last checkpoint, so its recovery time
grows with write volume (and shrinking it costs foreground checkpoints).

Part A: measured Aurora recovery time versus committed history on live
clusters -- flat, because recovery is a read-quorum scan of (continuously
garbage-collected) hot-log digests plus one truncation round.

Part B: the ARIES comparator -- replay time linear in the log tail, and
the checkpoint-interval trade-off Aurora dissolves entirely.
"""

from repro import AuroraCluster, ClusterConfig
from repro.baselines import AriesRecoveryModel
from repro.db.session import Session

from .conftest import fmt, print_table

HISTORY_SIZES = [25, 100, 400]


def aurora_recovery_ms(txn_count, seed):
    config = ClusterConfig(seed=seed)
    config.node.backup_interval = 50.0
    config.node.gc_interval = 25.0
    cluster = AuroraCluster.build(config)
    db = cluster.session()
    for i in range(txn_count):
        db.write(f"key{i:05d}", i)
    cluster.run_for(400)  # steady-state coalesce/backup/GC churn
    cluster.crash_writer()
    process = cluster.recover_writer()
    db = Session(cluster.writer)
    db.drive(process)
    assert db.get(f"key{txn_count - 1:05d}") == txn_count - 1
    return cluster.writer.stats.recovery_durations[-1]


def test_c8_aurora_recovery_flat_in_history(benchmark):
    def sweep():
        return {
            count: aurora_recovery_ms(count, seed=800 + count)
            for count in HISTORY_SIZES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    aries = AriesRecoveryModel()
    rows = []
    for count in HISTORY_SIZES:
        # ~2.5 records per txn (row delta + commit + splits).
        records = int(count * 2.5)
        rows.append(
            [
                count,
                fmt(results[count], 2),
                fmt(aries.recovery_time_ms(records), 3),
            ]
        )
    print_table(
        "C8: recovery time vs committed history (ms, simulated)",
        ["txns committed", "Aurora recovery", "ARIES replay (no ckpt)"],
        rows,
    )
    smallest, largest = results[HISTORY_SIZES[0]], results[HISTORY_SIZES[-1]]
    history_ratio = HISTORY_SIZES[-1] / HISTORY_SIZES[0]  # 16x
    # Flat shape: 16x the history costs far less than 16x the recovery.
    assert largest < smallest * (history_ratio / 3)


def test_c8_aries_tradeoff_table(benchmark):
    """The checkpoint dilemma a traditional engine faces -- Aurora's
    storage-side coalescing removes both columns at once."""

    def sweep():
        model = AriesRecoveryModel()
        rows = []
        for interval_s in (10, 60, 300, 1800):
            cell = model.checkpoint_interval_tradeoff(
                write_rate_per_s=50_000,
                checkpoint_cost_ms=800.0,
                interval_s=interval_s,
            )
            rows.append(
                [
                    interval_s,
                    fmt(cell["worst_case_recovery_ms"], 0),
                    fmt(cell["checkpoint_overhead_pct"], 2),
                ]
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "C8b: ARIES checkpoint interval trade-off (50k writes/s)",
        ["checkpoint every (s)", "worst-case recovery (ms)",
         "foreground overhead (%)"],
        rows,
    )
    recoveries = [float(r[1]) for r in rows]
    overheads = [float(r[2]) for r in rows]
    assert recoveries == sorted(recoveries)          # longer = slower restart
    assert overheads == sorted(overheads, reverse=True)  # or more overhead
